//! Phase-profiler acceptance suite: across the full 48-entry TCCG
//! benchmark, the span instrumentation must explain (attribute to named
//! phases below the root) at least 95% of the measured cold wall time,
//! and a multi-thread generation must export a Chrome trace with real
//! per-worker timelines (distinct `tid`s).
//!
//! Tests in this file share the process-global tracing flag, so every
//! test holds [`OBS_LOCK`] while the flag is on.

use std::sync::Mutex;

use cogent::generator::select::SearchOptions;
use cogent::obs::profile::PhaseProfile;
use cogent::prelude::*;

/// Serializes tests that flip the global tracing flag.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Shrinks an entry's sizes so the sweep stays fast in debug builds; the
/// span tree (and therefore the profile shape) does not depend on the
/// extents.
fn test_sizes(entry: &cogent::tccg::TccgEntry, cap: usize) -> SizeMap {
    let mut out = SizeMap::new();
    for (idx, extent) in entry.sizes().iter() {
        out.set(idx.clone(), extent.min(cap).max(1));
    }
    out
}

/// One traced cold generation (no cache) under the lock.
fn traced_generate(
    tc: &Contraction,
    sizes: &SizeMap,
    threads: usize,
) -> cogent::generator::GeneratedKernel {
    let kernel = Cogent::new()
        .device(GpuDevice::v100())
        .precision(Precision::F64)
        .search_options(SearchOptions {
            threads,
            ..SearchOptions::default()
        })
        .generate(tc, sizes)
        .expect("suite entry generates");
    assert!(kernel.trace.is_some(), "tracing on: trace attached");
    kernel
}

/// ISSUE 6 acceptance: `cogent profile` on all 48 TCCG entries attributes
/// at least 95% of measured cold wall time to named phases — per entry,
/// and the per-phase self times sum to the root's wall clock.
#[test]
fn profiler_attributes_cold_wall_time_across_the_whole_suite() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    cogent::obs::set_enabled(true);
    let mut entries = 0usize;
    for entry in cogent::tccg::suite() {
        let tc = entry.contraction();
        let sizes = test_sizes(&entry, 24);
        let kernel = traced_generate(&tc, &sizes, 1);
        let trace = kernel.trace.expect("trace attached");
        let profile = PhaseProfile::from_trace(&trace);

        // Self times partition the wall clock: the per-span clock reads
        // can jitter, but never by more than a percent of the run.
        let attributed = profile.attributed_ns();
        assert!(
            attributed <= profile.wall_ns,
            "{}: attributed {attributed} exceeds wall {}",
            entry.name,
            profile.wall_ns
        );
        assert!(
            attributed as f64 >= profile.wall_ns as f64 * 0.99,
            "{}: self times sum to {attributed} of wall {}",
            entry.name,
            profile.wall_ns
        );

        // >= 95% of the wall time is explained by phases below the root.
        assert!(
            profile.coverage() >= 0.95,
            "{}: coverage {:.1}% < 95%:\n{}",
            entry.name,
            profile.coverage() * 100.0,
            profile.render_table()
        );

        // The profile names the pipeline phases the paper's Algorithm 1
        // prescribes, and every phase was actually entered.
        for phase in ["enumerate", "prune", "rank", "cost", "lower", "codegen"] {
            let stat = profile
                .phases
                .iter()
                .find(|p| p.name == phase)
                .unwrap_or_else(|| panic!("{}: no {phase} phase", entry.name));
            assert!(stat.calls > 0 && stat.total_ns > 0, "{phase} never ran");
        }
        entries += 1;
    }
    cogent::obs::set_enabled(false);
    assert_eq!(entries, 48, "the TCCG suite has 48 entries");
}

/// ISSUE 6 acceptance: a `COGENT_THREADS=4`-equivalent generation exports
/// a Chrome trace whose events span at least two distinct worker-thread
/// timelines (`tid`s beyond the capture thread), each announced by a
/// `thread_name` metadata event.
#[test]
fn chrome_export_shows_distinct_worker_timelines() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    cogent::obs::set_enabled(true);
    let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
    let sizes = SizeMap::uniform(&tc, 16);
    let kernel = traced_generate(&tc, &sizes, 4);
    cogent::obs::set_enabled(false);
    let trace = kernel.trace.expect("trace attached");
    let root_tid = trace.root.thread;

    let doc = cogent::obs::chrome::to_chrome_trace_string(&trace);
    let parsed = cogent::obs::json::Json::parse(&doc).unwrap();
    let events = parsed.get("traceEvents").unwrap().as_array().unwrap();

    // Worker timelines: complete ("X") events on tids other than the
    // capture thread's.
    let worker_tids: std::collections::BTreeSet<u128> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .filter_map(|e| e.get("tid").and_then(|t| t.as_u128()))
        .filter(|tid| *tid != u128::from(root_tid))
        .collect();
    assert!(
        worker_tids.len() >= 2,
        "expected >= 2 distinct worker timelines, got {worker_tids:?}"
    );

    // Every tid is announced with a thread_name metadata event, workers
    // labelled as such.
    let metadata_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
        })
        .collect();
    assert!(
        metadata_names
            .iter()
            .filter(|name| name.ends_with("(worker)"))
            .count()
            >= 2,
        "worker thread_name metadata missing: {metadata_names:?}"
    );
}
