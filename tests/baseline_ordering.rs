//! Cross-crate assertions on the *comparative* results — the shapes the
//! paper's evaluation establishes. These are the reproduction's headline
//! claims, so they are tested, not just printed by the bench harness.

use cogent::baselines::{measure_cogent, NaiveDirect, NwchemLikeGenerator, TtgtEngine};
use cogent::prelude::*;

fn geomean(v: &[f64]) -> f64 {
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}

/// Runs all frameworks over the CCSD(T) entries on one device.
fn ccsdt_geomeans(device: &GpuDevice) -> (f64, f64, f64) {
    let mut cogent = Vec::new();
    let mut nwchem = Vec::new();
    let mut talsh = Vec::new();
    for entry in cogent::tccg::suite()
        .into_iter()
        .filter(|e| e.group == cogent::tccg::BenchGroup::CcsdT)
        .step_by(3)
    {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        cogent.push(measure_cogent(&tc, &sizes, device, Precision::F64).gflops);
        nwchem.push(
            NwchemLikeGenerator::new()
                .measure(&tc, &sizes, device, Precision::F64)
                .gflops,
        );
        talsh.push(
            TtgtEngine::new()
                .measure(&tc, &sizes, device, Precision::F64)
                .gflops,
        );
    }
    (geomean(&cogent), geomean(&nwchem), geomean(&talsh))
}

#[test]
fn ccsdt_ordering_on_v100_matches_paper() {
    // Fig. 5: COGENT > NWChem generator >> TAL_SH on the CCSD(T) group.
    let (cogent, nwchem, talsh) = ccsdt_geomeans(&GpuDevice::v100());
    assert!(cogent > nwchem, "COGENT {cogent} vs NWChem {nwchem}");
    assert!(nwchem > talsh, "NWChem {nwchem} vs TAL_SH {talsh}");
    // TAL_SH is several-fold slower (paper: ≈5x; accept >2.5x).
    assert!(cogent / talsh > 2.5, "ratio {}", cogent / talsh);
}

#[test]
fn ccsdt_ordering_on_p100_matches_paper() {
    let (cogent, nwchem, talsh) = ccsdt_geomeans(&GpuDevice::p100());
    assert!(cogent > nwchem);
    assert!(nwchem > talsh);
}

#[test]
fn talsh_competitive_on_fat_4d_contractions() {
    // Fig. 4/5, #20–30: flattened to large GEMMs, TTGT rides cuBLAS and is
    // competitive with (within 2x of) the direct generators.
    let entry = &cogent::tccg::suite()[24]; // abcd-efab-cdfe at 64^6
    let tc = entry.contraction();
    let sizes = entry.sizes();
    let d = GpuDevice::v100();
    let cogent = measure_cogent(&tc, &sizes, &d, Precision::F64).gflops;
    let talsh = TtgtEngine::new()
        .measure(&tc, &sizes, &d, Precision::F64)
        .gflops;
    assert!(talsh > 0.5 * cogent, "TAL_SH {talsh} vs COGENT {cogent}");
    // ... and on the V100 COGENT still comes out ahead (the paper:
    // "COGENT consistently outperforms TAL_SH" on Volta).
    assert!(cogent >= talsh, "COGENT {cogent} vs TAL_SH {talsh}");
}

#[test]
fn naive_is_the_floor() {
    let entry = &cogent::tccg::suite()[11]; // Eq. 1
    let tc = entry.contraction();
    let sizes = entry.sizes();
    let d = GpuDevice::v100();
    let naive = NaiveDirect::new()
        .measure(&tc, &sizes, &d, Precision::F64)
        .gflops;
    let cogent = measure_cogent(&tc, &sizes, &d, Precision::F64).gflops;
    let nwchem = NwchemLikeGenerator::new()
        .measure(&tc, &sizes, &d, Precision::F64)
        .gflops;
    assert!(naive < nwchem);
    assert!(naive < cogent);
}

#[test]
fn v100_outperforms_p100_everywhere() {
    // Sanity: the same framework on the faster device is faster (Figs. 4
    // vs 5).
    for entry in cogent::tccg::suite().into_iter().step_by(11) {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let v = measure_cogent(&tc, &sizes, &GpuDevice::v100(), Precision::F64).gflops;
        let p = measure_cogent(&tc, &sizes, &GpuDevice::p100(), Precision::F64).gflops;
        assert!(v > p, "{}: v100 {v} vs p100 {p}", entry.name);
    }
}

#[test]
fn model_driven_beats_short_autotuning() {
    // Figs. 6–8: a TC-like GA with a limited budget does not reach
    // COGENT's model-selected configuration.
    use cogent::baselines::TcAutotuner;
    let entry = cogent::tccg::sd2_entries().into_iter().next().unwrap();
    let tc = entry.contraction();
    let sizes = entry.sizes();
    let d = GpuDevice::v100();
    let cogent = measure_cogent(&tc, &sizes, &d, Precision::F32).gflops;
    let tuner = TcAutotuner {
        population: 20,
        generations: 5,
        ..TcAutotuner::new()
    };
    let result = tuner.tune(&tc, &sizes, &d, Precision::F32);
    assert!(
        cogent > result.tuned.gflops,
        "COGENT {cogent} vs TC {}",
        result.tuned.gflops
    );
    assert!(result.tuned.gflops > result.untuned.gflops);
}
