//! Structural validation of every source the generator emits: for all 48
//! TCCG benchmarks (both precisions, all dialects), the emitted text must
//! pass the codegen linter — balanced delimiters, all tile/extent symbols
//! defined, all four phases of Algorithm 1 present — and the lowered
//! kernel IR must pass the structural lint. Three representative entries
//! are additionally pinned byte-for-byte against golden snapshots in
//! `tests/golden/`, so any change to the emitted text is a deliberate,
//! reviewed snapshot update rather than an accidental drift.

use cogent::generator::codegen::{
    emit_hip_kernel, emit_opencl_kernel, lint_kernel_plan, lint_kernel_source,
};
use cogent::prelude::*;

/// The three golden entries: one per suite family shape — a 3-index
/// machine-learning contraction, the 4-index CCSD workhorse (Eq. 1's
/// pattern), and a 6-index sd2 monster.
const GOLDEN: [&str; 3] = ["ml_1", "ccsd_1", "sd2_1"];

#[test]
fn golden_sources_are_byte_identical() {
    for name in GOLDEN {
        let entry = cogent::tccg::find(name).unwrap_or_else(|| panic!("no suite entry {name}"));
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let g = Cogent::new()
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let cu = std::fs::read_to_string(format!("tests/golden/{name}.cu")).unwrap();
        let cl = std::fs::read_to_string(format!("tests/golden/{name}.cl")).unwrap();
        assert_eq!(
            g.cuda_source, cu,
            "{name}: emitted CUDA drifted from tests/golden/{name}.cu"
        );
        assert_eq!(
            g.opencl_source, cl,
            "{name}: emitted OpenCL drifted from tests/golden/{name}.cl"
        );
    }
}

#[test]
fn all_48_lowered_programs_pass_the_ir_lint() {
    for entry in cogent::tccg::suite() {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let g = Cogent::new()
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let report = lint_kernel_plan(&g.plan).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert!(report.is_clean(), "{}: {:?}", entry.name, report.findings);
    }
}

#[test]
fn hip_kernels_lint_clean_and_mirror_cuda() {
    for entry in cogent::tccg::suite().into_iter().step_by(3) {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let g = Cogent::new()
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let hip = emit_hip_kernel(&g.plan, Precision::F64);
        let findings = lint_kernel_source(&hip);
        assert!(findings.is_empty(), "{}: {findings:?}", entry.name);
        assert!(hip.starts_with("#include <hip/hip_runtime.h>\n"));
        let cuda = cogent::generator::codegen::emit_kernel(&g.plan, Precision::F64);
        assert_eq!(
            &hip["#include <hip/hip_runtime.h>\n".len()..],
            cuda,
            "{}: HIP kernel body must be byte-identical to CUDA",
            entry.name
        );
    }
}

#[test]
fn all_48_emitted_cuda_kernels_lint_clean() {
    for entry in cogent::tccg::suite() {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let g = Cogent::new()
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let findings = lint_kernel_source(&g.cuda_source);
        assert!(findings.is_empty(), "{}: {findings:?}", entry.name);
    }
}

#[test]
fn all_48_emitted_opencl_kernels_lint_clean() {
    for entry in cogent::tccg::suite().into_iter().step_by(3) {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let g = Cogent::new()
            .precision(Precision::F32)
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let findings = lint_kernel_source(&emit_opencl_kernel(&g.plan, Precision::F32));
        assert!(findings.is_empty(), "{}: {findings:?}", entry.name);
    }
}

#[test]
fn accumulate_kernels_lint_clean() {
    use cogent::sim::plan::StoreMode;
    let entry = &cogent::tccg::sd2_entries()[0];
    let tc = entry.contraction();
    let sizes = entry.sizes();
    let g = Cogent::new()
        .store_mode(StoreMode::Accumulate)
        .generate(&tc, &sizes)
        .unwrap();
    let findings = lint_kernel_source(&g.cuda_source);
    assert!(findings.is_empty(), "{findings:?}");
    assert!(g.cuda_source.contains("+= r_C[ry][rx];"));
}

#[test]
fn batched_kernels_lint_clean() {
    use cogent::ir::TensorRef;
    let tc = Contraction::with_batch(
        TensorRef::new("C", ["i", "j", "n"]),
        TensorRef::new("A", ["i", "k", "n"]),
        TensorRef::new("B", ["k", "j", "n"]),
    )
    .unwrap();
    let sizes = SizeMap::from_pairs([("i", 64), ("j", 64), ("k", 64), ("n", 4)]);
    let g = Cogent::new().generate(&tc, &sizes).unwrap();
    let findings = lint_kernel_source(&g.cuda_source);
    assert!(findings.is_empty(), "{findings:?}");
}
