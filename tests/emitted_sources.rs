//! Structural validation of every source the generator emits: for all 48
//! TCCG benchmarks (both precisions, both dialects), the emitted text must
//! pass the codegen linter — balanced delimiters, all tile/extent symbols
//! defined, all four phases of Algorithm 1 present.

use cogent::generator::codegen::{emit_opencl_kernel, lint_kernel_source};
use cogent::prelude::*;

#[test]
fn all_48_emitted_cuda_kernels_lint_clean() {
    for entry in cogent::tccg::suite() {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let g = Cogent::new()
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let findings = lint_kernel_source(&g.cuda_source);
        assert!(findings.is_empty(), "{}: {findings:?}", entry.name);
    }
}

#[test]
fn all_48_emitted_opencl_kernels_lint_clean() {
    for entry in cogent::tccg::suite().into_iter().step_by(3) {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let g = Cogent::new()
            .precision(Precision::F32)
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let findings = lint_kernel_source(&emit_opencl_kernel(&g.plan, Precision::F32));
        assert!(findings.is_empty(), "{}: {findings:?}", entry.name);
    }
}

#[test]
fn accumulate_kernels_lint_clean() {
    use cogent::sim::plan::StoreMode;
    let entry = &cogent::tccg::sd2_entries()[0];
    let tc = entry.contraction();
    let sizes = entry.sizes();
    let g = Cogent::new()
        .store_mode(StoreMode::Accumulate)
        .generate(&tc, &sizes)
        .unwrap();
    let findings = lint_kernel_source(&g.cuda_source);
    assert!(findings.is_empty(), "{findings:?}");
    assert!(g.cuda_source.contains("+= r_C[ry][rx];"));
}

#[test]
fn batched_kernels_lint_clean() {
    use cogent::ir::TensorRef;
    let tc = Contraction::with_batch(
        TensorRef::new("C", ["i", "j", "n"]),
        TensorRef::new("A", ["i", "k", "n"]),
        TensorRef::new("B", ["k", "j", "n"]),
    )
    .unwrap();
    let sizes = SizeMap::from_pairs([("i", 64), ("j", 64), ("k", 64), ("n", 4)]);
    let g = Cogent::new().generate(&tc, &sizes).unwrap();
    let findings = lint_kernel_source(&g.cuda_source);
    assert!(findings.is_empty(), "{findings:?}");
}
