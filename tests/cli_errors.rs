//! Golden tests for CLI failure behavior: malformed invocations must
//! produce a one-line `cogent: ...` diagnostic on stderr and exit with
//! code 2 — never a panic, never a backtrace.

use std::process::Command;

fn cogent(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cogent"))
        .args(args)
        .output()
        .expect("spawning the cogent binary")
}

#[test]
fn malformed_sizes_exits_2_with_one_line_diagnostic() {
    // "j=" splits into an empty extent; "j" alone is a malformed entry —
    // both must exit 2 with one diagnostic line.
    let out = cogent(&["generate", "ij-ik-kj", "--sizes", "i=4,j="]);
    assert_eq!(out.status.code(), Some(2), "expected exit code 2");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        stderr, "cogent: bad extent \"\" for index j\n",
        "stderr must be exactly one diagnostic line"
    );
    assert!(out.stdout.is_empty(), "no source on stdout after a failure");

    let out = cogent(&["generate", "ij-ik-kj", "--sizes", "i=4,j"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(stderr, "cogent: bad size entry \"j\" (want index=extent)\n");
}

#[test]
fn unparsable_extent_exits_2() {
    let out = cogent(&["generate", "ij-ik-kj", "--sizes", "i=4,j=banana,k=4"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(stderr, "cogent: bad extent \"banana\" for index j\n");
}

#[test]
fn unknown_device_exits_2_with_one_line_diagnostic() {
    let out = cogent(&["generate", "ij-ik-kj", "--size", "8", "--device", "h100"]);
    assert_eq!(out.status.code(), Some(2), "expected exit code 2");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        stderr, "cogent: unknown device \"h100\" (want v100 or p100)\n",
        "stderr must be exactly one diagnostic line"
    );
}

#[test]
fn incomplete_sizes_exits_2() {
    let out = cogent(&["generate", "ij-ik-kj", "--sizes", "i=4,j=8"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        stderr,
        "cogent: --sizes does not cover every contraction index\n"
    );
}

#[test]
fn malformed_cache_cap_env_exits_2_for_every_command() {
    for command in [&["suite"][..], &["generate", "ij-ik-kj", "--size", "8"]] {
        let out = Command::new(env!("CARGO_BIN_EXE_cogent"))
            .args(command)
            .env("COGENT_CACHE_CAP", "10O")
            .output()
            .expect("spawning the cogent binary");
        assert_eq!(out.status.code(), Some(2), "{command:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert_eq!(
            stderr,
            "cogent: COGENT_CACHE_CAP: invalid value \"10O\" (want a non-negative integer)\n",
            "{command:?}"
        );
    }
}

#[test]
fn malformed_threads_env_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_cogent"))
        .args(["suite"])
        .env("COGENT_THREADS", "lots")
        .output()
        .expect("spawning the cogent binary");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        stderr,
        "cogent: COGENT_THREADS: invalid value \"lots\" (want a positive integer)\n"
    );

    // Zero threads is as wrong as garbage: it would deadlock the pool.
    let out = Command::new(env!("CARGO_BIN_EXE_cogent"))
        .args(["suite"])
        .env("COGENT_THREADS", "0")
        .output()
        .expect("spawning the cogent binary");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn well_formed_env_still_succeeds() {
    let out = Command::new(env!("CARGO_BIN_EXE_cogent"))
        .args(["suite"])
        .env("COGENT_CACHE_CAP", "16")
        .env("COGENT_THREADS", "2")
        .output()
        .expect("spawning the cogent binary");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn serve_rejects_bad_flags_with_exit_2() {
    let out = cogent(&["serve", "--workers", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        stderr,
        "cogent: bad --workers value \"0\" (want a positive integer)\n"
    );
}

#[test]
fn serve_refuses_startup_on_malformed_env() {
    let out = Command::new(env!("CARGO_BIN_EXE_cogent"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .env("COGENT_CACHE_CAP", "banana")
        .output()
        .expect("spawning the cogent binary");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("COGENT_CACHE_CAP: invalid value \"banana\""),
        "{stderr}"
    );
}

#[test]
fn unknown_command_exits_1_and_prints_usage() {
    let out = cogent(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error: unknown command \"frobnicate\""));
    assert!(
        stderr.contains("usage:"),
        "runtime failures still show usage"
    );
}

#[test]
fn successful_generate_reports_provenance() {
    let out = cogent(&["generate", "ij-ik-kj", "--size", "16"]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("provenance:    search candidate (model rank "),
        "generate must report where the kernel came from, got:\n{stderr}"
    );
}
