//! Golden tests for CLI failure behavior: malformed invocations must
//! produce a one-line `cogent: ...` diagnostic on stderr and exit with
//! code 2 — never a panic, never a backtrace.

use std::process::Command;

fn cogent(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cogent"))
        .args(args)
        .output()
        .expect("spawning the cogent binary")
}

#[test]
fn malformed_sizes_exits_2_with_one_line_diagnostic() {
    // "j=" splits into an empty extent; "j" alone is a malformed entry —
    // both must exit 2 with one diagnostic line.
    let out = cogent(&["generate", "ij-ik-kj", "--sizes", "i=4,j="]);
    assert_eq!(out.status.code(), Some(2), "expected exit code 2");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        stderr, "cogent: bad extent \"\" for index j\n",
        "stderr must be exactly one diagnostic line"
    );
    assert!(out.stdout.is_empty(), "no source on stdout after a failure");

    let out = cogent(&["generate", "ij-ik-kj", "--sizes", "i=4,j"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(stderr, "cogent: bad size entry \"j\" (want index=extent)\n");
}

#[test]
fn unparsable_extent_exits_2() {
    let out = cogent(&["generate", "ij-ik-kj", "--sizes", "i=4,j=banana,k=4"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(stderr, "cogent: bad extent \"banana\" for index j\n");
}

#[test]
fn unknown_device_exits_2_with_one_line_diagnostic() {
    let out = cogent(&["generate", "ij-ik-kj", "--size", "8", "--device", "h100"]);
    assert_eq!(out.status.code(), Some(2), "expected exit code 2");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        stderr, "cogent: unknown device \"h100\" (want v100 or p100)\n",
        "stderr must be exactly one diagnostic line"
    );
}

#[test]
fn incomplete_sizes_exits_2() {
    let out = cogent(&["generate", "ij-ik-kj", "--sizes", "i=4,j=8"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        stderr,
        "cogent: --sizes does not cover every contraction index\n"
    );
}

#[test]
fn unknown_command_exits_1_and_prints_usage() {
    let out = cogent(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error: unknown command \"frobnicate\""));
    assert!(
        stderr.contains("usage:"),
        "runtime failures still show usage"
    );
}

#[test]
fn successful_generate_reports_provenance() {
    let out = cogent(&["generate", "ij-ik-kj", "--size", "16"]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("provenance:    search candidate (model rank "),
        "generate must report where the kernel came from, got:\n{stderr}"
    );
}
