//! Determinism sweep over the full TCCG suite: the search and the
//! emitted kernels must be bit-for-bit identical whether the work runs
//! serially, chunked across worker threads, batched through
//! `generate_many`, or replayed from a warm `KernelCache`.
//!
//! CI runs this file under both `COGENT_THREADS=1` and `COGENT_THREADS=4`
//! — the environment variable steers every default-constructed generator
//! (the cached one below included), so the assertions also prove the env
//! knob cannot change any output.

use std::sync::Arc;

use cogent::generator::select::{search, SearchOptions};
use cogent::generator::KernelCache;
use cogent::prelude::*;

/// Shrinks an entry's sizes so the functional sweep stays fast in debug
/// builds (the search outcome sweep below runs at production sizes —
/// search never executes kernels, so it stays cheap).
fn test_sizes(entry: &cogent::tccg::TccgEntry, cap: usize) -> SizeMap {
    let mut out = SizeMap::new();
    for (idx, extent) in entry.sizes().iter() {
        out.set(idx.clone(), extent.min(cap).max(1));
    }
    out
}

fn options_with_threads(threads: usize) -> SearchOptions {
    SearchOptions {
        threads,
        ..SearchOptions::default()
    }
}

/// The whole `SearchOutcome` — ranking, histogram, counters — must be
/// equal between a serial and a 4-thread search, for every suite entry at
/// its production sizes.
#[test]
fn search_outcome_is_identical_serial_vs_parallel_across_the_suite() {
    let device = GpuDevice::v100();
    for entry in cogent::tccg::suite() {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let serial = search(
            &tc,
            &sizes,
            &device,
            Precision::F64,
            &options_with_threads(1),
        );
        let parallel = search(
            &tc,
            &sizes,
            &device,
            Precision::F64,
            &options_with_threads(4),
        );
        assert_eq!(
            serial, parallel,
            "{}: serial and 4-thread search outcomes diverge",
            entry.name
        );
    }
}

/// Emitted CUDA and OpenCL must be byte-identical across four paths:
/// serial `generate`, a 4-thread `generate_many` batch, and a cold and
/// warm pass through a shared `KernelCache`.
#[test]
fn emitted_sources_are_byte_identical_across_all_paths() {
    let entries = cogent::tccg::suite();
    let jobs: Vec<(Contraction, SizeMap)> = entries
        .iter()
        .map(|entry| (entry.contraction(), test_sizes(entry, 10)))
        .collect();

    let serial_gen = Cogent::new().search_options(options_with_threads(1));
    let batch_gen = Cogent::new().search_options(options_with_threads(4));
    // Default options: COGENT_THREADS steers this generator's search.
    let cached_gen = Cogent::new().cache(Arc::new(KernelCache::with_shards(jobs.len(), 1)));

    let batch = batch_gen.generate_many(&jobs);
    for (entry, ((tc, sizes), batch_result)) in entries.iter().zip(jobs.iter().zip(batch)) {
        let serial = serial_gen
            .generate(tc, sizes)
            .unwrap_or_else(|e| panic!("{}: serial generate failed: {e}", entry.name));
        let batched =
            batch_result.unwrap_or_else(|e| panic!("{}: batched generate failed: {e}", entry.name));
        let cold = cached_gen
            .generate(tc, sizes)
            .unwrap_or_else(|e| panic!("{}: cold generate failed: {e}", entry.name));
        let warm = cached_gen
            .generate(tc, sizes)
            .unwrap_or_else(|e| panic!("{}: warm generate failed: {e}", entry.name));

        for (label, other) in [("batched", &batched), ("cold", &cold), ("warm", &warm)] {
            assert_eq!(
                serial.cuda_source, other.cuda_source,
                "{}: {label} CUDA differs from serial",
                entry.name
            );
            assert_eq!(
                serial.opencl_source, other.opencl_source,
                "{}: {label} OpenCL differs from serial",
                entry.name
            );
            assert_eq!(
                serial.config, other.config,
                "{}: {label} picked a different configuration",
                entry.name
            );
        }
    }
    let stats = cached_gen.kernel_cache().map(|c| c.stats());
    let stats = stats.expect("cache attached");
    assert_eq!(
        stats.hits as usize,
        jobs.len(),
        "every warm lookup must hit: {stats:?}"
    );
}

/// The deterministic tie-break key means the best configuration is a pure
/// function of the candidate set: reversing enumeration order (by
/// searching twice) can never flip `best()`. Spot-checked via repeated
/// searches on entries with dense cost ties.
#[test]
fn repeated_searches_agree_on_best() {
    let device = GpuDevice::v100();
    for entry in cogent::tccg::suite().iter().step_by(5) {
        let tc = entry.contraction();
        let sizes = test_sizes(entry, 16);
        let a = search(
            &tc,
            &sizes,
            &device,
            Precision::F64,
            &SearchOptions::default(),
        );
        let b = search(
            &tc,
            &sizes,
            &device,
            Precision::F64,
            &SearchOptions::default(),
        );
        assert_eq!(
            a.best().map(|r| &r.config),
            b.best().map(|r| &r.config),
            "{}: best() is unstable",
            entry.name
        );
    }
}
