//! The guard-layer sweep over the full TCCG suite: with numeric
//! verification switched on, `Cogent::generate` must never panic, every
//! produced kernel must carry honest provenance, and any degradation must
//! be visible — a fallback kernel still computes the right answer.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cogent::generator::PlanSource;
use cogent::prelude::*;
use cogent::tensor::reference::{contract_reference, random_inputs};

/// Shrinks an entry's sizes so the functional sweep stays fast.
fn test_sizes(entry: &cogent::tccg::TccgEntry, cap: usize) -> SizeMap {
    let mut out = SizeMap::new();
    for (idx, extent) in entry.sizes().iter() {
        out.set(idx.clone(), extent.min(cap).max(1));
    }
    out
}

#[test]
fn generate_with_verification_never_panics_across_the_suite() {
    for entry in cogent::tccg::suite() {
        let tc = entry.contraction();
        let sizes = test_sizes(&entry, 5);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Cogent::new().verify_numeric(true).generate(&tc, &sizes)
        }));
        let result = outcome.unwrap_or_else(|_| panic!("{}: generate panicked", entry.name));
        let generated = result.unwrap_or_else(|e| panic!("{}: {e}", entry.name));

        // Provenance is honest: a search-sourced kernel that passed the
        // divergence gate reports verified; a fallback reports degraded.
        match generated.provenance.source {
            PlanSource::Search { .. } => assert!(
                generated.provenance.numeric_verified,
                "{}: search kernel skipped verification",
                entry.name
            ),
            PlanSource::NaiveFallback => assert!(
                generated.provenance.degraded(),
                "{}: fallback not reported as degraded",
                entry.name
            ),
        }

        // Whatever rung of the ladder won, the answer is right.
        let (a, b) = random_inputs::<f64>(&generated.contraction, &sizes, entry.id as u64 + 3000);
        let got = execute_plan(&generated.plan, &a, &b);
        let want = contract_reference(&generated.contraction, &sizes, &a, &b);
        assert!(
            got.approx_eq(&want, 1e-10),
            "{}: diverged by {}",
            entry.name,
            got.max_abs_diff(&want)
        );
    }
}

#[test]
fn suite_generation_is_undegraded_at_production_sizes() {
    // Sampled (every 7th entry) at the paper's real sizes: the validator
    // must not reject the model's choice, and nothing should fall back.
    for entry in cogent::tccg::suite().into_iter().step_by(7) {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let generated = Cogent::new()
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert!(
            !generated.provenance.degraded(),
            "{}: degraded at production sizes: {}",
            entry.name,
            generated.provenance
        );
    }
}
