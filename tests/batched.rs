//! Batched (Hadamard-index) contractions — the extension beyond the
//! paper's strict contraction class. A batch index appears in all three
//! tensors and is mapped onto the grid dimension; every execution path
//! that supports it must agree with the reference.

use cogent::baselines::{NaiveDirect, NwchemLikeGenerator};
use cogent::prelude::*;
use cogent::tensor::reference::{contract_reference, random_inputs};
use cogent_ir::TensorRef;

/// Batched matrix multiply: C[i,j,n] = A[i,k,n] * B[k,j,n].
fn batched_matmul() -> Contraction {
    Contraction::with_batch(
        TensorRef::new("C", ["i", "j", "n"]),
        TensorRef::new("A", ["i", "k", "n"]),
        TensorRef::new("B", ["k", "j", "n"]),
    )
    .unwrap()
}

#[test]
fn strict_constructor_still_rejects_batch() {
    let err = Contraction::new(
        TensorRef::new("C", ["i", "j", "n"]),
        TensorRef::new("A", ["i", "k", "n"]),
        TensorRef::new("B", ["k", "j", "n"]),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        cogent_ir::ValidateContractionError::BatchIndex { .. }
    ));
}

#[test]
fn reference_handles_batch_indices() {
    let tc = batched_matmul();
    let sizes = SizeMap::from_pairs([("i", 4), ("j", 5), ("k", 6), ("n", 3)]);
    let (a, b) = random_inputs::<f64>(&tc, &sizes, 1);
    let c = contract_reference(&tc, &sizes, &a, &b);
    // Each batch slice is an independent matmul.
    for n in 0..3 {
        for i in 0..4 {
            for j in 0..5 {
                let mut want = 0.0;
                for k in 0..6 {
                    want += a.get(&[i, k, n]) * b.get(&[k, j, n]);
                }
                assert!((c.get(&[i, j, n]) - want).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn cogent_generates_and_executes_batched_contraction() {
    let tc = batched_matmul();
    let sizes = SizeMap::from_pairs([("i", 24), ("j", 20), ("k", 16), ("n", 6)]);
    let g = Cogent::new().generate(&tc, &sizes).unwrap();
    // The batch index must end up grid-mapped with tile 1.
    assert_eq!(g.plan.binding("n").unwrap().tile, 1);
    assert_eq!(g.plan.binding("n").unwrap().dim, cogent::sim::MapDim::Grid,);
    let (a, b) = random_inputs::<f64>(&g.contraction, &sizes, 2);
    let got = execute_plan(&g.plan, &a, &b);
    let want = contract_reference(&g.contraction, &sizes, &a, &b);
    assert!(got.approx_eq(&want, 1e-11));
    // The emitted CUDA treats n as a grid dimension with tile 1.
    assert!(g.cuda_source.contains("#define T_n 1"));
}

#[test]
fn batched_6d_contraction_with_register_tiles() {
    // C[a,b,c,d,n] = A[a,e,b,n] * B[d,e,c,n]: batch n, internals e.
    let tc = Contraction::with_batch(
        TensorRef::new("C", ["a", "b", "c", "d", "n"]),
        TensorRef::new("A", ["a", "e", "b", "n"]),
        TensorRef::new("B", ["d", "e", "c", "n"]),
    )
    .unwrap();
    let sizes = SizeMap::from_pairs([("a", 8), ("b", 6), ("c", 7), ("d", 5), ("e", 9), ("n", 4)]);
    let g = Cogent::new().generate(&tc, &sizes).unwrap();
    let (a, b) = random_inputs::<f64>(&g.contraction, &sizes, 3);
    let got = execute_plan(&g.plan, &a, &b);
    let want = contract_reference(&g.contraction, &sizes, &a, &b);
    assert!(got.approx_eq(&want, 1e-11));
}

#[test]
fn baselines_handle_batch_indices() {
    let tc = batched_matmul();
    let sizes = SizeMap::from_pairs([("i", 10), ("j", 8), ("k", 6), ("n", 3)]);
    let (a, b) = random_inputs::<f64>(&tc.normalized(), &sizes, 4);
    let want = contract_reference(&tc.normalized(), &sizes, &a, &b);
    let via_nwchem = NwchemLikeGenerator::new().execute(&tc, &sizes, &a, &b);
    assert!(via_nwchem.approx_eq(&want, 1e-11));
    let via_naive = NaiveDirect::new().execute(&tc, &sizes, &a, &b);
    assert!(via_naive.approx_eq(&want, 1e-11));
}

#[test]
#[should_panic(expected = "TTGT does not support batch")]
fn ttgt_rejects_batch_indices() {
    let tc = batched_matmul();
    let sizes = SizeMap::from_pairs([("i", 4), ("j", 4), ("k", 4), ("n", 2)]);
    let _ = cogent::tensor::ttgt::TtgtPlan::new(&tc, &sizes);
}

#[test]
fn batched_flops_and_blocks_scale_with_batch() {
    let tc = batched_matmul();
    let small = SizeMap::from_pairs([("i", 32), ("j", 32), ("k", 32), ("n", 2)]);
    let large = SizeMap::from_pairs([("i", 32), ("j", 32), ("k", 32), ("n", 8)]);
    let gs = Cogent::new().generate(&tc, &small).unwrap();
    let gl = Cogent::new().generate(&tc, &large).unwrap();
    assert_eq!(gl.plan.true_flops(), 4 * gs.plan.true_flops());
    assert_eq!(gl.plan.num_blocks() % gs.plan.num_blocks(), 0);
}
