//! The full-suite correctness sweep: every one of the 48 TCCG
//! contractions, shrunk to a functionally-testable size, must execute
//! correctly through (a) COGENT's generated plan, (b) the NWChem-like
//! fixed-recipe plan, and (c) the TTGT pipeline.

use cogent::baselines::{NwchemLikeGenerator, TtgtEngine};
use cogent::prelude::*;
use cogent::tensor::reference::{contract_reference, random_inputs};

/// Shrinks an entry's sizes so the functional test stays fast: every
/// extent is reduced to at most `cap` (but at least 2 where possible).
fn test_sizes(entry: &cogent::tccg::TccgEntry, cap: usize) -> SizeMap {
    let mut out = SizeMap::new();
    for (idx, extent) in entry.sizes().iter() {
        out.set(idx.clone(), extent.min(cap).max(1));
    }
    out
}

#[test]
fn all_48_entries_execute_correctly_via_cogent() {
    for entry in cogent::tccg::suite() {
        let tc = entry.contraction();
        let sizes = test_sizes(&entry, 5);
        let generated = Cogent::new()
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let (a, b) = random_inputs::<f64>(&generated.contraction, &sizes, entry.id as u64);
        let got = execute_plan(&generated.plan, &a, &b);
        let want = contract_reference(&generated.contraction, &sizes, &a, &b);
        assert!(
            got.approx_eq(&want, 1e-10),
            "{}: diverged by {}",
            entry.name,
            got.max_abs_diff(&want)
        );
    }
}

#[test]
fn all_48_entries_execute_correctly_via_nwchem_like() {
    let engine = NwchemLikeGenerator::new();
    for entry in cogent::tccg::suite() {
        let tc = entry.contraction().normalized();
        let sizes = test_sizes(&entry, 5);
        let (a, b) = random_inputs::<f64>(&tc, &sizes, entry.id as u64 + 1000);
        let got = engine.execute(&tc, &sizes, &a, &b);
        let want = contract_reference(&tc, &sizes, &a, &b);
        assert!(
            got.approx_eq(&want, 1e-10),
            "{}: diverged by {}",
            entry.name,
            got.max_abs_diff(&want)
        );
    }
}

#[test]
fn all_48_entries_execute_correctly_via_ttgt() {
    let engine = TtgtEngine::new();
    for entry in cogent::tccg::suite() {
        let tc = entry.contraction();
        let sizes = test_sizes(&entry, 5);
        let (a, b) = random_inputs::<f64>(&tc, &sizes, entry.id as u64 + 2000);
        let got = engine.execute(&tc, &sizes, &a, &b);
        let want = contract_reference(&tc, &sizes, &a, &b);
        assert!(
            got.approx_eq(&want, 1e-10),
            "{}: diverged by {}",
            entry.name,
            got.max_abs_diff(&want)
        );
    }
}

#[test]
fn all_48_entries_have_finite_simulated_measurements() {
    use cogent::baselines::measure_cogent;
    let device = GpuDevice::v100();
    for entry in cogent::tccg::suite().into_iter().step_by(5) {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let m = measure_cogent(&tc, &sizes, &device, Precision::F64);
        assert!(m.time_s.is_finite() && m.time_s > 0.0, "{}", entry.name);
        assert!(
            m.gflops > 1.0 && m.gflops < device.peak_gflops_f64,
            "{}: {} GFLOPS",
            entry.name,
            m.gflops
        );
    }
}
