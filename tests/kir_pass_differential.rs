//! Differential pinning of the KIR pass pipeline: for every entry of the
//! 48-benchmark TCCG suite, the lowered program transformed by the
//! default pass pipeline (vectorize → pad → double-buffer) must still
//! interpret to the sequential reference result, lint clean under the
//! pass-aware structural checks, and never predict more global-memory
//! traffic than the baseline.
//!
//! Extents are ragged (not divisible by typical tiles), so partial-tile
//! guards, the vector alignment fallback, and prologue/prefetch staging
//! are all exercised on most entries.

use cogent::kir::{estimate_traffic, interpret, lint_kernel_program, lower_to_kir, PassManager};
use cogent::prelude::*;
use cogent::tensor::reference::{contract_reference, random_inputs};

#[test]
fn default_pipeline_is_sound_on_all_48_entries() {
    let mut applied_any = 0usize;
    for (i, entry) in cogent::tccg::suite().into_iter().enumerate() {
        let tc = entry.contraction();
        let sizes = SizeMap::uniform(&tc, 4 + (i % 3));
        let g = Cogent::new()
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));

        let base = lower_to_kir(&g.plan).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let before = estimate_traffic(&base)
            .unwrap_or_else(|e| panic!("{}: baseline traffic: {e}", entry.name));

        let mut prog = base.clone();
        let report = PassManager::default_pipeline(2)
            .run(&mut prog)
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", entry.name));
        let applied = report.applied();
        assert_eq!(
            prog.meta.passes, applied,
            "{}: provenance must match the pipeline report",
            entry.name
        );
        if !applied.is_empty() {
            applied_any += 1;
        }

        let plan_sizes = SizeMap::from_pairs(
            g.plan
                .bindings()
                .iter()
                .map(|b| (b.name.as_str(), b.extent)),
        );
        let (a, b) = random_inputs::<f64>(g.plan.contraction(), &plan_sizes, 83 + i as u64);
        let want = contract_reference(g.plan.contraction(), &plan_sizes, &a, &b);
        let got = interpret(&prog, &plan_sizes, &a, &b).unwrap_or_else(|e| {
            panic!("{}: interpreter failed after {applied:?}: {e}", entry.name)
        });
        assert!(
            got.approx_eq(&want, 1e-10),
            "{}: passes {:?} diverge from reference by {:e}",
            entry.name,
            applied,
            got.max_abs_diff(&want)
        );

        let lint = lint_kernel_program(&prog);
        assert!(
            lint.is_clean(),
            "{}: passes {:?} fail lint: {:?}",
            entry.name,
            applied,
            lint.findings
        );

        let after = estimate_traffic(&prog)
            .unwrap_or_else(|e| panic!("{}: transformed traffic: {e}", entry.name));
        assert!(
            after.global_requests <= before.global_requests,
            "{}: pipeline regressed global requests {} -> {}",
            entry.name,
            before.global_requests,
            after.global_requests
        );
        assert!(
            after.barriers <= before.barriers,
            "{}: pipeline regressed barriers {} -> {}",
            entry.name,
            before.barriers,
            after.barriers
        );
    }
    assert!(
        applied_any >= 16,
        "default pipeline applied nothing on {}/48 entries",
        48 - applied_any
    );
}

/// At the real TCCG benchmark sizes the pipeline must pay for itself:
/// predicted global-memory warp requests strictly reduced on at least a
/// third of the suite, and never increased anywhere.
#[test]
fn default_pipeline_strictly_reduces_requests_on_a_third_of_the_suite() {
    let mut improved = 0usize;
    let mut total = 0usize;
    for entry in cogent::tccg::suite() {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let g = Cogent::new()
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let base = lower_to_kir(&g.plan).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let before = estimate_traffic(&base)
            .unwrap_or_else(|e| panic!("{}: baseline traffic: {e}", entry.name));
        let mut prog = base;
        PassManager::default_pipeline(2)
            .run(&mut prog)
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", entry.name));
        let after = estimate_traffic(&prog)
            .unwrap_or_else(|e| panic!("{}: transformed traffic: {e}", entry.name));
        assert!(
            after.global_requests <= before.global_requests,
            "{}: pipeline regressed global requests {} -> {}",
            entry.name,
            before.global_requests,
            after.global_requests
        );
        total += 1;
        if after.global_requests < before.global_requests {
            improved += 1;
        }
    }
    assert!(
        improved * 3 >= total,
        "requests strictly reduced on only {improved}/{total} entries"
    );
}
