//! Serialization coverage for the public data types: configurations,
//! search outcomes, devices and reports implement `serde::Serialize` so
//! bench harnesses can persist and diff them across runs. The workspace
//! deliberately adds no JSON crate, so instead of a textual round-trip the
//! test drives each `Serialize` impl with a counting serializer, proving
//! the impl traverses every field of the value without panicking.

use cogent::generator::select::{search, SearchOptions};
use cogent::generator::KernelConfig;
use cogent::prelude::*;

fn serde_json_like<T: serde::Serialize>(value: &T) -> CountedTree {
    let mut counter = CountingSerializer::default();
    value
        .serialize(&mut counter)
        .expect("serialization never fails for plain data");
    CountedTree {
        nodes: counter.nodes,
    }
}

/// Minimal serializer that counts emitted data-model leaves.
#[derive(Default)]
struct CountingSerializer {
    nodes: usize,
}

#[derive(Debug, PartialEq)]
struct CountedTree {
    nodes: usize,
}

mod counting_impl {
    use super::CountingSerializer;
    use serde::ser::*;

    #[derive(Debug)]
    pub struct Never;
    impl std::fmt::Display for Never {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("never")
        }
    }
    impl std::error::Error for Never {}
    impl Error for Never {
        fn custom<T: std::fmt::Display>(_: T) -> Self {
            Never
        }
    }

    macro_rules! count_leaf {
        ($($m:ident: $t:ty,)*) => {
            $(fn $m(self, _v: $t) -> Result<(), Never> { self.nodes += 1; Ok(()) })*
        };
    }

    impl Serializer for &mut CountingSerializer {
        type Ok = ();
        type Error = Never;
        type SerializeSeq = Self;
        type SerializeTuple = Self;
        type SerializeTupleStruct = Self;
        type SerializeTupleVariant = Self;
        type SerializeMap = Self;
        type SerializeStruct = Self;
        type SerializeStructVariant = Self;

        count_leaf! {
            serialize_bool: bool, serialize_i8: i8, serialize_i16: i16,
            serialize_i32: i32, serialize_i64: i64, serialize_i128: i128,
            serialize_u8: u8, serialize_u16: u16, serialize_u32: u32,
            serialize_u64: u64, serialize_u128: u128, serialize_f32: f32,
            serialize_f64: f64, serialize_char: char, serialize_str: &str,
            serialize_bytes: &[u8],
        }
        fn serialize_none(self) -> Result<(), Never> {
            self.nodes += 1;
            Ok(())
        }
        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), Never> {
            v.serialize(&mut *self)
        }
        fn serialize_unit(self) -> Result<(), Never> {
            self.nodes += 1;
            Ok(())
        }
        fn serialize_unit_struct(self, _: &'static str) -> Result<(), Never> {
            self.nodes += 1;
            Ok(())
        }
        fn serialize_unit_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
        ) -> Result<(), Never> {
            self.nodes += 1;
            Ok(())
        }
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            v: &T,
        ) -> Result<(), Never> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            v: &T,
        ) -> Result<(), Never> {
            v.serialize(self)
        }
        fn serialize_seq(self, _: Option<usize>) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple(self, _: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple_struct(self, _: &'static str, _: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_map(self, _: Option<usize>) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_struct(self, _: &'static str, _: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_struct_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Self, Never> {
            Ok(self)
        }
    }

    impl SerializeSeq for &mut CountingSerializer {
        type Ok = ();
        type Error = Never;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl SerializeTuple for &mut CountingSerializer {
        type Ok = ();
        type Error = Never;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl SerializeTupleStruct for &mut CountingSerializer {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl SerializeTupleVariant for &mut CountingSerializer {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl SerializeMap for &mut CountingSerializer {
        type Ok = ();
        type Error = Never;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, k: &T) -> Result<(), Never> {
            k.serialize(&mut **self)
        }
        fn serialize_value<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl SerializeStruct for &mut CountingSerializer {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            _: &'static str,
            v: &T,
        ) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl SerializeStructVariant for &mut CountingSerializer {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            _: &'static str,
            v: &T,
        ) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
}

#[test]
fn public_types_serialize_completely() {
    // Contraction + SizeMap.
    let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
    let sizes = SizeMap::uniform(&tc, 32);
    assert!(serde_json_like(&tc).nodes > 10);
    assert!(serde_json_like(&sizes).nodes >= 12); // 6 names + 6 extents

    // Devices and reports.
    let device = GpuDevice::v100();
    assert!(serde_json_like(&device).nodes > 10);

    // A full search outcome (configs, costs, histogram).
    let outcome = search(
        &tc,
        &sizes,
        &device,
        Precision::F64,
        &SearchOptions::default(),
    );
    let nodes = serde_json_like(&outcome).nodes;
    assert!(nodes > 100, "outcome serialized only {nodes} nodes");

    // A kernel configuration.
    let cfg = KernelConfig {
        tbx: vec![("a".into(), 16)],
        regx: vec![("b".into(), 4)],
        tby: vec![("d".into(), 16)],
        regy: vec![("c".into(), 4)],
        tbk: vec![("e".into(), 8), ("f".into(), 2)],
    };
    assert!(serde_json_like(&cfg).nodes >= 12);

    // A simulation report.
    let plan = cfg.lower(&tc.normalized(), &sizes).unwrap();
    let report = cogent::sim::simulate(&plan, &device, Precision::F64);
    assert!(serde_json_like(&report).nodes > 10);
}
