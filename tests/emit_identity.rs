//! Byte-identity pinning of the whole emit corpus: with no KIR passes
//! enabled, every TCCG entry × every backend dialect must print byte-for-
//! byte what the pre-layout-algebra lowering printed. The corpus is too
//! large to check in verbatim (48 × 3 sources), so each source is pinned
//! by a 64-bit FNV-1a content hash in `tests/golden/emit_hashes.txt`,
//! captured from the last pre-refactor build. Any drift in lowering or
//! printing shows up as a named (entry, backend) hash mismatch.
//!
//! Regenerate the corpus deliberately (after a reviewed snapshot change)
//! with: `cargo test --test emit_identity -- --ignored bless`

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cogent::generator::codegen::{emit_backend_kernel, Backend};
use cogent::prelude::*;

const CORPUS: &str = "tests/golden/emit_hashes.txt";

/// FNV-1a 64-bit — the same dependency-free hash `kir::lower` uses for
/// kernel names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Emits the full corpus and returns `(entry, backend) -> hash` in
/// deterministic order.
fn current_corpus() -> BTreeMap<(String, String), u64> {
    let mut out = BTreeMap::new();
    for entry in cogent::tccg::suite() {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let g = Cogent::new()
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        for backend in Backend::ALL {
            let source = emit_backend_kernel(&g.plan, Precision::F64, backend);
            out.insert(
                (entry.name.to_string(), backend.to_string()),
                fnv1a(source.as_bytes()),
            );
        }
    }
    out
}

fn render(corpus: &BTreeMap<(String, String), u64>) -> String {
    let mut out = String::new();
    for ((entry, backend), hash) in corpus {
        let _ = writeln!(out, "{entry} {backend} {hash:016x}");
    }
    out
}

#[test]
fn all_48x3_sources_match_the_pre_refactor_hash_corpus() {
    let want = std::fs::read_to_string(CORPUS)
        .unwrap_or_else(|e| panic!("{CORPUS} missing ({e}); run the bless test to create it"));
    let got = render(&current_corpus());
    let want_map: BTreeMap<&str, &str> = want.lines().filter_map(|l| l.rsplit_once(' ')).collect();
    let got_map: BTreeMap<&str, &str> = got.lines().filter_map(|l| l.rsplit_once(' ')).collect();
    let mut drifted = Vec::new();
    for (key, want_hash) in &want_map {
        match got_map.get(key) {
            Some(got_hash) if got_hash == want_hash => {}
            Some(got_hash) => drifted.push(format!("{key}: {want_hash} -> {got_hash}")),
            None => drifted.push(format!("{key}: missing from emitted corpus")),
        }
    }
    for key in got_map.keys() {
        if !want_map.contains_key(key) {
            drifted.push(format!("{key}: not in {CORPUS}"));
        }
    }
    assert!(
        drifted.is_empty(),
        "emit corpus drifted from the pre-refactor bytes:\n{}",
        drifted.join("\n")
    );
}

/// Writes the current corpus hashes to the golden file. Run explicitly
/// (`--ignored bless`) when a byte-level emission change is intended.
#[test]
#[ignore = "regenerates the golden hash corpus"]
fn bless_emit_hash_corpus() {
    std::fs::write(CORPUS, render(&current_corpus())).expect("writing the corpus");
}
