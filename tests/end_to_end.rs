//! End-to-end integration: generate → lower → execute → verify, across
//! crates, on representative contractions of every TCCG group.

use cogent::prelude::*;
use cogent::tensor::reference::{contract_reference, random_inputs};

/// Generates a kernel for the entry at a functionally-testable size and
/// checks the executed plan against the reference contraction.
fn verify_entry(entry: &cogent::tccg::TccgEntry, shrink: usize) {
    let tc = entry.contraction();
    let sizes = entry.sizes().scaled_down(shrink);
    let generated = Cogent::new()
        .generate(&tc, &sizes)
        .unwrap_or_else(|e| panic!("{}: generation failed: {e}", entry.name));
    let (a, b) = random_inputs::<f64>(&generated.contraction, &sizes, entry.id as u64);
    let got = execute_plan(&generated.plan, &a, &b);
    let want = contract_reference(&generated.contraction, &sizes, &a, &b);
    assert!(
        got.approx_eq(&want, 1e-10),
        "{}: kernel diverged by {}",
        entry.name,
        got.max_abs_diff(&want)
    );
    // The emitted CUDA reflects the same plan.
    assert!(generated.cuda_source.contains("__global__"));
    for b in generated.plan.bindings() {
        assert!(
            generated
                .cuda_source
                .contains(&format!("#define T_{} {}", b.name, b.tile)),
            "{}: tile constant for {} missing",
            entry.name,
            b.name
        );
    }
}

#[test]
fn ml_group_representative() {
    let suite = cogent::tccg::suite();
    verify_entry(&suite[0], 16); // abc-acd-db
    verify_entry(&suite[5], 8); // abcd-abed-ce
}

#[test]
fn aomo_group_representative() {
    let suite = cogent::tccg::suite();
    verify_entry(&suite[8], 8); // abcd-ebcd-ae
}

#[test]
fn ccsd_group_representative() {
    let suite = cogent::tccg::suite();
    verify_entry(&suite[11], 8); // Eq. 1
    verify_entry(&suite[12], 24); // ab-acd-dbc
    verify_entry(&suite[24], 8); // abcd-efab-cdfe
}

#[test]
fn ccsdt_group_representative() {
    let suite = cogent::tccg::suite();
    verify_entry(&suite[30], 3); // sd1_1
    verify_entry(&suite[39], 3); // sd2_1
}

#[test]
fn generated_kernel_is_size_agnostic() {
    // The kernel is generated against one representative size but must be
    // correct for others: lower the SAME configuration at different sizes.
    let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
    let rep = SizeMap::uniform(&tc, 32);
    let generated = Cogent::new().generate(&tc, &rep).unwrap();

    for extent in [5usize, 9, 17] {
        let sizes = SizeMap::uniform(&tc, extent);
        let plan = generated
            .config
            .lower(&generated.contraction, &sizes)
            .expect("configuration lowers at any size");
        let (a, b) = random_inputs::<f64>(&generated.contraction, &sizes, extent as u64);
        let got = execute_plan(&plan, &a, &b);
        let want = contract_reference(&generated.contraction, &sizes, &a, &b);
        assert!(got.approx_eq(&want, 1e-11), "extent {extent}");
    }
}

#[test]
fn explicit_notation_round_trip() {
    // NWChem-style multi-character index names flow through the whole
    // pipeline.
    let tc: Contraction = "T3[h1,h2,p4,p5] = T2[h3,p4,h1] * V2[p5,h3,h2]"
        .parse()
        .unwrap();
    let sizes = SizeMap::from_pairs([("h1", 6), ("h2", 6), ("h3", 8), ("p4", 10), ("p5", 10)]);
    let generated = Cogent::new().generate(&tc, &sizes).unwrap();
    let (a, b) = random_inputs::<f64>(&generated.contraction, &sizes, 5);
    let got = execute_plan(&generated.plan, &a, &b);
    let want = contract_reference(&generated.contraction, &sizes, &a, &b);
    assert!(got.approx_eq(&want, 1e-11));
    assert!(generated.cuda_source.contains("N_h3"));
}

#[test]
fn matvec_shape_generates_and_executes() {
    // Regression: B purely internal (no externals) must still generate —
    // TBy is legitimately empty and the block is one thread tall.
    let tc: Contraction = "i-ik-k".parse().unwrap();
    let sizes = SizeMap::from_pairs([("i", 512), ("k", 64)]);
    let g = Cogent::new().generate(&tc, &sizes).unwrap();
    let (a, b) = random_inputs::<f64>(&g.contraction, &sizes, 9);
    let got = execute_plan(&g.plan, &a, &b);
    let want = contract_reference(&g.contraction, &sizes, &a, &b);
    assert!(got.approx_eq(&want, 1e-11));
}

#[test]
fn f32_pipeline_end_to_end() {
    let tc: Contraction = "abcdef-gdab-efgc".parse().unwrap();
    let sizes = SizeMap::uniform(&tc, 5);
    let generated = Cogent::new()
        .precision(Precision::F32)
        .generate(&tc, &sizes)
        .unwrap();
    let (a, b) = random_inputs::<f32>(&generated.contraction, &sizes, 3);
    let got = execute_plan(&generated.plan, &a, &b);
    let want = contract_reference(&generated.contraction, &sizes, &a, &b);
    assert!(got.approx_eq(&want, 1e-3));
}
