//! Differential pinning of the kernel-IR interpreter: for every entry of
//! the 48-benchmark TCCG suite, the lowered [`cogent::kir::KernelProgram`]
//! interpreted over random inputs must agree with both the plan-level
//! executor and the sequential reference contraction.
//!
//! The interpreter consumes the *same tree the backends print*, so this
//! test certifies the semantics of the emitted kernel text itself — the
//! staging loops, the mixed-radix index arithmetic, the guards — not just
//! the plan it was lowered from. Extents are shrunk to keep the
//! interpreter affordable while staying ragged (not divisible by typical
//! tiles), which keeps every partial-tile guard in play.

use cogent::kir::interpret_plan;
use cogent::prelude::*;
use cogent::sim::try_execute_plan;
use cogent::tensor::reference::{contract_reference, random_inputs};

#[test]
fn interpreter_matches_executor_and_reference_on_all_48_entries() {
    for (i, entry) in cogent::tccg::suite().into_iter().enumerate() {
        let tc = entry.contraction();
        // Small ragged extents: large enough for multi-tile grids, small
        // enough that 48 interpreted kernels stay fast.
        let sizes = SizeMap::uniform(&tc, 4 + (i % 3));
        let g = Cogent::new()
            .generate(&tc, &sizes)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let plan_sizes = SizeMap::from_pairs(
            g.plan
                .bindings()
                .iter()
                .map(|b| (b.name.as_str(), b.extent)),
        );
        let (a, b) = random_inputs::<f64>(g.plan.contraction(), &plan_sizes, 29 + i as u64);

        let want = contract_reference(g.plan.contraction(), &plan_sizes, &a, &b);
        let exec = try_execute_plan(&g.plan, &a, &b)
            .unwrap_or_else(|e| panic!("{}: executor failed: {e}", entry.name));
        let interp = interpret_plan(&g.plan, &a, &b)
            .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", entry.name));

        assert!(
            interp.approx_eq(&want, 1e-10),
            "{}: interpreter vs reference diff {:e}",
            entry.name,
            interp.max_abs_diff(&want)
        );
        assert!(
            interp.approx_eq(&exec, 1e-11),
            "{}: interpreter vs executor diff {:e}",
            entry.name,
            interp.max_abs_diff(&exec)
        );
    }
}
