#!/usr/bin/env bash
# Local/CI gate: build, test, lint, format — exactly what the GitHub
# Actions workflow runs. All dependencies are vendored in vendor/, so the
# whole gate works offline; when the network (or a pre-populated cargo
# registry) is unavailable we pass --offline explicitly.
set -euo pipefail
cd "$(dirname "$0")"

OFFLINE=""
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    echo "cargo metadata failed without --offline; falling back to offline mode" >&2
    OFFLINE="--offline"
fi

run() {
    echo "+ $*" >&2
    "$@"
}

run cargo build --release $OFFLINE
run cargo test -q --workspace $OFFLINE
# The fault-injection suite on its own: a fast, named signal that the
# guard layer's detection matrix (static faults → validator, dynamic
# faults → divergence check) still holds.
run cargo test -q -p cogent-gpu-sim $OFFLINE fault
run cargo test -q -p cogent-core --test fault_matrix $OFFLINE
# Determinism sweep under both thread settings: serial and chunked
# parallel search must emit byte-identical kernels for every TCCG entry.
run env COGENT_THREADS=1 cargo test -q --test determinism $OFFLINE
run env COGENT_THREADS=4 cargo test -q --test determinism $OFFLINE
# search_bench smoke: the serial/parallel/warm-cache sweep must agree
# byte-for-byte (the binary asserts it) and produce a report.
run cargo run --release $OFFLINE -p cogent-bench --bin search_bench -- \
    --quick --out target/search_bench_smoke.json
test -s target/search_bench_smoke.json
# Cold-path latency gate: the smoke run's per-entry cold_ms, summed over
# the entries shared with the checked-in baseline, must stay under a
# loose ratio ceiling (wall clock varies across machines; the gate
# catches order-of-magnitude regressions, not noise). Regenerate
# results/search_bench.json intentionally with:
#   cargo run --release -p cogent-bench --bin search_bench
run cargo run --release $OFFLINE -p cogent-search-diff --bin search_diff -- \
    results/search_bench.json target/search_bench_smoke.json
# Audit smoke + perf-regression gate: audit a TCCG subset (small K) and
# compare it against the checked-in baseline. bench_diff matches entries
# by name, prints every offending metric, and exits nonzero when rank
# correlation drops or regret/relative error/search latency rise beyond
# tolerance. Regenerate results/audit_baseline.json intentionally with:
#   cargo run --release -p cogent-bench --bin audit_bench
run cargo run --release $OFFLINE -p cogent-bench --bin audit_bench -- \
    --quick --out target/audit_smoke.json
run cargo run --release $OFFLINE -p cogent-bench-diff --bin bench_diff -- \
    results/audit_baseline.json target/audit_smoke.json
# Observability overhead gate: the instrumented build with tracing
# disabled must stay within a fixed ratio of a stripped build (the
# `strip` feature compiles cogent-obs out). Stripped first: its build
# replaces the normal artifacts, and the instrumented run below restores
# them for the steps after.
run cargo run --release $OFFLINE -p cogent-bench --bin overhead_gate --features strip -- \
    --quick --out target/overhead_stripped.json
run cargo run --release $OFFLINE -p cogent-bench --bin overhead_gate -- \
    --quick --out target/overhead_instrumented.json
run cargo run --release $OFFLINE -p cogent-overhead-diff --bin overhead_diff -- \
    target/overhead_stripped.json target/overhead_instrumented.json
# Profiler + global-metrics smoke: `cogent profile` must attribute the
# cold path on a TCCG entry (table + folded stacks), and `cogent stats`
# must expose the merged cross-thread registry.
run cargo run --release $OFFLINE --bin cogent -- profile "abcd-aebf-dfce" --size 24 \
    --runs 2 --folded target/profile_smoke.folded
test -s target/profile_smoke.folded
run env COGENT_THREADS=4 cargo run --release $OFFLINE --bin cogent -- stats \
    "abcd-aebf-dfce" --size 24 --threads 4 > target/stats_smoke.prom
grep -q 'cogent_prune_checked_total' target/stats_smoke.prom
# Serve robustness: the service-level chaos suite (malformed requests,
# slowloris, worker panics, corrupted cache files, kill-and-restart
# byte-identity) and a daemon smoke check — the binary must refuse
# malformed env/flags with exit 2 and a one-line diagnostic.
run cargo test -q -p cogent-core --test serve_chaos $OFFLINE
run cargo test -q -p cogent-core --test persist_prop $OFFLINE
if COGENT_CACHE_CAP=banana cargo run --release $OFFLINE --bin cogent -- serve 2>/dev/null; then
    echo "serve smoke: malformed COGENT_CACHE_CAP must refuse startup" >&2
    exit 1
fi
# Flight-recorder smoke: a live daemon must echo request ids, serve the
# cogent.flight.v1 debug endpoint, write slow/drain dumps plus the
# structured access log, and round-trip through `cogent flight`.
run ./tools/flight_smoke.sh
# Traffic replay gate: a deterministic seeded request trace over loopback
# must match the checked-in service baseline (exact warm hit counts, zero
# errors; latency gated only against catastrophic regressions).
# Regenerate results/traffic_replay.json intentionally with:
#   cargo run --release -p cogent-bench --bin traffic_replay
run cargo run --release $OFFLINE -p cogent-bench --bin traffic_replay -- \
    --out target/traffic_replay_ci.json --check results/traffic_replay.json
# Emission gate: every TCCG entry x every backend dialect (CUDA, OpenCL,
# HIP) must emit and pass both the text lint and the structural IR lint.
run cargo run --release $OFFLINE -p cogent-emit-gate --bin emit_gate
run ./tools/unwrap_gate.sh
run cargo clippy --workspace --all-targets $OFFLINE -- -D warnings
run cargo fmt --all -- --check

echo "ci.sh: all checks passed" >&2
