//! Workspace-local `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The offline build environment cannot fetch `syn`/`quote`, so this crate
//! parses the item token stream by hand. It supports the shapes the
//! workspace actually derives on:
//!
//! * structs with named fields,
//! * tuple structs (newtype included),
//! * unit structs,
//! * enums whose variants are unit, tuple, or struct-like.
//!
//! `#[serde(...)]` attributes are not supported (none are used in the
//! workspace); generics are rejected with a compile error rather than
//! silently mis-expanding.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field-less view of the deriving item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// True for tokens that may precede the `struct`/`enum` keyword.
fn is_visibility(tok: &TokenTree) -> bool {
    match tok {
        TokenTree::Ident(i) => i.to_string() == "pub",
        TokenTree::Group(g) => g.delimiter() == Delimiter::Parenthesis,
        _ => false,
    }
}

/// Strips `#[...]` attributes (including doc comments) from the front of
/// `toks` starting at `pos`, returning the new position.
fn skip_attributes(toks: &[TokenTree], mut pos: usize) -> usize {
    while pos + 1 < toks.len() {
        match (&toks[pos], &toks[pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                pos += 2;
            }
            _ => break,
        }
    }
    pos
}

/// Splits the tokens of a delimited group on top-level commas, dropping a
/// trailing empty segment.
fn split_top_level_commas(tokens: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    // Angle brackets do not form token groups, so `Vec<(A, B)>` style types
    // need explicit depth tracking to avoid splitting on the inner comma.
    let mut angle_depth = 0i32;
    for tok in tokens {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().unwrap().push(tok);
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

/// Extracts the field names from the tokens of a `{ ... }` fields group.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for segment in split_top_level_commas(group) {
        let seg = &segment[skip_attributes(&segment, 0)..];
        // Skip visibility, then the next ident followed by `:` is the name.
        let mut pos = 0;
        while pos < seg.len() && is_visibility(&seg[pos]) {
            pos += 1;
        }
        match seg.get(pos) {
            Some(TokenTree::Ident(name)) => names.push(name.to_string()),
            _ => return Err("unsupported field syntax".into()),
        }
    }
    Ok(names)
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for segment in split_top_level_commas(group) {
        let seg = &segment[skip_attributes(&segment, 0)..];
        let name = match seg.first() {
            Some(TokenTree::Ident(name)) => name.to_string(),
            _ => return Err("unsupported enum variant syntax".into()),
        };
        let shape = match seg.get(1) {
            None => VariantShape::Unit,
            // Explicit discriminant: `Name = expr`.
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantShape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantShape::Tuple(split_top_level_commas(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            Some(_) => return Err("unsupported enum variant syntax".into()),
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = skip_attributes(&toks, 0);
    while pos < toks.len() && is_visibility(&toks[pos]) {
        pos += 1;
    }
    let kind = match &toks[pos..] {
        [TokenTree::Ident(kw), ..] if kw.to_string() == "struct" || kw.to_string() == "enum" => {
            kw.to_string()
        }
        _ => return Err("derive supports only structs and enums".into()),
    };
    pos += 1;
    let name = match toks.get(pos) {
        Some(TokenTree::Ident(name)) => name.to_string(),
        _ => return Err("missing item name".into()),
    };
    pos += 1;
    if matches!(toks.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("generic types are not supported by the vendored serde derive".into());
    }
    match toks.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            } else {
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(g.stream())?,
                })
            }
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Ok(Item::TupleStruct {
                name,
                arity: split_top_level_commas(g.stream()).len(),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && kind == "struct" => {
            Ok(Item::UnitStruct { name })
        }
        _ => Err("unsupported item body".into()),
    }
}

fn serialize_body(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = format!(
                "let mut state = ::serde::Serializer::serialize_struct(serializer, {name:?}, {})?;\n",
                fields.len()
            );
            for field in fields {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut state, {field:?}, &self.{field})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeStruct::end(state)");
            body
        }
        Item::TupleStruct { name, arity: 1 } => {
            format!("::serde::Serializer::serialize_newtype_struct(serializer, {name:?}, &self.0)")
        }
        Item::TupleStruct { name, arity } => {
            let mut body = format!(
                "let mut state = ::serde::Serializer::serialize_tuple_struct(serializer, {name:?}, {arity})?;\n"
            );
            for i in 0..*arity {
                body.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut state, &self.{i})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeTupleStruct::end(state)");
            body
        }
        Item::UnitStruct { name } => {
            format!("::serde::Serializer::serialize_unit_struct(serializer, {name:?})")
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (index, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(serializer, {name:?}, {index}u32, {vname:?}),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Serializer::serialize_newtype_variant(serializer, {name:?}, {index}u32, {vname:?}, f0),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\nlet mut state = ::serde::Serializer::serialize_tuple_variant(serializer, {name:?}, {index}u32, {vname:?}, {arity})?;\n",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut state, {b})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTupleVariant::end(state)\n}\n");
                        arms.push_str(&arm);
                    }
                    VariantShape::Named(fields) => {
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut state = ::serde::Serializer::serialize_struct_variant(serializer, {name:?}, {index}u32, {vname:?}, {})?;\n",
                            fields.join(", "),
                            fields.len()
                        );
                        for field in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut state, {field:?}, {field})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(state)\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    }
}

/// Derives `serde::Serialize` by traversing every field.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let name = match &item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name.clone(),
    };
    let body = serialize_body(&item);
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derives the `serde::Deserialize` marker (see the vendored `serde::de`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let name = match &item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name.clone(),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{}}"
    )
    .parse()
    .unwrap()
}
