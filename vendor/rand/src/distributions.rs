//! Value distributions.

use crate::{RngCore, SampleUniform};

/// A distribution that can produce values of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: SampleUniform> Uniform<T> {
    /// Creates a uniform distribution over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new: empty range");
        Self { low, high }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.low, self.high)
    }
}
