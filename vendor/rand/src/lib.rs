//! A workspace-local subset of the `rand 0.8` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice it uses: `StdRng` (here a xoshiro256++ generator — not the
//! upstream ChaCha12, so streams differ from real `rand`, which is fine
//! because callers only rely on determinism per seed), `SeedableRng`,
//! `Rng::{gen_range, gen_bool}`, and `distributions::{Distribution,
//! Uniform}` for floats.

pub mod distributions;
pub mod rngs;

pub use rngs::StdRng;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample types for [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The successor value, for inclusive upper bounds.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {
        $(
            impl SampleUniform for $ty {
                fn sample_half_open<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                ) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (low as i128 + v as i128) as $ty
                }
                fn successor(self) -> Self {
                    self.checked_add(1).expect("gen_range: inclusive bound overflow")
                }
            }
        )*
    };
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
    fn successor(self) -> Self {
        self
    }
}

/// User-facing random value generation.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range.
    fn gen_range<T: SampleUniform, R: RangeBounds<T>>(&mut self, range: R) -> T {
        let (low, high) = range.clarify();
        T::sample_half_open(self, low, high)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The two range shapes accepted by [`Rng::gen_range`].
pub trait RangeBounds<T: SampleUniform> {
    /// Converts to a half-open `(low, high)` pair.
    fn clarify(self) -> (T, T);
}

impl<T: SampleUniform> RangeBounds<T> for std::ops::Range<T> {
    fn clarify(self) -> (T, T) {
        (self.start, self.end)
    }
}

impl<T: SampleUniform> RangeBounds<T> for std::ops::RangeInclusive<T> {
    fn clarify(self) -> (T, T) {
        let (start, end) = self.into_inner();
        (start, end.successor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
