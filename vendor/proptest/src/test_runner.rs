//! The deterministic generator driving strategies.

/// Random generator handed to strategies (splitmix64).
///
/// Seeded per test from the test's module path so failures reproduce;
/// set `PROPTEST_SEED=<u64>` to force a specific stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    /// Creates the per-test generator: `PROPTEST_SEED` if set, otherwise a
    /// hash of the test name.
    pub fn for_test(name: &str) -> Self {
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            return Self::from_seed(seed);
        }
        // FNV-1a over the test name.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(hash)
    }

    /// Returns the next random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below: zero bound");
        (self.next_u64() % bound as u64) as usize
    }

    /// Splits off an independent generator (for `prop_perturb`).
    pub fn fork(&mut self) -> Self {
        Self::from_seed(self.next_u64())
    }
}
