//! A workspace-local subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest its property tests use: [`Strategy`] with
//! `prop_map` / `prop_flat_map` / `prop_perturb` / `prop_shuffle`,
//! integer-range and tuple strategies, [`Just`], `collection::vec`, the
//! [`proptest!`] macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert!` family.
//!
//! Differences from real proptest, deliberate for an offline stub:
//!
//! * no shrinking — a failing case panics with the generated value's
//!   assertion message only;
//! * deterministic seeding per test name (override with `PROPTEST_SEED`),
//!   so CI failures reproduce locally;
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err(TestCaseError)`.

pub mod collection;
pub mod test_runner;

use test_runner::TestRng;

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the workspace's property tests
        // exercise whole pipelines, so the offline default is smaller.
        Self { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Produces one random value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produces a value, then runs a second strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Maps produced values through `f` with access to a generator.
    fn prop_perturb<O, F: Fn(Self::Value, TestRng) -> O>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
    {
        Perturb { inner: self, f }
    }

    /// Randomly shuffles produced collections.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        let value = self.inner.new_value(rng);
        (self.f)(value, rng.fork())
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.new_value(rng);
        // Fisher–Yates.
        for i in (1..v.len()).rev() {
            let j = rng.below(i + 1);
            v.swap(i, j);
        }
        v
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
                }
            }
        )*
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+),)*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (S0: 0),
    (S0: 0, S1: 1),
    (S0: 0, S1: 1, S2: 2),
    (S0: 0, S1: 1, S2: 2, S3: 3),
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4),
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5),
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6),
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7),
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7, S8: 8),
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7, S8: 8, S9: 9),
}

/// The most common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests over random values drawn from strategies.
///
/// ```ignore
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($config) $($rest)* }
    };
    (@with_config ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let case_rng_seed = rng.next_u64();
                    let mut case_rng = $crate::test_runner::TestRng::from_seed(case_rng_seed);
                    let ($($pat,)+) = $crate::Strategy::new_value(&strategy, &mut case_rng);
                    let _ = case; // case index available for debugging
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(42);
        let s = (1usize..=3, 0u64..100);
        for _ in 0..200 {
            let (a, b) = s.new_value(&mut rng);
            assert!((1..=3).contains(&a));
            assert!(b < 100);
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = crate::test_runner::TestRng::from_seed(7);
        let s = Just((0..10).collect::<Vec<usize>>()).prop_shuffle();
        let mut v = s.new_value(&mut rng);
        v.sort_unstable();
        assert_eq!(v, (0..10).collect::<Vec<usize>>());
    }

    #[test]
    fn flat_map_feeds_derived_strategy() {
        let mut rng = crate::test_runner::TestRng::from_seed(9);
        let s = (1usize..5).prop_flat_map(|n| prop::collection::vec(0usize..10, n));
        for _ in 0..50 {
            let v = s.new_value(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_runs_with_config(x in 0usize..5, y in 0u64..2) {
            prop_assert!(x < 5);
            prop_assert_ne!(y, 2);
        }
    }

    proptest! {
        #[test]
        fn macro_runs_with_default_config(v in prop::collection::vec(0usize..4, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
