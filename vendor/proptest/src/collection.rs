//! Collection strategies (`prop::collection::vec`).

use crate::test_runner::TestRng;
use crate::Strategy;

/// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty vec length range");
        Self {
            lo,
            hi_exclusive: hi + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Produces vectors whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below(self.size.hi_exclusive - self.size.lo);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
