//! A workspace-local subset of the `criterion` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice its benches use: [`Criterion::bench_function`], benchmark
//! groups with `sample_size`, [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of criterion's
//! statistical machinery, each benchmark runs a fixed number of samples
//! after a warm-up and prints min/mean wall-clock times.

use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting benched
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Measured per-sample durations, consumed by the caller.
    durations: Vec<Duration>,
}

impl Bencher {
    /// Calls `body` repeatedly and records one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up round, unmeasured.
        black_box(body());
        self.durations.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(body());
            self.durations.push(start.elapsed());
        }
    }
}

fn report(name: &str, durations: &[Duration]) {
    if durations.is_empty() {
        return;
    }
    let min = durations.iter().min().unwrap();
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    println!(
        "{name:<40} min {:>12.3?}  mean {:>12.3?}  ({} samples)",
        min,
        mean,
        durations.len()
    );
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.default_samples,
            durations: Vec::new(),
        };
        f(&mut bencher);
        report(name, &bencher.durations);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("# group {name}");
        BenchmarkGroup {
            group: name.to_string(),
            samples: self.default_samples,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    group: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.samples,
            durations: Vec::new(),
        };
        f(&mut bencher);
        report(&format!("{}/{name}", self.group), &bencher.durations);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0usize;
        Criterion::default().bench_function("noop", |b| b.iter(|| calls += 1));
        // Warm-up + default samples.
        assert_eq!(calls, 11);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        let mut calls = 0usize;
        group
            .sample_size(3)
            .bench_function("n", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 4);
    }
}
