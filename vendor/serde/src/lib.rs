//! A workspace-local subset of the `serde` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of serde it actually uses: the `ser` data-model traits (deep
//! enough to drive custom serializers such as the counting serializer in
//! `tests/serde_roundtrip.rs`), `Serialize` impls for the std types that
//! appear in workspace data structures, and a `Deserialize` marker trait.
//! The derive macros live in the sibling `serde_derive` crate and are
//! re-exported here under the `derive` feature, mirroring real serde.
//!
//! Deserialization is deliberately not implemented: the workspace's only
//! textual format is the hand-rolled JSON in `cogent-obs`, which round-trips
//! through its own parser.

pub mod ser;

pub mod de {
    //! Deserialization marker trait.
    //!
    //! No code in the workspace drives a `Deserializer`; the trait exists so
    //! `#[derive(serde::Deserialize)]` on public types keeps compiling and
    //! documents the intent to support deserialization once a real registry
    //! is reachable.

    /// Marker trait standing in for `serde::de::Deserialize`.
    pub trait Deserialize<'de>: Sized {}
}

pub use de::Deserialize;
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
