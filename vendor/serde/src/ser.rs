//! The serialization half of the serde data model.
//!
//! Trait signatures match real serde closely enough that existing custom
//! serializers (e.g. the node-counting serializer in the workspace test
//! suite) compile unchanged against this subset.

use std::fmt::Display;

/// Trait used by `Serialize` implementations to report errors.
pub trait Error: Sized + std::error::Error {
    /// Builds a custom error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serde data format that can serialize any supported data structure.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Type returned from [`Serializer::serialize_seq`].
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned from [`Serializer::serialize_tuple`].
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned from [`Serializer::serialize_tuple_struct`].
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned from [`Serializer::serialize_tuple_variant`].
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned from [`Serializer::serialize_map`].
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned from [`Serializer::serialize_struct`].
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned from [`Serializer::serialize_struct_variant`].
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i128`.
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u128`.
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a byte slice.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct such as `struct Unit;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct such as `struct Wrapper(T);`.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a variably sized sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a statically sized tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin a tuple struct such as `struct Rgb(u8, u8, u8);`.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Returned from [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one sequence element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_tuple`].
pub trait SerializeTuple {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one tuple element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_tuple_struct`].
pub trait SerializeTupleStruct {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one map key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialize one map value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for the std types used by workspace data structures.
// ---------------------------------------------------------------------------

macro_rules! impl_leaf {
    ($($ty:ty => $method:ident,)*) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

impl_leaf! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    i128 => serialize_i128,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    u128 => serialize_u128,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            SerializeSeq::serialize_element(&mut seq, item)?;
        }
        SerializeSeq::end(seq)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+),)*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut tup = serializer.serialize_tuple(impl_tuple!(@count $($name)+))?;
                    $(SerializeTuple::serialize_element(&mut tup, &self.$idx)?;)+
                    SerializeTuple::end(tup)
                }
            }
        )*
    };
    (@count $($name:ident)+) => { 0usize $(+ impl_tuple!(@one $name))+ };
    (@one $name:ident) => { 1usize };
}

impl_tuple! {
    (T0: 0),
    (T0: 0, T1: 1),
    (T0: 0, T1: 1, T2: 2),
    (T0: 0, T1: 1, T2: 2, T3: 3),
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            SerializeMap::serialize_key(&mut map, k)?;
            SerializeMap::serialize_value(&mut map, v)?;
        }
        SerializeMap::end(map)
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            SerializeMap::serialize_key(&mut map, k)?;
            SerializeMap::serialize_value(&mut map, v)?;
        }
        SerializeMap::end(map)
    }
}
