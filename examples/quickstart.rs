//! Quickstart: generate a CUDA kernel for the paper's running example
//! (Eq. 1), inspect the search statistics, verify the selected mapping
//! functionally, and print the emitted source.
//!
//! Run with: `cargo run --example quickstart`

use cogent::prelude::*;
use cogent::tensor::reference::{contract_reference, random_inputs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eq. 1 of the paper: C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e].
    let tc: Contraction = "abcd-aebf-dfce".parse()?;
    let sizes = SizeMap::uniform(&tc, 24);
    println!("contraction:          {tc}");
    println!("representative sizes: {sizes}");

    // Model-driven generation for the V100 (the paper's main platform).
    let generated = Cogent::new().generate(&tc, &sizes)?;

    println!("\n=== search ===");
    println!("raw configuration space: {}", generated.search.raw_space);
    println!("structured enumeration:  {}", generated.search.enumerated);
    println!("after pruning:           {}", generated.search.survivors);
    println!(
        "pruned fraction:         {:.1}%",
        generated.search.pruned_fraction() * 100.0
    );

    println!("\n=== selected configuration ===");
    println!("{}", generated.config);
    println!("{}", generated.plan);
    println!(
        "simulated: {:.1} GFLOPS ({:.3} ms), occupancy {:.0}%, {} DRAM transactions",
        generated.report.gflops,
        generated.report.time.total_s * 1e3,
        generated.report.occupancy.fraction * 100.0,
        generated.report.trace.total(),
    );

    // Functional verification: run the kernel plan on the virtual GPU and
    // compare against the naive reference contraction.
    let (a, b) = random_inputs::<f64>(&generated.contraction, &sizes, 7);
    let got = execute_plan(&generated.plan, &a, &b);
    let want = contract_reference(&generated.contraction, &sizes, &a, &b);
    assert!(got.approx_eq(&want, 1e-11));
    println!("\nfunctional check: kernel plan matches the reference contraction ✓");

    println!("\n=== generated CUDA (first 40 lines) ===");
    for line in generated.cuda_source.lines().take(40) {
        println!("{line}");
    }
    println!(
        "... ({} lines total)",
        generated.cuda_source.lines().count()
    );
    Ok(())
}
