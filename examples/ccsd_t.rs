//! CCSD(T) case study: the quantum-chemistry workload that motivates the
//! paper. Compares the three FP64 frameworks on the SD1/SD2 triples
//! contractions and verifies that all execution paths agree numerically.
//!
//! Run with: `cargo run --release --example ccsd_t`

use cogent::baselines::{measure_cogent, NwchemLikeGenerator, TtgtEngine};
use cogent::prelude::*;
use cogent::tensor::reference::{contract_reference, random_inputs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = GpuDevice::v100();
    println!(
        "CCSD(T) triples contractions on {} (FP64, simulated)\n",
        device
    );
    println!(
        "{:<7} {:<22} {:>10} {:>10} {:>10}",
        "kernel", "contraction", "COGENT", "NWChem", "TAL_SH"
    );

    let entries: Vec<_> = cogent::tccg::sd1_entries()
        .into_iter()
        .take(3)
        .chain(cogent::tccg::sd2_entries().into_iter().take(3))
        .collect();

    for entry in &entries {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let cogent = measure_cogent(&tc, &sizes, &device, Precision::F64);
        let nwchem = NwchemLikeGenerator::new().measure(&tc, &sizes, &device, Precision::F64);
        let talsh = TtgtEngine::new().measure(&tc, &sizes, &device, Precision::F64);
        println!(
            "{:<7} {:<22} {:>10.1} {:>10.1} {:>10.1}",
            entry.name, entry.spec, cogent.gflops, nwchem.gflops, talsh.gflops
        );
    }

    // Numerical cross-check at a reduced size: the COGENT kernel plan, the
    // NWChem-like plan and the TTGT pipeline must all reproduce the naive
    // reference.
    let entry = &entries[0];
    let tc = entry.contraction().normalized();
    let sizes = entry.sizes().scaled_down(4);
    let (a, b) = random_inputs::<f64>(&tc, &sizes, 13);
    let want = contract_reference(&tc, &sizes, &a, &b);

    let generated = Cogent::new().generate(&tc, &sizes)?;
    let via_cogent = execute_plan(&generated.plan, &a, &b);
    let via_nwchem = NwchemLikeGenerator::new().execute(&tc, &sizes, &a, &b);
    let via_ttgt = TtgtEngine::new().execute(&tc, &sizes, &a, &b);

    assert!(via_cogent.approx_eq(&want, 1e-11));
    assert!(via_nwchem.approx_eq(&want, 1e-11));
    assert!(via_ttgt.approx_eq(&want, 1e-11));
    println!(
        "\nnumerical cross-check on {} at reduced size {}: all frameworks agree ✓",
        entry.name, sizes
    );
    Ok(())
}
