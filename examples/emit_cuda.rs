//! Command-line kernel generator: give it any tensor contraction (TCCG or
//! explicit notation) and a representative extent, get a complete CUDA
//! translation unit on stdout — what the original COGENT tool does.
//!
//! Run with, e.g.:
//! ```text
//! cargo run --example emit_cuda -- "abcdef-gdab-efgc" 24
//! cargo run --example emit_cuda -- "C[i,j] = A[i,k] * B[k,j]" 1024 --device p100 --f32
//! ```

use cogent::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = args.first().map(String::as_str).unwrap_or("abcd-aebf-dfce");
    let extent: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let device = if args.iter().any(|a| a == "--device") && args.iter().any(|a| a == "p100") {
        GpuDevice::p100()
    } else {
        GpuDevice::v100()
    };
    let precision = if args.iter().any(|a| a == "--f32") {
        Precision::F32
    } else {
        Precision::F64
    };

    let tc: Contraction = spec.parse()?;
    let sizes = SizeMap::uniform(&tc, extent);
    let generated = Cogent::new()
        .device(device.clone())
        .precision(precision)
        .generate(&tc, &sizes)?;

    eprintln!("// {tc}");
    eprintln!("// target: {device}, {precision}");
    eprintln!("// configuration: {}", generated.config);
    eprintln!(
        "// predicted: {:.1} GFLOPS at the representative size {sizes}",
        generated.report.gflops
    );
    println!("{}", generated.cuda_source);
    Ok(())
}
