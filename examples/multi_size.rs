//! Multi-version kernel libraries (§IV-B of the paper): generate one
//! kernel per representative problem size, select the closest version at
//! runtime, and show why it matters — a configuration tuned for a big
//! problem underperforms on a small one and vice versa.
//!
//! Run with: `cargo run --release --example multi_size`

use cogent::generator::library::KernelLibrary;
use cogent::prelude::*;
use cogent::sim::simulate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tc: Contraction = "abcd-aebf-dfce".parse()?;
    let device = GpuDevice::v100();
    let generator = Cogent::new();

    // Two representatives: a small CCSD-like problem and a large one.
    let small_rep = SizeMap::uniform(&tc, 12);
    let large_rep = SizeMap::uniform(&tc, 64);
    let library = KernelLibrary::build(&generator, &tc, &[small_rep.clone(), large_rep.clone()])?;
    println!("built a {}-version library for {tc}", library.len());
    for v in library.iter() {
        println!(
            "  version for {:<32} -> {}",
            v.representative.to_string(),
            v.kernel.config
        );
    }

    // Runtime sizes between and beyond the representatives.
    println!(
        "\n{:<10} {:>18} {:>14} {:>14}",
        "actual N", "selected version", "selected", "other"
    );
    for n in [10usize, 16, 48, 96] {
        let actual = SizeMap::uniform(&tc, n);
        let chosen = library.select(&actual);
        // Compare the selected configuration against the other version,
        // both lowered at the actual size.
        let mut gflops = Vec::new();
        for v in library.iter() {
            let plan = v.kernel.config.lower(&v.kernel.contraction, &actual)?;
            let report = simulate(&plan, &device, Precision::F64);
            gflops.push((v.representative.extent_of("a"), report.gflops));
        }
        let sel_n = chosen.representative.extent_of("a");
        let sel = gflops.iter().find(|(r, _)| *r == sel_n).expect("present").1;
        let other = gflops.iter().find(|(r, _)| *r != sel_n).expect("present").1;
        println!(
            "{:<10} {:>15}^6 {:>12.1} {:>12.1}{}",
            n,
            sel_n,
            sel,
            other,
            if sel >= other { "  ✓" } else { "  (!)" },
        );
    }
    println!("\n(the generated kernels are size-agnostic; only performance depends on the match)");
    Ok(())
}
