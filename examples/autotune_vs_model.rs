//! Model-driven selection vs genetic autotuning: the paper's central
//! contrast (§IV–V). COGENT picks its configuration from an analytical
//! cost model in milliseconds; a Tensor-Comprehensions-style genetic
//! autotuner needs hundreds-to-thousands of kernel evaluations to
//! approach it.
//!
//! Run with: `cargo run --release --example autotune_vs_model`

use std::time::Instant;

use cogent::baselines::{measure_cogent, TcAutotuner};
use cogent::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = GpuDevice::v100();
    // The paper's Fig. 8 benchmark: SD2_1.
    let entry = cogent::tccg::sd2_entries()
        .into_iter()
        .next()
        .expect("sd2_1");
    let tc = entry.contraction();
    let sizes = entry.sizes();
    println!(
        "benchmark: {} ({}), FP32, {}\n",
        entry.name, entry.spec, device
    );

    let start = Instant::now();
    let cogent = measure_cogent(&tc, &sizes, &device, Precision::F32);
    let model_s = start.elapsed().as_secs_f64();
    println!(
        "COGENT (model-driven): {:7.1} GFLOPS, selected in {:.3} s, 0 kernel executions",
        cogent.gflops, model_s
    );

    let tuner = TcAutotuner {
        population: 40,
        generations: 8,
        ..TcAutotuner::new()
    };
    let start = Instant::now();
    let result = tuner.tune(&tc, &sizes, &device, Precision::F32);
    let tune_s = start.elapsed().as_secs_f64();
    println!(
        "TC-like GA autotuner:  {:7.1} GFLOPS after {} kernel evaluations in {:.1} s",
        result.tuned.gflops, result.evaluations, tune_s
    );
    println!(
        "TC untuned default:    {:7.3} GFLOPS\n",
        result.untuned.gflops
    );

    println!("best-so-far convergence (cf. Fig. 8):");
    println!(
        "{:>12} {:>12} {:>10}",
        "evaluations", "GFLOPS", "% of COGENT"
    );
    let step = (result.trace.len() / 12).max(1);
    for p in result.trace.iter().step_by(step) {
        println!(
            "{:>12} {:>12.1} {:>9.1}%",
            p.evaluations,
            p.gflops,
            100.0 * p.gflops / cogent.gflops
        );
    }
    Ok(())
}
