//! Index classification and data-reuse analysis.
//!
//! The COGENT strategy rests on one domain property (§II of the paper): in a
//! tensor contraction every loop index occurs in exactly two of the three
//! tensors, so each index is a **reuse dimension for exactly one tensor** —
//! the tensor that it does *not* index. Iterating that loop re-accesses the
//! same elements of that tensor. This partitions the loop indices of an
//! arbitrary-dimensional contraction into three groups, which is what makes
//! the pruned mapping space tractable.

use crate::expr::Contraction;
use crate::index::IndexName;
use crate::size::SizeMap;

/// Which of the three tensors a statement refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TensorRole {
    /// The output tensor `C`.
    C,
    /// The left input tensor `A`.
    A,
    /// The right input tensor `B`.
    B,
}

impl TensorRole {
    /// All three roles, in `C`, `A`, `B` order.
    pub const ALL: [TensorRole; 3] = [TensorRole::C, TensorRole::A, TensorRole::B];
}

/// Classification of a loop index by the set of tensors it occurs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum IndexClass {
    /// External index shared by `A` and `C` — a reuse dimension for `B`.
    ExternalA,
    /// External index shared by `B` and `C` — a reuse dimension for `A`.
    ExternalB,
    /// Internal (contracted) index shared by `A` and `B` — a reuse dimension
    /// for `C`.
    Internal,
    /// Batch (Hadamard) index present in all three tensors — no reuse
    /// dimension; only valid for contractions built with
    /// [`Contraction::with_batch`](crate::Contraction::with_batch).
    Batch,
}

impl IndexClass {
    /// The tensor for which an index of this class is a reuse dimension
    /// (i.e. the tensor not indexed by it), or `None` for batch indices,
    /// which index all three tensors.
    pub fn reuse_tensor(self) -> Option<TensorRole> {
        match self {
            IndexClass::ExternalA => Some(TensorRole::B),
            IndexClass::ExternalB => Some(TensorRole::A),
            IndexClass::Internal => Some(TensorRole::C),
            IndexClass::Batch => None,
        }
    }

    /// Whether the index appears in the output tensor but is not a batch
    /// index (i.e. it is an external of exactly one input).
    pub fn is_external(self) -> bool {
        matches!(self, IndexClass::ExternalA | IndexClass::ExternalB)
    }
}

/// Precomputed classification of every index of a contraction, plus derived
/// arithmetic-intensity statistics.
///
/// # Examples
///
/// ```
/// use cogent_ir::{Contraction, ContractionAnalysis, IndexClass, SizeMap, TensorRole};
///
/// let tc: Contraction = "abcd-aebf-dfce".parse()?;
/// let analysis = ContractionAnalysis::new(&tc);
/// assert_eq!(analysis.classify("a"), Some(IndexClass::ExternalA));
/// assert_eq!(analysis.classify("c"), Some(IndexClass::ExternalB));
/// assert_eq!(analysis.classify("e"), Some(IndexClass::Internal));
/// assert_eq!(
///     analysis.classify("e").unwrap().reuse_tensor(),
///     Some(TensorRole::C),
/// );
///
/// let sizes = SizeMap::uniform(&tc, 10);
/// assert_eq!(analysis.flops(&sizes), 2_000_000); // 2 * 10^6
/// # Ok::<(), cogent_ir::ParseContractionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ContractionAnalysis {
    contraction: Contraction,
    externals_a: Vec<IndexName>,
    externals_b: Vec<IndexName>,
}

impl ContractionAnalysis {
    /// Analyzes a contraction.
    pub fn new(contraction: &Contraction) -> Self {
        let mut externals_a = Vec::new();
        let mut externals_b = Vec::new();
        for idx in contraction.external_indices() {
            if contraction.a().contains(idx) {
                externals_a.push(idx.clone());
            } else {
                externals_b.push(idx.clone());
            }
        }
        Self {
            contraction: contraction.clone(),
            externals_a,
            externals_b,
        }
    }

    /// The analyzed contraction.
    pub fn contraction(&self) -> &Contraction {
        &self.contraction
    }

    /// Classifies `index`, or `None` when the contraction does not use it.
    pub fn classify(&self, index: impl AsRef<str>) -> Option<IndexClass> {
        let index = index.as_ref();
        if self.externals_a.iter().any(|i| i.as_str() == index) {
            Some(IndexClass::ExternalA)
        } else if self.externals_b.iter().any(|i| i.as_str() == index) {
            Some(IndexClass::ExternalB)
        } else if self.contraction.is_internal(index) {
            Some(IndexClass::Internal)
        } else if self.contraction.is_batch(index) {
            Some(IndexClass::Batch)
        } else {
            None
        }
    }

    /// Batch indices, in output order.
    pub fn batch(&self) -> &[IndexName] {
        self.contraction.batch_indices()
    }

    /// External indices shared by `A` and `C`, in output order.
    pub fn externals_a(&self) -> &[IndexName] {
        &self.externals_a
    }

    /// External indices shared by `B` and `C`, in output order.
    pub fn externals_b(&self) -> &[IndexName] {
        &self.externals_b
    }

    /// Internal indices, in `A` order.
    pub fn internals(&self) -> &[IndexName] {
        self.contraction.internal_indices()
    }

    /// Whether the output tensor's fastest varying index lives in `A`.
    ///
    /// Algorithm 2 of the paper assumes it does; use
    /// [`Contraction::normalized`] to establish the assumption.
    pub fn output_fvi_in_a(&self) -> bool {
        self.contraction.a().contains(self.contraction.c().fvi())
    }

    /// Total floating point operations (one multiply + one add per innermost
    /// iteration): `2 * prod_i N_i` over all loop indices.
    ///
    /// # Panics
    ///
    /// Panics when `sizes` is missing an extent.
    pub fn flops(&self, sizes: &SizeMap) -> u128 {
        2 * self
            .contraction
            .all_indices()
            .map(|i| sizes.extent_of(i) as u128)
            .product::<u128>()
    }

    /// Total tensor footprint in elements: `|A| + |B| + |C|`.
    ///
    /// # Panics
    ///
    /// Panics when `sizes` is missing an extent.
    pub fn footprint_elements(&self, sizes: &SizeMap) -> u128 {
        [
            self.contraction.c(),
            self.contraction.a(),
            self.contraction.b(),
        ]
        .into_iter()
        .map(|t| {
            t.indices()
                .iter()
                .map(|i| sizes.extent_of(i) as u128)
                .product::<u128>()
        })
        .sum()
    }

    /// Arithmetic intensity in FLOPs per element touched (assuming each
    /// tensor is read/written exactly once): `flops / footprint`.
    pub fn arithmetic_intensity(&self, sizes: &SizeMap) -> f64 {
        self.flops(sizes) as f64 / self.footprint_elements(sizes) as f64
    }

    /// Product of the extents of the internal indices — the number of terms
    /// summed into each output element.
    pub fn contraction_length(&self, sizes: &SizeMap) -> u128 {
        self.internals()
            .iter()
            .map(|i| sizes.extent_of(i) as u128)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq1() -> Contraction {
        "abcd-aebf-dfce".parse().unwrap()
    }

    #[test]
    fn classification_partitions_indices() {
        let tc = eq1();
        let an = ContractionAnalysis::new(&tc);
        let a: Vec<_> = an.externals_a().iter().map(IndexName::as_str).collect();
        let b: Vec<_> = an.externals_b().iter().map(IndexName::as_str).collect();
        let i: Vec<_> = an.internals().iter().map(IndexName::as_str).collect();
        assert_eq!(a, ["a", "b"]);
        assert_eq!(b, ["c", "d"]);
        assert_eq!(i, ["e", "f"]);
        assert_eq!(a.len() + b.len() + i.len(), tc.num_indices());
    }

    #[test]
    fn reuse_tensor_property() {
        // Each index is a reuse dimension for exactly the tensor that does
        // not contain it.
        let tc = eq1();
        let an = ContractionAnalysis::new(&tc);
        for idx in tc.all_indices() {
            let class = an.classify(idx).unwrap();
            let reused = match class.reuse_tensor().expect("no batch indices here") {
                TensorRole::C => tc.c(),
                TensorRole::A => tc.a(),
                TensorRole::B => tc.b(),
            };
            assert!(!reused.contains(idx), "reuse tensor must not contain {idx}");
        }
    }

    #[test]
    fn classify_unknown_index() {
        let an = ContractionAnalysis::new(&eq1());
        assert_eq!(an.classify("z"), None);
    }

    #[test]
    fn flops_matmul() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let an = ContractionAnalysis::new(&tc);
        let sizes = SizeMap::from_pairs([("i", 3), ("j", 4), ("k", 5)]);
        assert_eq!(an.flops(&sizes), 2 * 3 * 4 * 5);
        assert_eq!(an.footprint_elements(&sizes), 12 + 15 + 20);
        assert_eq!(an.contraction_length(&sizes), 5);
    }

    #[test]
    fn arithmetic_intensity_grows_with_size() {
        let tc = eq1();
        let an = ContractionAnalysis::new(&tc);
        let small = SizeMap::uniform(&tc, 8);
        let large = SizeMap::uniform(&tc, 32);
        assert!(an.arithmetic_intensity(&large) > an.arithmetic_intensity(&small));
    }

    #[test]
    fn output_fvi_in_a() {
        let an = ContractionAnalysis::new(&eq1());
        assert!(an.output_fvi_in_a());
        let swapped = eq1().swapped();
        let an2 = ContractionAnalysis::new(&swapped);
        assert!(!an2.output_fvi_in_a());
        let norm = ContractionAnalysis::new(&swapped.normalized());
        assert!(norm.output_fvi_in_a());
    }

    #[test]
    fn index_class_external() {
        assert!(IndexClass::ExternalA.is_external());
        assert!(IndexClass::ExternalB.is_external());
        assert!(!IndexClass::Internal.is_external());
    }

    #[test]
    fn roles_all() {
        assert_eq!(TensorRole::ALL.len(), 3);
    }

    #[test]
    fn batch_classification() {
        use crate::TensorRef;
        let tc = Contraction::with_batch(
            TensorRef::new("C", ["i", "j", "n"]),
            TensorRef::new("A", ["i", "k", "n"]),
            TensorRef::new("B", ["k", "j", "n"]),
        )
        .unwrap();
        let an = ContractionAnalysis::new(&tc);
        assert_eq!(an.classify("n"), Some(IndexClass::Batch));
        assert_eq!(an.classify("n").unwrap().reuse_tensor(), None);
        assert!(!IndexClass::Batch.is_external());
        assert_eq!(an.batch(), tc.batch_indices());
        // flops count the batch dimension once.
        let sizes = SizeMap::from_pairs([("i", 2), ("j", 3), ("k", 4), ("n", 5)]);
        assert_eq!(an.flops(&sizes), 2 * 2 * 3 * 4 * 5);
    }
}
