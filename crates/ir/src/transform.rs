//! Contraction transformations: index merging and splitting.
//!
//! §IV of the paper notes that the configuration space could further grow
//! by "merging dimensions (helps to achieve coalescing if the extent of
//! each dimension is very small)" and "splitting each dimension into
//! multiple dimensions (helps ensure that there are enough thread
//! blocks)", but leaves them out of the search. This module provides both
//! as *free* (zero-copy) transformations on the IR:
//!
//! * [`merge_adjacent`] fuses two indices that are storage-adjacent in
//!   every tensor containing them into one virtual index — the underlying
//!   column-major buffers can be reinterpreted without any data movement;
//! * [`split_index`] is the inverse: it replaces one index by a
//!   (fast, slow) pair whose extents multiply to the original.
//!
//! Both return the transformed contraction plus updated extents; callers
//! reinterpret their `DenseTensor` buffers with the new shapes.

use crate::expr::{Contraction, TensorRef};
use crate::index::IndexName;
use crate::size::SizeMap;

/// Error applying a transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransformError {
    /// The two indices are not adjacent (fast immediately before slow) in
    /// every tensor that contains them, or occur in different tensor sets.
    NotMergeable {
        /// The would-be fast index.
        fast: IndexName,
        /// The would-be slow index.
        slow: IndexName,
    },
    /// The named index is not part of the contraction.
    UnknownIndex {
        /// The missing index.
        index: IndexName,
    },
    /// A split factor that is not a proper divisor of the extent.
    BadSplitFactor {
        /// The index being split.
        index: IndexName,
        /// The offending factor.
        factor: usize,
        /// The index's extent.
        extent: usize,
    },
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::NotMergeable { fast, slow } => {
                write!(
                    f,
                    "indices {fast} and {slow} are not adjacent in every tensor"
                )
            }
            TransformError::UnknownIndex { index } => {
                write!(f, "index {index} is not part of the contraction")
            }
            TransformError::BadSplitFactor {
                index,
                factor,
                extent,
            } => write!(
                f,
                "factor {factor} does not divide the extent {extent} of index {index}"
            ),
        }
    }
}

impl std::error::Error for TransformError {}

fn tensors_of(tc: &Contraction) -> [&TensorRef; 3] {
    [tc.c(), tc.a(), tc.b()]
}

/// Whether `fast` appears immediately before `slow` in every tensor that
/// contains either (and both always co-occur).
pub fn mergeable(tc: &Contraction, fast: &IndexName, slow: &IndexName) -> bool {
    let mut appears_somewhere = false;
    for t in tensors_of(tc) {
        match (t.position(fast), t.position(slow)) {
            (None, None) => {}
            (Some(pf), Some(ps)) if ps == pf + 1 => appears_somewhere = true,
            _ => return false,
        }
    }
    appears_somewhere
}

fn rebuild_tensor(
    t: &TensorRef,
    fast: &IndexName,
    slow: &IndexName,
    merged: &IndexName,
) -> TensorRef {
    let mut names: Vec<IndexName> = Vec::with_capacity(t.rank());
    let mut skip_next = false;
    for (i, idx) in t.indices().iter().enumerate() {
        if skip_next {
            skip_next = false;
            continue;
        }
        if idx == fast && t.indices().get(i + 1) == Some(slow) {
            names.push(merged.clone());
            skip_next = true;
        } else {
            names.push(idx.clone());
        }
    }
    TensorRef::new(t.name(), names)
}

/// Merges `fast` and `slow` (storage-adjacent everywhere, `fast` first)
/// into one virtual index named `<fast>_<slow>` whose extent is the
/// product. Because both indices are adjacent in every tensor's
/// column-major layout, the tensors' buffers are reinterpretable in place.
///
/// Returns the transformed contraction, the updated size map, and the name
/// of the merged index.
///
/// # Errors
///
/// [`TransformError::NotMergeable`] when adjacency does not hold,
/// [`TransformError::UnknownIndex`] when an index is not used.
///
/// # Panics
///
/// Panics when `sizes` does not cover the indices being merged.
///
/// # Examples
///
/// ```
/// use cogent_ir::{transform::merge_adjacent, Contraction, SizeMap};
///
/// // k and l are adjacent in both inputs: fuse them.
/// let tc: Contraction = "ab-akl-klb".parse()?;
/// let sizes = SizeMap::from_pairs([("a", 4), ("b", 5), ("k", 2), ("l", 3)]);
/// let (merged, new_sizes, name) =
///     merge_adjacent(&tc, &sizes, &"k".into(), &"l".into())?;
/// assert_eq!(merged.internal_indices().len(), 1);
/// assert_eq!(new_sizes.extent_of(&name), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn merge_adjacent(
    tc: &Contraction,
    sizes: &SizeMap,
    fast: &IndexName,
    slow: &IndexName,
) -> Result<(Contraction, SizeMap, IndexName), TransformError> {
    for idx in [fast, slow] {
        if !tc.all_indices().any(|i| i == idx) {
            return Err(TransformError::UnknownIndex { index: idx.clone() });
        }
    }
    if !mergeable(tc, fast, slow) {
        return Err(TransformError::NotMergeable {
            fast: fast.clone(),
            slow: slow.clone(),
        });
    }
    // Pick a fresh name.
    let mut merged = IndexName::new(format!("{fast}_{slow}"));
    while tc.all_indices().any(|i| *i == merged) {
        merged = IndexName::new(format!("{merged}_m"));
    }

    let c = rebuild_tensor(tc.c(), fast, slow, &merged);
    let a = rebuild_tensor(tc.a(), fast, slow, &merged);
    let b = rebuild_tensor(tc.b(), fast, slow, &merged);
    let out = Contraction::with_batch(c, a, b).expect("merge preserves validity");

    let mut new_sizes = SizeMap::new();
    for (idx, extent) in sizes.iter() {
        if idx != fast && idx != slow {
            new_sizes.set(idx.clone(), extent);
        }
    }
    new_sizes.set(
        merged.clone(),
        sizes.extent_of(fast) * sizes.extent_of(slow),
    );
    Ok((out, new_sizes, merged))
}

/// Repeatedly merges every mergeable adjacent pair until none remains
/// (useful to coalesce strings of small dimensions before generation).
pub fn merge_all(tc: &Contraction, sizes: &SizeMap) -> (Contraction, SizeMap) {
    let mut tc = tc.clone();
    let mut sizes = sizes.clone();
    'outer: loop {
        let names: Vec<IndexName> = tc.all_indices().cloned().collect();
        for fast in &names {
            for slow in &names {
                if fast != slow && mergeable(&tc, fast, slow) {
                    let (t, s, _) =
                        merge_adjacent(&tc, &sizes, fast, slow).expect("checked mergeable");
                    tc = t;
                    sizes = s;
                    continue 'outer;
                }
            }
        }
        return (tc, sizes);
    }
}

/// Splits `index` (extent `N`, divisible by `factor`) into a fast part of
/// extent `factor` and a slow part of extent `N / factor`, adjacent (fast
/// first) in every tensor containing `index` — the inverse of
/// [`merge_adjacent`], equally free of data movement.
///
/// Returns the transformed contraction, updated sizes, and the
/// `(fast, slow)` names.
///
/// # Errors
///
/// [`TransformError::UnknownIndex`], or
/// [`TransformError::BadSplitFactor`] when `factor` does not properly
/// divide the extent.
///
/// # Panics
///
/// Panics when `sizes` does not cover `index`.
///
/// # Examples
///
/// ```
/// use cogent_ir::{transform::split_index, Contraction, SizeMap};
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let sizes = SizeMap::from_pairs([("i", 12), ("j", 5), ("k", 7)]);
/// let (split, new_sizes, (lo, hi)) = split_index(&tc, &sizes, &"i".into(), 4)?;
/// assert_eq!(new_sizes.extent_of(&lo), 4);
/// assert_eq!(new_sizes.extent_of(&hi), 3);
/// assert_eq!(split.c().rank(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn split_index(
    tc: &Contraction,
    sizes: &SizeMap,
    index: &IndexName,
    factor: usize,
) -> Result<(Contraction, SizeMap, (IndexName, IndexName)), TransformError> {
    if !tc.all_indices().any(|i| i == index) {
        return Err(TransformError::UnknownIndex {
            index: index.clone(),
        });
    }
    let extent = sizes.extent_of(index);
    if factor == 0 || factor == 1 || factor >= extent || !extent.is_multiple_of(factor) {
        return Err(TransformError::BadSplitFactor {
            index: index.clone(),
            factor,
            extent,
        });
    }
    let mut lo = IndexName::new(format!("{index}0"));
    let mut hi = IndexName::new(format!("{index}1"));
    while tc.all_indices().any(|i| *i == lo || *i == hi) {
        lo = IndexName::new(format!("{lo}s"));
        hi = IndexName::new(format!("{hi}s"));
    }

    let rebuild = |t: &TensorRef| -> TensorRef {
        let mut names: Vec<IndexName> = Vec::with_capacity(t.rank() + 1);
        for idx in t.indices() {
            if idx == index {
                names.push(lo.clone());
                names.push(hi.clone());
            } else {
                names.push(idx.clone());
            }
        }
        TensorRef::new(t.name(), names)
    };
    let out = Contraction::with_batch(rebuild(tc.c()), rebuild(tc.a()), rebuild(tc.b()))
        .expect("split preserves validity");

    let mut new_sizes = SizeMap::new();
    for (idx, e) in sizes.iter() {
        if idx != index {
            new_sizes.set(idx.clone(), e);
        }
    }
    new_sizes.set(lo.clone(), factor);
    new_sizes.set(hi.clone(), extent / factor);
    Ok((out, new_sizes, (lo, hi)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mergeable_detection() {
        let tc: Contraction = "ab-akl-klb".parse().unwrap();
        let k = IndexName::new("k");
        let l = IndexName::new("l");
        assert!(mergeable(&tc, &k, &l));
        assert!(!mergeable(&tc, &l, &k)); // wrong order
        let a = IndexName::new("a");
        assert!(!mergeable(&tc, &a, &k)); // different tensor sets
    }

    #[test]
    fn merge_internal_pair() {
        let tc: Contraction = "ab-akl-klb".parse().unwrap();
        let sizes = SizeMap::from_pairs([("a", 4), ("b", 5), ("k", 2), ("l", 3)]);
        let (m, s, name) = merge_adjacent(&tc, &sizes, &"k".into(), &"l".into()).unwrap();
        assert_eq!(m.to_string(), format!("C[a,b] = A[a,{name}] * B[{name},b]"));
        assert_eq!(s.extent_of(&name), 6);
        assert_eq!(m.num_indices(), 3);
    }

    #[test]
    fn merge_external_pair() {
        // a,b adjacent in C and A.
        let tc: Contraction = "abc-abk-kc".parse().unwrap();
        let sizes = SizeMap::from_pairs([("a", 2), ("b", 3), ("c", 4), ("k", 5)]);
        let (m, s, name) = merge_adjacent(&tc, &sizes, &"a".into(), &"b".into()).unwrap();
        assert_eq!(s.extent_of(&name), 6);
        assert_eq!(m.external_indices().len(), 2);
    }

    #[test]
    fn merge_rejects_non_adjacent() {
        // Eq. 1: e and f are both internal but not adjacent in A or B.
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 4);
        let err = merge_adjacent(&tc, &sizes, &"e".into(), &"f".into()).unwrap_err();
        assert!(matches!(err, TransformError::NotMergeable { .. }));
    }

    #[test]
    fn merge_rejects_unknown() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 4);
        let err = merge_adjacent(&tc, &sizes, &"z".into(), &"k".into()).unwrap_err();
        assert!(matches!(err, TransformError::UnknownIndex { .. }));
    }

    #[test]
    fn merge_all_reaches_fixpoint() {
        // Fully mergeable: matmul of 4D tensors that are really matrices.
        let tc: Contraction = "abcd-abkl-klcd".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 3);
        let (m, s) = merge_all(&tc, &sizes);
        // (a,b), (c,d), (k,l) each fuse into one index: a plain matmul.
        assert_eq!(m.num_indices(), 3);
        assert_eq!(m.c().rank(), 2);
        for idx in m.all_indices() {
            assert_eq!(s.extent_of(idx), 9);
        }
    }

    #[test]
    fn split_roundtrips_with_merge() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::from_pairs([("i", 12), ("j", 5), ("k", 7)]);
        let (split, s2, (lo, hi)) = split_index(&tc, &sizes, &"i".into(), 4).unwrap();
        assert_eq!(s2.extent_of(&lo), 4);
        assert_eq!(s2.extent_of(&hi), 3);
        // Splitting created an adjacent mergeable pair; merging restores
        // the shape.
        let (merged, s3, name) = merge_adjacent(&split, &s2, &lo, &hi).unwrap();
        assert_eq!(s3.extent_of(&name), 12);
        assert_eq!(merged.num_indices(), 3);
    }

    #[test]
    fn split_rejects_bad_factors() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::from_pairs([("i", 12), ("j", 5), ("k", 7)]);
        for f in [0usize, 1, 5, 12, 24] {
            assert!(split_index(&tc, &sizes, &"i".into(), f).is_err(), "{f}");
        }
    }

    #[test]
    fn split_preserves_batch_indices() {
        use crate::TensorRef;
        let tc = Contraction::with_batch(
            TensorRef::new("C", ["i", "j", "n"]),
            TensorRef::new("A", ["i", "k", "n"]),
            TensorRef::new("B", ["k", "j", "n"]),
        )
        .unwrap();
        let sizes = SizeMap::from_pairs([("i", 8), ("j", 4), ("k", 4), ("n", 6)]);
        let (split, s2, (lo, hi)) = split_index(&tc, &sizes, &"n".into(), 2).unwrap();
        assert_eq!(split.batch_indices().len(), 2);
        assert_eq!(s2.extent_of(&lo) * s2.extent_of(&hi), 6);
    }

    #[test]
    fn transformed_contraction_computes_the_same_values() {
        // The merged contraction over reinterpreted buffers equals the
        // original: verified at the flop-count level here (the numeric
        // check lives in the tensor crate's tests, which have DenseTensor).
        let tc: Contraction = "ab-akl-klb".parse().unwrap();
        let sizes = SizeMap::from_pairs([("a", 4), ("b", 5), ("k", 2), ("l", 3)]);
        let (m, s, _) = merge_adjacent(&tc, &sizes, &"k".into(), &"l".into()).unwrap();
        let before = crate::ContractionAnalysis::new(&tc).flops(&sizes);
        let after = crate::ContractionAnalysis::new(&m).flops(&s);
        assert_eq!(before, after);
    }

    #[test]
    fn error_display() {
        let e = TransformError::BadSplitFactor {
            index: IndexName::new("i"),
            factor: 5,
            extent: 12,
        };
        assert!(e.to_string().contains("does not divide"));
    }
}
