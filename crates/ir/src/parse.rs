//! Parsing contractions from strings.
//!
//! Two notations are supported:
//!
//! * **TCCG form** — three dash-separated groups of single-letter indices,
//!   output first: `"abcd-aebf-dfce"` means
//!   `C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]`.
//! * **Explicit form** — `"C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]"`, allowing
//!   multi-character index names such as `h3` or `p6`.
//!
//! [`Contraction`] implements [`std::str::FromStr`] accepting either form.

use std::str::FromStr;

use crate::error::ParseContractionError;
use crate::expr::{Contraction, TensorRef};
use crate::index::IndexName;

/// Parses the TCCG single-letter notation, e.g. `"abcd-aebf-dfce"`.
///
/// The three groups name the output, left input and right input tensors
/// `C`, `A` and `B` respectively, fastest-varying index first.
///
/// # Errors
///
/// Returns an error when the string does not consist of exactly three
/// non-empty dash-separated alphabetic groups, or when the resulting
/// contraction is invalid (see
/// [`ValidateContractionError`](crate::ValidateContractionError)).
///
/// # Examples
///
/// ```
/// let tc = cogent_ir::parse::parse_tccg("abcd-aebf-dfce")?;
/// assert_eq!(tc.c().rank(), 4);
/// # Ok::<(), cogent_ir::ParseContractionError>(())
/// ```
pub fn parse_tccg(s: &str) -> Result<Contraction, ParseContractionError> {
    let parts: Vec<&str> = s.trim().split('-').collect();
    if parts.len() != 3 {
        return Err(ParseContractionError::syntax(format!(
            "expected 3 dash-separated groups, found {}",
            parts.len()
        )));
    }
    let group = |name: &str, text: &str| -> Result<TensorRef, ParseContractionError> {
        if text.is_empty() {
            return Err(ParseContractionError::syntax(format!(
                "tensor {name} has an empty index group"
            )));
        }
        let indices: Vec<IndexName> = text
            .chars()
            .map(|c| {
                IndexName::try_new(&c.to_string()).ok_or_else(|| {
                    ParseContractionError::syntax(format!("invalid index character {c:?}"))
                })
            })
            .collect::<Result<_, _>>()?;
        TensorRef::try_new(name, indices).map_err(Into::into)
    };
    let c = group("C", parts[0])?;
    let a = group("A", parts[1])?;
    let b = group("B", parts[2])?;
    Contraction::new(c, a, b).map_err(Into::into)
}

/// Parses either notation (like [`Contraction::from_str`]) but accepts
/// batch (Hadamard) indices, building through
/// [`Contraction::with_batch`].
///
/// # Errors
///
/// Returns an error on malformed syntax or an otherwise invalid
/// contraction.
///
/// # Examples
///
/// ```
/// let tc = cogent_ir::parse::parse_allowing_batch("C[i,j,n] = A[i,k,n] * B[k,j,n]")?;
/// assert_eq!(tc.batch_indices().len(), 1);
/// let tc2 = cogent_ir::parse::parse_allowing_batch("ijn-ikn-kjn")?;
/// assert_eq!(tc2.batch_indices().len(), 1);
/// # Ok::<(), cogent_ir::ParseContractionError>(())
/// ```
pub fn parse_allowing_batch(s: &str) -> Result<Contraction, ParseContractionError> {
    let strict: Result<Contraction, ParseContractionError> = s.parse();
    match strict {
        Err(ParseContractionError::Invalid(crate::ValidateContractionError::BatchIndex {
            ..
        })) => {
            // Re-parse the tensor refs and rebuild permissively.
            let (c, a, b) = split_tensors(s)?;
            Contraction::with_batch(c, a, b).map_err(Into::into)
        }
        other => other,
    }
}

/// Parses the three tensor references of either notation without building
/// the contraction.
fn split_tensors(s: &str) -> Result<(TensorRef, TensorRef, TensorRef), ParseContractionError> {
    if let Some(eq) = s.find('=') {
        let accumulate = eq > 0 && s.as_bytes()[eq - 1] == b'+';
        let lhs = &s[..eq - usize::from(accumulate)];
        let rhs = &s[eq + 1..];
        let (a_text, b_text) = rhs
            .split_once('*')
            .ok_or_else(|| ParseContractionError::syntax("missing '*' on the right-hand side"))?;
        Ok((
            parse_tensor(lhs)?,
            parse_tensor(a_text)?,
            parse_tensor(b_text)?,
        ))
    } else {
        let parts: Vec<&str> = s.trim().split('-').collect();
        if parts.len() != 3 {
            return Err(ParseContractionError::syntax(format!(
                "expected 3 dash-separated groups, found {}",
                parts.len()
            )));
        }
        let group = |name: &str, text: &str| -> Result<TensorRef, ParseContractionError> {
            let indices: Vec<IndexName> = text
                .chars()
                .map(|c| {
                    IndexName::try_new(&c.to_string()).ok_or_else(|| {
                        ParseContractionError::syntax(format!("invalid index character {c:?}"))
                    })
                })
                .collect::<Result<_, _>>()?;
            TensorRef::try_new(name, indices).map_err(Into::into)
        };
        Ok((
            group("C", parts[0])?,
            group("A", parts[1])?,
            group("B", parts[2])?,
        ))
    }
}

/// Parses the explicit bracket notation, e.g.
/// `"C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]"`.
///
/// Tensor names are arbitrary identifiers; index names may be
/// multi-character (`h3`, `p6`). Whitespace is insignificant. The
/// accumulate form (`C[...] += ...`) parses to the same contraction — use
/// [`parse_statement`] to also recover the assignment kind.
///
/// # Errors
///
/// Returns an error on malformed syntax or an invalid contraction.
///
/// # Examples
///
/// ```
/// let tc = cogent_ir::parse::parse_explicit(
///     "T3[h3,h2,h1,p6,p5,p4] = T2[h7,p4,p5,h1] * V2[h3,h2,p6,h7]",
/// )?;
/// assert_eq!(tc.internal_indices().len(), 1);
/// # Ok::<(), cogent_ir::ParseContractionError>(())
/// ```
pub fn parse_explicit(s: &str) -> Result<Contraction, ParseContractionError> {
    parse_statement(s).map(|(tc, _)| tc)
}

/// Like [`parse_explicit`], additionally reporting whether the statement
/// used the accumulate form: `true` for `C[...] += A[...] * B[...]`
/// (NWChem's triples kernels are written this way), `false` for plain `=`.
///
/// # Errors
///
/// Returns an error on malformed syntax or an invalid contraction.
///
/// # Examples
///
/// ```
/// let (tc, accumulate) = cogent_ir::parse::parse_statement(
///     "T3[h1,p4] += T2[h3,p4] * V2[h1,h3]",
/// )?;
/// assert!(accumulate);
/// assert_eq!(tc.internal_indices()[0].as_str(), "h3");
/// # Ok::<(), cogent_ir::ParseContractionError>(())
/// ```
pub fn parse_statement(s: &str) -> Result<(Contraction, bool), ParseContractionError> {
    let eq = s
        .find('=')
        .ok_or_else(|| ParseContractionError::syntax("missing '='"))?;
    let accumulate = eq > 0 && s.as_bytes()[eq - 1] == b'+';
    let lhs = &s[..eq - usize::from(accumulate)];
    let rhs = &s[eq + 1..];
    let (a_text, b_text) = rhs
        .split_once('*')
        .ok_or_else(|| ParseContractionError::syntax("missing '*' on the right-hand side"))?;
    let c = parse_tensor(lhs)?;
    let a = parse_tensor(a_text)?;
    let b = parse_tensor(b_text)?;
    Contraction::new(c, a, b)
        .map(|tc| (tc, accumulate))
        .map_err(Into::into)
}

fn parse_tensor(text: &str) -> Result<TensorRef, ParseContractionError> {
    let text = text.trim();
    let open = text
        .find('[')
        .ok_or_else(|| ParseContractionError::syntax(format!("missing '[' in {text:?}")))?;
    if !text.ends_with(']') {
        return Err(ParseContractionError::syntax(format!(
            "missing closing ']' in {text:?}"
        )));
    }
    let name = text[..open].trim();
    let body = &text[open + 1..text.len() - 1];
    let indices: Vec<IndexName> = body
        .split(',')
        .map(|part| {
            let part = part.trim();
            IndexName::try_new(part).ok_or_else(|| {
                ParseContractionError::syntax(format!("invalid index name {part:?}"))
            })
        })
        .collect::<Result<_, _>>()?;
    TensorRef::try_new(name, indices).map_err(Into::into)
}

impl FromStr for Contraction {
    type Err = ParseContractionError;

    /// Accepts either the TCCG form (`"abcd-aebf-dfce"`) or the explicit
    /// form (`"C[...] = A[...] * B[...]"`), chosen by the presence of `=`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.contains('=') {
            parse_explicit(s)
        } else {
            parse_tccg(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tccg_eq1() {
        let tc = parse_tccg("abcd-aebf-dfce").unwrap();
        assert_eq!(tc.to_string(), "C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]");
    }

    #[test]
    fn tccg_matmul() {
        let tc = parse_tccg("ij-ik-kj").unwrap();
        assert_eq!(tc.internal_indices().len(), 1);
        assert_eq!(tc.internal_indices()[0].as_str(), "k");
    }

    #[test]
    fn tccg_sd2_1_from_paper() {
        // Fig. 8 benchmark: SD2_1 (abcdef-gdab-efgc).
        let tc = parse_tccg("abcdef-gdab-efgc").unwrap();
        assert_eq!(tc.c().rank(), 6);
        assert_eq!(tc.a().rank(), 4);
        assert_eq!(tc.b().rank(), 4);
        assert_eq!(tc.internal_indices().len(), 1);
        assert_eq!(tc.internal_indices()[0].as_str(), "g");
    }

    #[test]
    fn tccg_wrong_group_count() {
        assert!(parse_tccg("ab-cd").is_err());
        assert!(parse_tccg("ab-cd-ef-gh").is_err());
    }

    #[test]
    fn tccg_empty_group() {
        assert!(parse_tccg("ab--cd").is_err());
        assert!(parse_tccg("-ab-cd").is_err());
    }

    #[test]
    fn tccg_bad_character() {
        assert!(parse_tccg("a1b-ab-1b".replace('1', "!").as_str()).is_err());
    }

    #[test]
    fn explicit_eq1() {
        let tc = parse_explicit("C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]").unwrap();
        assert_eq!(tc.to_tccg_string().unwrap(), "abcd-aebf-dfce");
    }

    #[test]
    fn explicit_multichar_indices() {
        let tc =
            parse_explicit("T3[h3,h2,h1,p6,p5,p4] = T2[h7,p4,p5,h1] * V2[h3,h2,p6,h7]").unwrap();
        assert_eq!(tc.c().name(), "T3");
        assert_eq!(tc.internal_indices()[0].as_str(), "h7");
    }

    #[test]
    fn explicit_whitespace_insensitive() {
        let tc = parse_explicit("  C[ a , b ]=A[ a , k ]  *  B[ k , b ] ").unwrap();
        assert_eq!(tc.to_tccg_string().unwrap(), "ab-ak-kb");
    }

    #[test]
    fn explicit_missing_parts() {
        assert!(parse_explicit("C[a,b] A[a,k] * B[k,b]").is_err());
        assert!(parse_explicit("C[a,b] = A[a,k] B[k,b]").is_err());
        assert!(parse_explicit("C[a,b] = A[a,k * B[k,b]").is_err());
        assert!(parse_explicit("Ca,b] = A[a,k] * B[k,b]").is_err());
    }

    #[test]
    fn from_str_dispatch() {
        let t1: Contraction = "ab-ak-kb".parse().unwrap();
        let t2: Contraction = "C[a,b] = A[a,k] * B[k,b]".parse().unwrap();
        assert_eq!(t1.to_tccg_string(), t2.to_tccg_string());
    }

    #[test]
    fn statement_detects_accumulate() {
        let (tc, acc) = parse_statement("C[a,b] += A[a,k] * B[k,b]").unwrap();
        assert!(acc);
        assert_eq!(tc.to_tccg_string().unwrap(), "ab-ak-kb");
        let (_, plain) = parse_statement("C[a,b] = A[a,k] * B[k,b]").unwrap();
        assert!(!plain);
        // Whitespace around the operator is tolerated.
        let (_, acc2) = parse_statement("C[a,b]  +=  A[a,k] * B[k,b]").unwrap();
        assert!(acc2);
    }

    #[test]
    fn allowing_batch_accepts_and_rejects_correctly() {
        let tc = parse_allowing_batch("ijn-ikn-kjn").unwrap();
        assert_eq!(tc.batch_indices()[0].as_str(), "n");
        // Non-batch contractions still parse identically.
        let tc2 = parse_allowing_batch("ij-ik-kj").unwrap();
        assert!(tc2.batch_indices().is_empty());
        // Genuinely invalid input still errors.
        assert!(parse_allowing_batch("ij-ikz-kj").is_err());
        assert!(parse_allowing_batch("ij-ik").is_err());
    }

    #[test]
    fn parse_surfaces_validation_errors() {
        // "z" appears once.
        let err = parse_tccg("ab-akz-kb").unwrap_err();
        assert!(matches!(err, ParseContractionError::Invalid(_)));
    }
}
