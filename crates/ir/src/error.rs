//! Error types.

use std::error::Error;
use std::fmt;

use crate::index::IndexName;

/// Error validating a [`Contraction`](crate::Contraction) or
/// [`TensorRef`](crate::TensorRef).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateContractionError {
    /// A tensor was given an empty name.
    EmptyTensorName,
    /// A tensor was given no indices.
    EmptyIndexList {
        /// The offending tensor.
        tensor: String,
    },
    /// The same index appears twice within one tensor (e.g. a trace), which
    /// is outside the contraction class handled here.
    RepeatedIndexInTensor {
        /// The offending tensor.
        tensor: String,
        /// The repeated index.
        index: IndexName,
    },
    /// An index appears in all three tensors (batch/Hadamard index).
    BatchIndex {
        /// The offending index.
        index: IndexName,
    },
    /// An index appears in only one tensor.
    UnmatchedIndex {
        /// The offending index.
        index: IndexName,
        /// The tensor in which it appears.
        tensor: String,
    },
    /// Two tensors share a name.
    DuplicateTensorName,
}

impl fmt::Display for ValidateContractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTensorName => write!(f, "tensor name is empty"),
            Self::EmptyIndexList { tensor } => {
                write!(f, "tensor {tensor} has an empty index list")
            }
            Self::RepeatedIndexInTensor { tensor, index } => {
                write!(f, "index {index} repeats within tensor {tensor}")
            }
            Self::BatchIndex { index } => write!(
                f,
                "index {index} appears in all three tensors (batch indices are not a contraction)"
            ),
            Self::UnmatchedIndex { index, tensor } => write!(
                f,
                "index {index} of tensor {tensor} appears in only one tensor"
            ),
            Self::DuplicateTensorName => write!(f, "two tensors share the same name"),
        }
    }
}

impl Error for ValidateContractionError {}

/// Error parsing a contraction from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseContractionError {
    /// The string did not have the expected overall shape.
    Syntax {
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// The indices parsed fine but the contraction itself is invalid.
    Invalid(ValidateContractionError),
}

impl ParseContractionError {
    pub(crate) fn syntax(message: impl Into<String>) -> Self {
        Self::Syntax {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseContractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Syntax { message } => write!(f, "invalid contraction syntax: {message}"),
            Self::Invalid(e) => write!(f, "invalid contraction: {e}"),
        }
    }
}

impl Error for ParseContractionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Syntax { .. } => None,
            Self::Invalid(e) => Some(e),
        }
    }
}

impl From<ValidateContractionError> for ParseContractionError {
    fn from(e: ValidateContractionError) -> Self {
        Self::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_period() {
        let msgs = [
            ValidateContractionError::EmptyTensorName.to_string(),
            ValidateContractionError::DuplicateTensorName.to_string(),
            ValidateContractionError::BatchIndex {
                index: IndexName::new("a"),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn parse_error_wraps_validation() {
        let inner = ValidateContractionError::EmptyTensorName;
        let outer = ParseContractionError::from(inner.clone());
        assert!(outer.to_string().contains("tensor name is empty"));
        assert!(Error::source(&outer).is_some());
        let _ = inner;
    }
}
