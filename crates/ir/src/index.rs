//! Index names.

use std::borrow::Borrow;
use std::fmt;

/// The name of a tensor index (loop variable), e.g. `a` or `h3`.
///
/// Index names are short strings. Single-letter names are what the TCCG
/// string notation uses; multi-character names (such as NWChem's `h3`/`p6`)
/// are supported by the explicit bracket notation.
///
/// # Examples
///
/// ```
/// use cogent_ir::IndexName;
///
/// let a = IndexName::new("a");
/// assert_eq!(a.as_str(), "a");
/// assert_eq!(a.to_string(), "a");
/// ```
#[derive(
    Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct IndexName(Box<str>);

impl IndexName {
    /// Creates an index name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains characters other than ASCII
    /// alphanumerics and `_`. Use [`IndexName::try_new`] for a fallible
    /// variant.
    pub fn new(name: impl AsRef<str>) -> Self {
        Self::try_new(name.as_ref())
            .unwrap_or_else(|| panic!("invalid index name: {:?}", name.as_ref()))
    }

    /// Creates an index name, returning `None` when `name` is empty or
    /// contains characters other than ASCII alphanumerics and `_`.
    pub fn try_new(name: &str) -> Option<Self> {
        let valid = !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic());
        valid.then(|| Self(name.into()))
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for IndexName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<char> for IndexName {
    fn from(c: char) -> Self {
        Self::new(c.to_string())
    }
}

impl From<&str> for IndexName {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl Borrow<str> for IndexName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for IndexName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_letter() {
        let a = IndexName::new("a");
        assert_eq!(a.as_str(), "a");
    }

    #[test]
    fn multi_char() {
        let h3 = IndexName::new("h3");
        assert_eq!(h3.as_str(), "h3");
        assert_eq!(format!("{h3}"), "h3");
    }

    #[test]
    fn from_char() {
        assert_eq!(IndexName::from('q').as_str(), "q");
    }

    #[test]
    fn rejects_empty() {
        assert!(IndexName::try_new("").is_none());
    }

    #[test]
    fn rejects_punctuation() {
        assert!(IndexName::try_new("a-b").is_none());
        assert!(IndexName::try_new("a b").is_none());
        assert!(IndexName::try_new("[x]").is_none());
    }

    #[test]
    fn rejects_leading_digit() {
        assert!(IndexName::try_new("3h").is_none());
    }

    #[test]
    fn accepts_underscore() {
        assert!(IndexName::try_new("p_6").is_some());
    }

    #[test]
    #[should_panic(expected = "invalid index name")]
    fn new_panics_on_invalid() {
        let _ = IndexName::new("");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [
            IndexName::new("c"),
            IndexName::new("a"),
            IndexName::new("b"),
        ];
        v.sort();
        let names: Vec<_> = v.iter().map(IndexName::as_str).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn borrow_str_lookup() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(IndexName::new("a"));
        assert!(set.contains("a"));
    }
}
