//! Tensor references and validated contraction expressions.

use std::fmt;

use crate::error::ValidateContractionError;
use crate::index::IndexName;

/// A reference to one tensor: a name plus an ordered list of index names.
///
/// The index list is ordered **fastest-varying first** (generalized
/// column-major). `TensorRef::new("A", ["a", "e", "b", "f"])` denotes the 4D
/// tensor `A[a,e,b,f]` in which consecutive elements along `a` are adjacent
/// in memory — `a` is the tensor's *fastest varying index* (FVI).
///
/// # Examples
///
/// ```
/// use cogent_ir::TensorRef;
///
/// let a = TensorRef::new("A", ["a", "e", "b", "f"]);
/// assert_eq!(a.rank(), 4);
/// assert_eq!(a.fvi().as_str(), "a");
/// assert!(a.contains("e"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TensorRef {
    name: Box<str>,
    indices: Vec<IndexName>,
}

impl TensorRef {
    /// Creates a tensor reference.
    ///
    /// # Panics
    ///
    /// Panics if the index list is empty or contains a duplicate index, or
    /// if `name` is empty. Use [`TensorRef::try_new`] for a fallible variant.
    pub fn new<I, N>(name: &str, indices: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<IndexName>,
    {
        Self::try_new(name, indices).expect("invalid tensor reference")
    }

    /// Creates a tensor reference, validating that the name is non-empty,
    /// the index list is non-empty, and no index repeats.
    pub fn try_new<I, N>(name: &str, indices: I) -> Result<Self, ValidateContractionError>
    where
        I: IntoIterator<Item = N>,
        N: Into<IndexName>,
    {
        let indices: Vec<IndexName> = indices.into_iter().map(Into::into).collect();
        if name.is_empty() {
            return Err(ValidateContractionError::EmptyTensorName);
        }
        if indices.is_empty() {
            return Err(ValidateContractionError::EmptyIndexList {
                tensor: name.to_owned(),
            });
        }
        for (i, idx) in indices.iter().enumerate() {
            if indices[..i].contains(idx) {
                return Err(ValidateContractionError::RepeatedIndexInTensor {
                    tensor: name.to_owned(),
                    index: idx.clone(),
                });
            }
        }
        Ok(Self {
            name: name.into(),
            indices,
        })
    }

    /// The tensor's name (e.g. `"A"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered index list, fastest-varying first.
    pub fn indices(&self) -> &[IndexName] {
        &self.indices
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.indices.len()
    }

    /// The fastest varying index (first in the list).
    pub fn fvi(&self) -> &IndexName {
        &self.indices[0]
    }

    /// The slowest varying index (last in the list).
    pub fn svi(&self) -> &IndexName {
        self.indices.last().expect("index list is never empty")
    }

    /// Whether this tensor is indexed by `index`.
    pub fn contains(&self, index: impl AsRef<str>) -> bool {
        let index = index.as_ref();
        self.indices.iter().any(|i| i.as_str() == index)
    }

    /// Position of `index` in this tensor's index list (0 = fastest varying).
    pub fn position(&self, index: impl AsRef<str>) -> Option<usize> {
        let index = index.as_ref();
        self.indices.iter().position(|i| i.as_str() == index)
    }

    /// Returns a copy with the same name and permuted indices.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rank()`.
    pub fn permuted(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.rank(), "permutation length mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "not a permutation: {perm:?}");
            seen[p] = true;
        }
        Self {
            name: self.name.clone(),
            indices: perm.iter().map(|&p| self.indices[p].clone()).collect(),
        }
    }
}

impl fmt::Display for TensorRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.name)?;
        for (i, idx) in self.indices.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{idx}")?;
        }
        f.write_str("]")
    }
}

/// A validated tensor contraction `C = A * B`.
///
/// Validation enforces the defining property of a contraction, which the
/// COGENT code-generation strategy depends on: **every index appears in
/// exactly two of the three tensors**. Indices shared by `A` and `C` or by
/// `B` and `C` are *external*; indices shared by `A` and `B` are *internal*
/// (contracted / summed).
///
/// # Examples
///
/// ```
/// use cogent_ir::{Contraction, TensorRef};
///
/// let tc = Contraction::new(
///     TensorRef::new("C", ["a", "b", "c", "d"]),
///     TensorRef::new("A", ["a", "e", "b", "f"]),
///     TensorRef::new("B", ["d", "f", "c", "e"]),
/// )?;
/// assert_eq!(tc.internal_indices().len(), 2); // e, f
/// # Ok::<(), cogent_ir::ValidateContractionError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Contraction {
    c: TensorRef,
    a: TensorRef,
    b: TensorRef,
    /// External indices in output order (i.e. the order they appear in `C`).
    externals: Vec<IndexName>,
    /// Internal (contracted) indices in the order they appear in `A`.
    internals: Vec<IndexName>,
    /// Batch (Hadamard) indices present in all three tensors, in output
    /// order. Empty for the strict contraction class of the paper; see
    /// [`Contraction::with_batch`].
    batch: Vec<IndexName>,
}

impl Contraction {
    /// Creates and validates a contraction.
    ///
    /// # Errors
    ///
    /// Returns an error when an index appears in only one tensor, in all
    /// three tensors (a batch/Hadamard index, outside the contraction class
    /// handled by the paper), or when tensor names collide.
    pub fn new(c: TensorRef, a: TensorRef, b: TensorRef) -> Result<Self, ValidateContractionError> {
        Self::build(c, a, b, false)
    }

    /// Like [`Contraction::new`] but also accepts *batch* (Hadamard)
    /// indices — indices present in all three tensors, as in the batched
    /// matrix product `C[i,j,n] = A[i,k,n] * B[k,j,n]`. This generalizes
    /// the paper's contraction class; the code generator maps batch
    /// indices onto the grid dimension.
    ///
    /// # Errors
    ///
    /// Same as [`Contraction::new`], except that batch indices are
    /// accepted instead of rejected.
    ///
    /// # Examples
    ///
    /// ```
    /// use cogent_ir::{Contraction, TensorRef};
    ///
    /// let tc = Contraction::with_batch(
    ///     TensorRef::new("C", ["i", "j", "n"]),
    ///     TensorRef::new("A", ["i", "k", "n"]),
    ///     TensorRef::new("B", ["k", "j", "n"]),
    /// )?;
    /// assert_eq!(tc.batch_indices().len(), 1);
    /// assert_eq!(tc.internal_indices().len(), 1);
    /// # Ok::<(), cogent_ir::ValidateContractionError>(())
    /// ```
    pub fn with_batch(
        c: TensorRef,
        a: TensorRef,
        b: TensorRef,
    ) -> Result<Self, ValidateContractionError> {
        Self::build(c, a, b, true)
    }

    fn build(
        c: TensorRef,
        a: TensorRef,
        b: TensorRef,
        allow_batch: bool,
    ) -> Result<Self, ValidateContractionError> {
        if c.name() == a.name() || c.name() == b.name() || a.name() == b.name() {
            return Err(ValidateContractionError::DuplicateTensorName);
        }

        let mut externals = Vec::new();
        let mut batch = Vec::new();
        for idx in c.indices() {
            let in_a = a.contains(idx);
            let in_b = b.contains(idx);
            match (in_a, in_b) {
                (true, false) | (false, true) => externals.push(idx.clone()),
                (true, true) if allow_batch => batch.push(idx.clone()),
                (true, true) => {
                    return Err(ValidateContractionError::BatchIndex { index: idx.clone() })
                }
                (false, false) => {
                    return Err(ValidateContractionError::UnmatchedIndex {
                        index: idx.clone(),
                        tensor: c.name().to_owned(),
                    })
                }
            }
        }

        let mut internals = Vec::new();
        for idx in a.indices() {
            if c.contains(idx) {
                continue;
            }
            if b.contains(idx) {
                internals.push(idx.clone());
            } else {
                return Err(ValidateContractionError::UnmatchedIndex {
                    index: idx.clone(),
                    tensor: a.name().to_owned(),
                });
            }
        }
        for idx in b.indices() {
            if !c.contains(idx) && !a.contains(idx) {
                return Err(ValidateContractionError::UnmatchedIndex {
                    index: idx.clone(),
                    tensor: b.name().to_owned(),
                });
            }
        }

        Ok(Self {
            c,
            a,
            b,
            externals,
            internals,
            batch,
        })
    }

    /// The output tensor.
    pub fn c(&self) -> &TensorRef {
        &self.c
    }

    /// The left input tensor.
    pub fn a(&self) -> &TensorRef {
        &self.a
    }

    /// The right input tensor.
    pub fn b(&self) -> &TensorRef {
        &self.b
    }

    /// External indices (those appearing in the output), in output order.
    pub fn external_indices(&self) -> &[IndexName] {
        &self.externals
    }

    /// Internal (contracted) indices, in the order they appear in `A`.
    pub fn internal_indices(&self) -> &[IndexName] {
        &self.internals
    }

    /// Batch (Hadamard) indices present in all three tensors, in output
    /// order. Empty unless built with [`Contraction::with_batch`].
    pub fn batch_indices(&self) -> &[IndexName] {
        &self.batch
    }

    /// All distinct indices: externals (output order), then batch indices,
    /// then internals.
    pub fn all_indices(&self) -> impl Iterator<Item = &IndexName> {
        self.externals
            .iter()
            .chain(self.batch.iter())
            .chain(self.internals.iter())
    }

    /// Indices that appear in the output tensor (externals + batch):
    /// exactly `C`'s index set, in externals-then-batch order.
    pub fn output_indices(&self) -> impl Iterator<Item = &IndexName> {
        self.externals.iter().chain(self.batch.iter())
    }

    /// Total number of distinct loop indices.
    pub fn num_indices(&self) -> usize {
        self.externals.len() + self.batch.len() + self.internals.len()
    }

    /// Whether `index` is a batch index.
    pub fn is_batch(&self, index: impl AsRef<str>) -> bool {
        let index = index.as_ref();
        self.batch.iter().any(|i| i.as_str() == index)
    }

    /// Whether `index` is an internal (contracted) index.
    pub fn is_internal(&self, index: impl AsRef<str>) -> bool {
        let index = index.as_ref();
        self.internals.iter().any(|i| i.as_str() == index)
    }

    /// Whether `index` is an external index.
    pub fn is_external(&self, index: impl AsRef<str>) -> bool {
        let index = index.as_ref();
        self.externals.iter().any(|i| i.as_str() == index)
    }

    /// Returns a copy with `A` and `B` swapped (the product is commutative,
    /// the kernel-generation strategy is not: it assumes `A` holds the
    /// output's FVI).
    pub fn swapped(&self) -> Self {
        Self::build(self.c.clone(), self.b.clone(), self.a.clone(), true)
            .expect("swapping preserves validity")
    }

    /// Returns `self` if `A` contains the output's FVI, otherwise the
    /// swapped contraction (so that the returned value always satisfies the
    /// code generator's normalization assumption).
    ///
    /// The output FVI is external, so exactly one input contains it.
    pub fn normalized(&self) -> Self {
        if self.a.contains(self.c.fvi()) {
            self.clone()
        } else {
            self.swapped()
        }
    }

    /// Formats the contraction in TCCG string notation when every index is a
    /// single character (e.g. `"abcd-aebf-dfce"`), otherwise `None`.
    pub fn to_tccg_string(&self) -> Option<String> {
        let part = |t: &TensorRef| -> Option<String> {
            t.indices()
                .iter()
                .map(|i| (i.as_str().len() == 1).then(|| i.as_str().to_owned()))
                .collect()
        };
        Some(format!(
            "{}-{}-{}",
            part(&self.c)?,
            part(&self.a)?,
            part(&self.b)?
        ))
    }
}

impl fmt::Display for Contraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {} * {}", self.c, self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq1() -> Contraction {
        Contraction::new(
            TensorRef::new("C", ["a", "b", "c", "d"]),
            TensorRef::new("A", ["a", "e", "b", "f"]),
            TensorRef::new("B", ["d", "f", "c", "e"]),
        )
        .unwrap()
    }

    #[test]
    fn tensor_ref_basics() {
        let t = TensorRef::new("A", ["a", "e", "b", "f"]);
        assert_eq!(t.name(), "A");
        assert_eq!(t.rank(), 4);
        assert_eq!(t.fvi().as_str(), "a");
        assert_eq!(t.svi().as_str(), "f");
        assert_eq!(t.position("b"), Some(2));
        assert_eq!(t.position("z"), None);
        assert_eq!(t.to_string(), "A[a,e,b,f]");
    }

    #[test]
    fn tensor_ref_rejects_duplicates() {
        let err = TensorRef::try_new("A", ["a", "a"]).unwrap_err();
        assert!(matches!(
            err,
            ValidateContractionError::RepeatedIndexInTensor { .. }
        ));
    }

    #[test]
    fn tensor_ref_rejects_empty() {
        assert!(TensorRef::try_new("A", Vec::<IndexName>::new()).is_err());
        assert!(TensorRef::try_new("", ["a"]).is_err());
    }

    #[test]
    fn permuted() {
        let t = TensorRef::new("A", ["a", "b", "c"]);
        let p = t.permuted(&[2, 0, 1]);
        let names: Vec<_> = p.indices().iter().map(IndexName::as_str).collect();
        assert_eq!(names, ["c", "a", "b"]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permuted_rejects_non_permutation() {
        let t = TensorRef::new("A", ["a", "b", "c"]);
        let _ = t.permuted(&[0, 0, 1]);
    }

    #[test]
    fn eq1_classification() {
        let tc = eq1();
        let ext: Vec<_> = tc
            .external_indices()
            .iter()
            .map(IndexName::as_str)
            .collect();
        let int: Vec<_> = tc
            .internal_indices()
            .iter()
            .map(IndexName::as_str)
            .collect();
        assert_eq!(ext, ["a", "b", "c", "d"]);
        assert_eq!(int, ["e", "f"]);
        assert!(tc.is_internal("e"));
        assert!(!tc.is_internal("a"));
        assert!(tc.is_external("d"));
    }

    #[test]
    fn matmul_classification() {
        // C[i,j] = A[i,k] * B[k,j]
        let tc = Contraction::new(
            TensorRef::new("C", ["i", "j"]),
            TensorRef::new("A", ["i", "k"]),
            TensorRef::new("B", ["k", "j"]),
        )
        .unwrap();
        assert_eq!(tc.internal_indices().len(), 1);
        assert_eq!(tc.num_indices(), 3);
    }

    #[test]
    fn rejects_batch_index() {
        // "a" in all three tensors.
        let err = Contraction::new(
            TensorRef::new("C", ["a", "b"]),
            TensorRef::new("A", ["a", "k"]),
            TensorRef::new("B", ["a", "k", "b"]),
        )
        .unwrap_err();
        assert!(matches!(err, ValidateContractionError::BatchIndex { .. }));
    }

    #[test]
    fn rejects_free_index() {
        // "z" appears only in A.
        let err = Contraction::new(
            TensorRef::new("C", ["a", "b"]),
            TensorRef::new("A", ["a", "k", "z"]),
            TensorRef::new("B", ["k", "b"]),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ValidateContractionError::UnmatchedIndex { .. }
        ));
    }

    #[test]
    fn rejects_output_only_index() {
        let err = Contraction::new(
            TensorRef::new("C", ["a", "b", "z"]),
            TensorRef::new("A", ["a", "k"]),
            TensorRef::new("B", ["k", "b"]),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ValidateContractionError::UnmatchedIndex { .. }
        ));
    }

    #[test]
    fn rejects_duplicate_tensor_names() {
        let err = Contraction::new(
            TensorRef::new("T", ["a", "b"]),
            TensorRef::new("T", ["a", "k"]),
            TensorRef::new("B", ["k", "b"]),
        )
        .unwrap_err();
        assert!(matches!(err, ValidateContractionError::DuplicateTensorName));
    }

    #[test]
    fn swap_roundtrip() {
        let tc = eq1();
        let sw = tc.swapped();
        assert_eq!(sw.a().name(), "B");
        assert_eq!(sw.b().name(), "A");
        assert_eq!(sw.swapped(), tc);
        // Classification is preserved up to ordering.
        let mut i1: Vec<_> = tc.internal_indices().to_vec();
        let mut i2: Vec<_> = sw.internal_indices().to_vec();
        i1.sort();
        i2.sort();
        assert_eq!(i1, i2);
    }

    #[test]
    fn normalized_keeps_a_with_output_fvi() {
        let tc = eq1();
        // "a" is C's FVI and is in A already.
        assert_eq!(tc.normalized(), tc);

        // Build one where the output FVI lives in B.
        let tc2 = Contraction::new(
            TensorRef::new("C", ["d", "a", "b", "c"]),
            TensorRef::new("A", ["a", "e", "b", "f"]),
            TensorRef::new("B", ["d", "f", "c", "e"]),
        )
        .unwrap();
        let n = tc2.normalized();
        assert!(n.a().contains(n.c().fvi()));
        assert_eq!(n.a().name(), "B");
    }

    #[test]
    fn outer_product_is_valid() {
        // No internal index at all: C[i,j] = A[i] * B[j].
        let tc = Contraction::new(
            TensorRef::new("C", ["i", "j"]),
            TensorRef::new("A", ["i"]),
            TensorRef::new("B", ["j"]),
        )
        .unwrap();
        assert!(tc.internal_indices().is_empty());
    }

    #[test]
    fn tccg_string() {
        assert_eq!(eq1().to_tccg_string().unwrap(), "abcd-aebf-dfce");
        let tc = Contraction::new(
            TensorRef::new("C", ["h3", "p6"]),
            TensorRef::new("A", ["h3", "h7"]),
            TensorRef::new("B", ["p6", "h7"]),
        )
        .unwrap();
        assert_eq!(tc.to_tccg_string(), None);
    }

    #[test]
    fn display() {
        assert_eq!(eq1().to_string(), "C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]");
    }
}
