//! Representative problem sizes.

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::{Contraction, TensorRef};
use crate::index::IndexName;

/// A map from index name to extent (`N_i` in the paper's terminology).
///
/// The code generator does not require the exact problem size at generation
/// time — only a *representative* size used for performance modelling and
/// tile-size selection. The generated kernel itself supports arbitrary
/// extents.
///
/// # Examples
///
/// ```
/// use cogent_ir::{Contraction, SizeMap};
///
/// let tc: Contraction = "abcd-aebf-dfce".parse()?;
/// let sizes = SizeMap::uniform(&tc, 24);
/// assert_eq!(sizes.extent("a"), Some(24));
/// assert_eq!(sizes.linear_size(tc.a()), Some(24usize.pow(4)));
/// # Ok::<(), cogent_ir::ParseContractionError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SizeMap {
    extents: BTreeMap<IndexName, usize>,
}

impl SizeMap {
    /// Creates an empty size map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a size map assigning the same extent to every index of the
    /// contraction.
    pub fn uniform(contraction: &Contraction, extent: usize) -> Self {
        let mut m = Self::new();
        for idx in contraction.all_indices() {
            m.set(idx.clone(), extent);
        }
        m
    }

    /// Builds a size map from `(index, extent)` pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// let sizes = cogent_ir::SizeMap::from_pairs([("a", 16), ("b", 24)]);
    /// assert_eq!(sizes.extent("b"), Some(24));
    /// ```
    pub fn from_pairs<I, N>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (N, usize)>,
        N: Into<IndexName>,
    {
        let mut m = Self::new();
        for (name, extent) in pairs {
            m.set(name.into(), extent);
        }
        m
    }

    /// Sets the extent of one index, returning the previous extent if any.
    ///
    /// # Panics
    ///
    /// Panics if `extent` is zero.
    pub fn set(&mut self, index: impl Into<IndexName>, extent: usize) -> Option<usize> {
        assert!(extent > 0, "extent must be positive");
        self.extents.insert(index.into(), extent)
    }

    /// The extent of `index`, or `None` when unset.
    pub fn extent(&self, index: impl AsRef<str>) -> Option<usize> {
        self.extents.get(index.as_ref()).copied()
    }

    /// The extent of `index`.
    ///
    /// # Panics
    ///
    /// Panics when the extent is unset.
    pub fn extent_of(&self, index: impl AsRef<str>) -> usize {
        let index = index.as_ref();
        self.extent(index)
            .unwrap_or_else(|| panic!("no extent for index {index}"))
    }

    /// Whether every index of `contraction` has an extent.
    pub fn covers(&self, contraction: &Contraction) -> bool {
        contraction.all_indices().all(|i| self.extent(i).is_some())
    }

    /// Number of elements of the given tensor, or `None` if an extent is
    /// missing.
    pub fn linear_size(&self, tensor: &TensorRef) -> Option<usize> {
        tensor
            .indices()
            .iter()
            .map(|i| self.extent(i))
            .try_fold(1usize, |acc, e| e.map(|e| acc * e))
    }

    /// Iterates over `(index, extent)` pairs in index-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&IndexName, usize)> {
        self.extents.iter().map(|(k, &v)| (k, v))
    }

    /// Number of indices with a recorded extent.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Returns a copy with every extent divided by `factor` (rounded up,
    /// minimum 1). Useful for shrinking a benchmark problem to a
    /// functional-test size.
    pub fn scaled_down(&self, factor: usize) -> Self {
        assert!(factor > 0, "factor must be positive");
        Self {
            extents: self
                .extents
                .iter()
                .map(|(k, &v)| (k.clone(), v.div_ceil(factor).max(1)))
                .collect(),
        }
    }
}

impl fmt::Display for SizeMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        f.write_str("}")
    }
}

impl<N: Into<IndexName>> FromIterator<(N, usize)> for SizeMap {
    fn from_iter<I: IntoIterator<Item = (N, usize)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

impl<N: Into<IndexName>> Extend<(N, usize)> for SizeMap {
    fn extend<I: IntoIterator<Item = (N, usize)>>(&mut self, iter: I) {
        for (n, e) in iter {
            self.set(n.into(), e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq1() -> Contraction {
        "abcd-aebf-dfce".parse().unwrap()
    }

    #[test]
    fn uniform_covers_all() {
        let tc = eq1();
        let s = SizeMap::uniform(&tc, 16);
        assert!(s.covers(&tc));
        assert_eq!(s.len(), 6);
        assert_eq!(s.extent_of("f"), 16);
    }

    #[test]
    fn linear_size() {
        let tc = eq1();
        let s = SizeMap::from_pairs([("a", 2), ("b", 3), ("c", 4), ("d", 5), ("e", 6), ("f", 7)]);
        assert_eq!(s.linear_size(tc.c()), Some(2 * 3 * 4 * 5));
        assert_eq!(s.linear_size(tc.a()), Some(2 * 6 * 3 * 7));
        assert_eq!(s.linear_size(tc.b()), Some(5 * 7 * 4 * 6));
    }

    #[test]
    fn linear_size_missing_extent() {
        let tc = eq1();
        let s = SizeMap::from_pairs([("a", 2)]);
        assert_eq!(s.linear_size(tc.c()), None);
    }

    #[test]
    fn set_returns_previous() {
        let mut s = SizeMap::new();
        assert_eq!(s.set("a", 4), None);
        assert_eq!(s.set("a", 8), Some(4));
        assert_eq!(s.extent("a"), Some(8));
    }

    #[test]
    #[should_panic(expected = "extent must be positive")]
    fn zero_extent_panics() {
        SizeMap::new().set("a", 0);
    }

    #[test]
    #[should_panic(expected = "no extent for index")]
    fn extent_of_missing_panics() {
        SizeMap::new().extent_of("a");
    }

    #[test]
    fn scaled_down() {
        let s = SizeMap::from_pairs([("a", 64), ("b", 3), ("c", 1)]);
        let t = s.scaled_down(4);
        assert_eq!(t.extent("a"), Some(16));
        assert_eq!(t.extent("b"), Some(1));
        assert_eq!(t.extent("c"), Some(1));
    }

    #[test]
    fn display() {
        let s = SizeMap::from_pairs([("b", 2), ("a", 1)]);
        assert_eq!(s.to_string(), "{a: 1, b: 2}");
    }

    #[test]
    fn collect_and_extend() {
        let mut s: SizeMap = [("a", 1), ("b", 2)].into_iter().collect();
        s.extend([("c", 3)]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
