//! Intermediate representation for tensor contractions.
//!
//! A *tensor contraction* is a higher-dimensional generalization of
//! matrix-matrix multiplication: `C[ext] = sum_{int} A[...] * B[...]`,
//! written in Einstein convention where every index that does not appear in
//! the output tensor is summed over.
//!
//! This crate provides:
//!
//! * [`TensorRef`] — an ordered list of index names for one tensor, with the
//!   **first index being the fastest varying** (generalized column-major, as
//!   assumed throughout the COGENT paper).
//! * [`Contraction`] — a validated three-tensor contraction in which every
//!   index appears in **exactly two** of the three tensors. This is the key
//!   domain property the code generator exploits: each loop index is a reuse
//!   direction for exactly one tensor (the one it does not index).
//! * [`SizeMap`] — representative extents for each index, used by the cost
//!   model and for allocating concrete tensors.
//! * Parsers for the TCCG string form (`"abcd-aebf-dfce"`) and an explicit
//!   form (`"C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]"`).
//!
//! # Examples
//!
//! ```
//! use cogent_ir::Contraction;
//!
//! // Eq. 1 of the paper: C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]
//! let tc: Contraction = "abcd-aebf-dfce".parse()?;
//! assert_eq!(tc.external_indices().len(), 4);
//! assert_eq!(tc.internal_indices().len(), 2);
//! # Ok::<(), cogent_ir::ParseContractionError>(())
//! ```

pub mod analysis;
pub mod expr;
pub mod index;
pub mod parse;
pub mod size;
pub mod transform;

mod error;

pub use analysis::{ContractionAnalysis, IndexClass, TensorRole};
pub use error::{ParseContractionError, ValidateContractionError};
pub use expr::{Contraction, TensorRef};
pub use index::IndexName;
pub use size::SizeMap;
