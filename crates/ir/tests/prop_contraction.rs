//! Property tests for the contraction IR: random contractions are generated
//! by partitioning a random index pool into the three legal groups and
//! shuffling per-tensor orders; the classifier must recover the partition.

use cogent_ir::{Contraction, ContractionAnalysis, SizeMap, TensorRef};
use proptest::prelude::*;

/// Strategy producing a random valid contraction together with the intended
/// partition (externals-in-A, externals-in-B, internals).
fn contraction_strategy() -> impl Strategy<Value = (Contraction, usize, usize, usize)> {
    // Pool of up to 8 single-letter indices split into three groups:
    // group sizes (na, nb, ni) with na + nb >= 1 and ni >= 1 and each input
    // tensor non-empty.
    (1usize..=3, 1usize..=3, 1usize..=2).prop_flat_map(|(na, nb, ni)| {
        let total = na + nb + ni;
        let letters: Vec<String> = (0..total)
            .map(|i| ((b'a' + i as u8) as char).to_string())
            .collect();
        let ext_a = letters[..na].to_vec();
        let ext_b = letters[na..na + nb].to_vec();
        let ints = letters[na + nb..].to_vec();
        let c_perm = Just(()).prop_perturb(move |_, mut rng| {
            let mut v: Vec<String> = ext_a.iter().chain(ext_b.iter()).cloned().collect();
            // Fisher-Yates with proptest's rng for reproducibility.
            for i in (1..v.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                v.swap(i, j);
            }
            v
        });
        let ea = letters[..na].to_vec();
        let eb = letters[na..na + nb].to_vec();
        let ii = ints.clone();
        c_perm.prop_map(move |c_order| {
            let mut a_idx: Vec<String> = ea.iter().chain(ii.iter()).cloned().collect();
            let mut b_idx: Vec<String> = eb.iter().chain(ii.iter()).cloned().collect();
            // Deterministic rotation to vary input layouts.
            let ra = c_order.len() % a_idx.len().max(1);
            let rb = (c_order.len() / 2) % b_idx.len().max(1);
            a_idx.rotate_left(ra);
            b_idx.rotate_left(rb);
            let c = TensorRef::new("C", c_order.iter().map(String::as_str));
            let a = TensorRef::new("A", a_idx.iter().map(String::as_str));
            let b = TensorRef::new("B", b_idx.iter().map(String::as_str));
            (
                Contraction::new(c, a, b).expect("constructed valid"),
                na,
                nb,
                ii.len(),
            )
        })
    })
}

proptest! {
    #[test]
    fn classifier_recovers_partition((tc, na, nb, ni) in contraction_strategy()) {
        let an = ContractionAnalysis::new(&tc);
        prop_assert_eq!(an.externals_a().len(), na);
        prop_assert_eq!(an.externals_b().len(), nb);
        prop_assert_eq!(an.internals().len(), ni);
        prop_assert_eq!(tc.num_indices(), na + nb + ni);
    }

    #[test]
    fn every_index_in_exactly_two_tensors((tc, ..) in contraction_strategy()) {
        for idx in tc.all_indices() {
            let count = [tc.c(), tc.a(), tc.b()]
                .iter()
                .filter(|t| t.contains(idx))
                .count();
            prop_assert_eq!(count, 2, "index {} must be in exactly two tensors", idx);
        }
    }

    #[test]
    fn reuse_tensor_never_contains_index((tc, ..) in contraction_strategy()) {
        let an = ContractionAnalysis::new(&tc);
        for idx in tc.all_indices() {
            let class = an.classify(idx).unwrap();
            let reused = match class.reuse_tensor().expect("no batch indices") {
                cogent_ir::TensorRole::C => tc.c(),
                cogent_ir::TensorRole::A => tc.a(),
                cogent_ir::TensorRole::B => tc.b(),
            };
            prop_assert!(!reused.contains(idx));
        }
    }

    #[test]
    fn normalization_puts_output_fvi_in_a((tc, ..) in contraction_strategy()) {
        let n = tc.normalized();
        prop_assert!(n.a().contains(n.c().fvi()));
        // Normalization preserves the index partition sizes.
        let an = ContractionAnalysis::new(&tc);
        let nn = ContractionAnalysis::new(&n);
        prop_assert_eq!(an.internals().len(), nn.internals().len());
        prop_assert_eq!(
            an.externals_a().len() + an.externals_b().len(),
            nn.externals_a().len() + nn.externals_b().len()
        );
    }

    #[test]
    fn tccg_string_roundtrip((tc, ..) in contraction_strategy()) {
        let s = tc.to_tccg_string().expect("single-letter indices");
        let parsed: Contraction = s.parse().unwrap();
        prop_assert_eq!(parsed.to_tccg_string().unwrap(), s);
    }

    #[test]
    fn flops_positive_and_scales((tc, ..) in contraction_strategy()) {
        let an = ContractionAnalysis::new(&tc);
        let s1 = SizeMap::uniform(&tc, 4);
        let s2 = SizeMap::uniform(&tc, 8);
        let f1 = an.flops(&s1);
        let f2 = an.flops(&s2);
        prop_assert!(f1 > 0);
        // Doubling every extent multiplies flops by 2^rank.
        prop_assert_eq!(f2, f1 << tc.num_indices());
    }
}
