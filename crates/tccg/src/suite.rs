//! The 48 benchmark entries.

use std::fmt;

use cogent_ir::{Contraction, SizeMap};

/// Benchmark group (the clusters visible in Figs. 4–5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchGroup {
    /// Tensor-matrix multiplications from machine learning (#1–8).
    MachineLearning,
    /// Atomic-orbital → molecular-orbital integral transforms (#9–11).
    AoToMo,
    /// CCSD contractions (#12–30).
    Ccsd,
    /// CCSD(T) SD1/SD2 triples contractions (#31–48).
    CcsdT,
}

impl fmt::Display for BenchGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BenchGroup::MachineLearning => "ML",
            BenchGroup::AoToMo => "AO-MO",
            BenchGroup::Ccsd => "CCSD",
            BenchGroup::CcsdT => "CCSD(T)",
        };
        f.write_str(s)
    }
}

/// One benchmark: a contraction spec plus its representative extents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TccgEntry {
    /// 1-based position in Figs. 4–5.
    pub id: usize,
    /// Short name (e.g. `"sd2_1"` or `"tccg_12"`).
    pub name: String,
    /// The group the entry belongs to.
    pub group: BenchGroup,
    /// The contraction in TCCG string notation.
    pub spec: String,
    sizes: Vec<(char, usize)>,
}

impl TccgEntry {
    fn new(
        id: usize,
        name: impl Into<String>,
        group: BenchGroup,
        spec: impl Into<String>,
        sizes: &[(char, usize)],
    ) -> Self {
        Self {
            id,
            name: name.into(),
            group,
            spec: spec.into(),
            sizes: sizes.to_vec(),
        }
    }

    /// Parses the entry's contraction.
    ///
    /// # Panics
    ///
    /// Panics when the stored spec is malformed (a bug in the suite, caught
    /// by its tests).
    pub fn contraction(&self) -> Contraction {
        self.spec
            .parse()
            .unwrap_or_else(|e| panic!("invalid suite entry {}: {e}", self.name))
    }

    /// The representative extents for this entry.
    pub fn sizes(&self) -> SizeMap {
        SizeMap::from_pairs(self.sizes.iter().map(|&(c, n)| (c, n)))
    }

    /// Total floating point operations at the representative size.
    pub fn flops(&self) -> u128 {
        cogent_ir::ContractionAnalysis::new(&self.contraction()).flops(&self.sizes())
    }

    /// Arithmetic intensity (FLOPs per tensor element touched once) at the
    /// representative size — low values mark the transpose-hostile
    /// CCSD(T) region of Figs. 4–5.
    pub fn arithmetic_intensity(&self) -> f64 {
        let tc = self.contraction();
        cogent_ir::ContractionAnalysis::new(&tc).arithmetic_intensity(&self.sizes())
    }
}

/// Looks up a suite entry by its short name (e.g. `"sd2_1"`).
pub fn find(name: &str) -> Option<TccgEntry> {
    suite().into_iter().find(|e| e.name == name)
}

impl fmt::Display for TccgEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} [{}] {}",
            self.id, self.name, self.group, self.spec
        )
    }
}

fn uniform(letters: &str, n: usize) -> Vec<(char, usize)> {
    letters.chars().map(|c| (c, n)).collect()
}

/// CCSD(T) extents: occupied orbitals (`a..c`) of 16, virtuals (`d..f`) of
/// 24, with the contracted index `g` occupied (SD1) or virtual (SD2).
fn ccsdt_sizes(g_extent: usize) -> Vec<(char, usize)> {
    vec![
        ('a', 16),
        ('b', 16),
        ('c', 16),
        ('d', 24),
        ('e', 24),
        ('f', 24),
        ('g', g_extent),
    ]
}

/// The nine SD1 contractions (#31–39): reconstructions of NWChem's
/// `sd_t_d1_<i>` triples kernels. The output is `t3[h3,h2,h1,p6,p5,p4]`
/// (letters `a..f`); variant `i` selects which occupied index joins `t2`
/// and which virtual index joins `v2`.
pub fn sd1_entries() -> Vec<TccgEntry> {
    let mut out = Vec::new();
    let h_choices = ['c', 'b', 'a'];
    let p_choices = ['d', 'e', 'f'];
    let mut i = 0;
    for &p_w in &p_choices {
        for &h_a in &h_choices {
            i += 1;
            // A = t2(h7, p_hi, p_lo, hA): the two virtuals not given to v2,
            // descending, matching the NWChem kernel's (p4, p5) order.
            let mut ps: Vec<char> = p_choices.iter().copied().filter(|&p| p != p_w).collect();
            ps.sort_unstable();
            ps.reverse();
            let a_spec: String = std::iter::once('g')
                .chain(ps)
                .chain(std::iter::once(h_a))
                .collect();
            // B = v2(hB1, hB2, pW, h7) with the remaining occupied indices
            // ascending.
            let hs: Vec<char> = h_choices
                .iter()
                .copied()
                .filter(|&h| h != h_a)
                .collect::<Vec<_>>()
                .into_iter()
                .rev() // h_choices is (c,b,a); ascending order is (a,b)
                .collect();
            let b_spec: String = hs.into_iter().chain([p_w, 'g']).collect();
            out.push(TccgEntry::new(
                30 + i,
                format!("sd1_{i}"),
                BenchGroup::CcsdT,
                format!("abcdef-{a_spec}-{b_spec}"),
                &ccsdt_sizes(16),
            ));
        }
    }
    out
}

/// The nine SD2 contractions (#40–48). SD2_1 is the paper's Fig. 8
/// benchmark, `abcdef-gdab-efgc`.
pub fn sd2_entries() -> Vec<TccgEntry> {
    let mut out = Vec::new();
    let h_choices = ['c', 'b', 'a'];
    let p_choices = ['d', 'e', 'f'];
    let mut i = 0;
    for &h_z in &h_choices {
        for &p_a in &p_choices {
            i += 1;
            // A = t2(p7, pA, hX, hY): the occupied indices not given to v2,
            // ascending.
            let hs: Vec<char> = {
                let mut v: Vec<char> = h_choices.iter().copied().filter(|&h| h != h_z).collect();
                v.sort_unstable();
                v
            };
            let a_spec: String = std::iter::once('g')
                .chain(std::iter::once(p_a))
                .chain(hs)
                .collect();
            // B = v2(pB1, pB2, p7, hZ) with the remaining virtuals ascending.
            let ps: Vec<char> = {
                let mut v: Vec<char> = p_choices.iter().copied().filter(|&p| p != p_a).collect();
                v.sort_unstable();
                v
            };
            let b_spec: String = ps.into_iter().chain(['g', h_z]).collect();
            out.push(TccgEntry::new(
                39 + i,
                format!("sd2_{i}"),
                BenchGroup::CcsdT,
                format!("abcdef-{a_spec}-{b_spec}"),
                &ccsdt_sizes(24),
            ));
        }
    }
    out
}

/// The full 48-entry suite in figure order.
pub fn suite() -> Vec<TccgEntry> {
    use BenchGroup::*;
    let mut out = Vec::with_capacity(48);

    // #1-8: ML tensor-matrix multiplications.
    let ml3 = uniform("abcd", 152);
    let ml4: Vec<(char, usize)> = uniform("abcd", 48)
        .into_iter()
        .chain([('e', 152)])
        .collect();
    for (i, spec) in ["abc-acd-db", "abc-adc-bd", "abc-bda-dc", "abc-dca-bd"]
        .iter()
        .enumerate()
    {
        out.push(TccgEntry::new(
            i + 1,
            format!("ml_{}", i + 1),
            MachineLearning,
            *spec,
            &ml3,
        ));
    }
    for (i, spec) in [
        "abcd-aebd-ce",
        "abcd-abed-ce",
        "abcd-aecd-be",
        "abcd-eabc-de",
    ]
    .iter()
    .enumerate()
    {
        out.push(TccgEntry::new(
            i + 5,
            format!("ml_{}", i + 5),
            MachineLearning,
            *spec,
            &ml4,
        ));
    }

    // #9-11: AO -> MO transforms.
    let aomo = uniform("abcde", 72);
    for (i, spec) in ["abcd-ebcd-ae", "abcd-eacd-be", "abcd-abec-de"]
        .iter()
        .enumerate()
    {
        out.push(TccgEntry::new(
            i + 9,
            format!("aomo_{}", i + 1),
            AoToMo,
            *spec,
            &aomo,
        ));
    }

    // #12-30: CCSD. #12 and #20-30 are 4D = 4D×4D contractions (two
    // contracted indices); #12 is the paper's Eq. 1.
    let ccsd6 = uniform("abcdef", 64);
    out.push(TccgEntry::new(12, "ccsd_1", Ccsd, "abcd-aebf-dfce", &ccsd6));
    let ccsd_misc: [(&str, Vec<(char, usize)>); 7] = [
        // 2D output: large free dims, modest contracted dims, so the
        // direct approach still has enough thread blocks.
        (
            "ab-acd-dbc",
            vec![('a', 384), ('b', 384), ('c', 64), ('d', 64)],
        ),
        (
            "ab-cad-dcb",
            vec![('a', 384), ('b', 384), ('c', 64), ('d', 64)],
        ),
        ("abc-aefc-fbe", uniform("abcef", 64)),
        ("abc-aefb-fce", uniform("abcef", 64)),
        ("abcd-ebad-ce", uniform("abcde", 64)),
        ("abcd-bced-ae", uniform("abcde", 64)),
        ("abcd-acbe-ed", uniform("abcde", 64)),
    ];
    for (i, (spec, sizes)) in ccsd_misc.iter().enumerate() {
        out.push(TccgEntry::new(
            13 + i,
            format!("ccsd_{}", i + 2),
            Ccsd,
            *spec,
            sizes,
        ));
    }
    for (i, spec) in [
        "abcd-aebf-cfde",
        "abcd-aefb-fdce",
        "abcd-eafb-fdec",
        "abcd-aebf-dfec",
        "abcd-eafb-dcfe",
        "abcd-efab-cdfe",
        "abcd-efab-fecd",
        "abcd-aebf-cedf",
        "abcd-beaf-dfce",
        "abcd-ebaf-fdce",
        "abcd-eafd-fbec",
    ]
    .iter()
    .enumerate()
    {
        out.push(TccgEntry::new(
            20 + i,
            format!("ccsd_{}", i + 9),
            Ccsd,
            *spec,
            &ccsd6,
        ));
    }

    // #31-48: CCSD(T).
    out.extend(sd1_entries());
    out.extend(sd2_entries());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogent_ir::ContractionAnalysis;

    #[test]
    fn suite_has_48_entries_in_figure_order() {
        let s = suite();
        assert_eq!(s.len(), 48);
        for (i, e) in s.iter().enumerate() {
            assert_eq!(e.id, i + 1, "{e}");
        }
    }

    #[test]
    fn every_entry_parses_and_is_covered() {
        for e in suite() {
            let tc = e.contraction();
            let sizes = e.sizes();
            assert!(sizes.covers(&tc), "{e} missing extents");
            assert!(e.flops() > 0);
        }
    }

    #[test]
    fn specs_are_unique() {
        let s = suite();
        let mut specs: Vec<&str> = s.iter().map(|e| e.spec.as_str()).collect();
        specs.sort_unstable();
        specs.dedup();
        assert_eq!(specs.len(), 48, "duplicate specs in the suite");
    }

    #[test]
    fn group_boundaries_match_the_paper() {
        let s = suite();
        assert!(s[..8]
            .iter()
            .all(|e| e.group == BenchGroup::MachineLearning));
        assert!(s[8..11].iter().all(|e| e.group == BenchGroup::AoToMo));
        assert!(s[11..30].iter().all(|e| e.group == BenchGroup::Ccsd));
        assert!(s[30..].iter().all(|e| e.group == BenchGroup::CcsdT));
    }

    #[test]
    fn sd2_1_is_the_paper_benchmark() {
        let sd2 = sd2_entries();
        assert_eq!(sd2.len(), 9);
        assert_eq!(sd2[0].name, "sd2_1");
        assert_eq!(sd2[0].spec, "abcdef-gdab-efgc");
        assert_eq!(sd2[0].id, 40);
    }

    #[test]
    fn sd1_1_matches_nwchem_layout() {
        // t3(h3,h2,h1,p6,p5,p4) += t2(h7,p4,p5,h1) * v2(h3,h2,p6,h7)
        // → abcdef-gfec-abdg.
        let sd1 = sd1_entries();
        assert_eq!(sd1.len(), 9);
        assert_eq!(sd1[0].spec, "abcdef-gfec-abdg");
        assert_eq!(sd1[0].id, 31);
    }

    #[test]
    fn ccsdt_entries_are_6d_with_one_contraction_index() {
        for e in suite().iter().filter(|e| e.group == BenchGroup::CcsdT) {
            let tc = e.contraction();
            assert_eq!(tc.c().rank(), 6, "{e}");
            assert_eq!(tc.a().rank(), 4, "{e}");
            assert_eq!(tc.b().rank(), 4, "{e}");
            assert_eq!(tc.internal_indices().len(), 1, "{e}");
        }
    }

    #[test]
    fn ccsd_4d_entries_have_two_contraction_indices() {
        let s = suite();
        for id in std::iter::once(12).chain(20..=30) {
            let e = &s[id - 1];
            let tc = e.contraction();
            assert_eq!(tc.c().rank(), 4, "{e}");
            assert_eq!(tc.internal_indices().len(), 2, "{e}");
        }
    }

    #[test]
    fn eq1_is_entry_12() {
        assert_eq!(suite()[11].spec, "abcd-aebf-dfce");
    }

    #[test]
    fn reuse_partition_holds_for_all_entries() {
        // The domain property COGENT depends on: each index in exactly two
        // tensors (validated by Contraction::new) and the classifier
        // partitions the index set.
        for e in suite() {
            let tc = e.contraction();
            let an = ContractionAnalysis::new(&tc);
            assert_eq!(
                an.externals_a().len() + an.externals_b().len() + an.internals().len(),
                tc.num_indices(),
                "{e}"
            );
        }
    }

    #[test]
    fn ccsdt_sizes_distinguish_occupied_virtual() {
        let sd1 = &sd1_entries()[0];
        let sizes = sd1.sizes();
        assert_eq!(sizes.extent("a"), Some(16));
        assert_eq!(sizes.extent("d"), Some(24));
        assert_eq!(sizes.extent("g"), Some(16));
        let sd2 = &sd2_entries()[0];
        assert_eq!(sd2.sizes().extent("g"), Some(24));
    }

    #[test]
    fn find_by_name() {
        assert_eq!(find("sd2_1").unwrap().id, 40);
        assert_eq!(find("ccsd_1").unwrap().spec, "abcd-aebf-dfce");
        assert!(find("nope").is_none());
    }

    #[test]
    fn ccsdt_has_low_arithmetic_intensity() {
        // The CCSD(T) group's intensity is bounded by ~2·N_g (one
        // contraction index); the fat 4D CCSD entries are far higher.
        let sd2 = find("sd2_1").unwrap();
        let fat = find("ccsd_9").unwrap();
        assert!(sd2.arithmetic_intensity() < fat.arithmetic_intensity() / 10.0);
    }

    #[test]
    fn display_format() {
        let e = &suite()[39];
        let s = e.to_string();
        assert!(s.contains("#40"));
        assert!(s.contains("sd2_1"));
        assert!(s.contains("CCSD(T)"));
    }
}
