//! The TCCG tensor contraction benchmark suite (reconstructed).
//!
//! The paper evaluates on the 48 contractions of the TCCG benchmark
//! (Springer & Bientinesi), grouped as:
//!
//! * **#1–8** — tensor-matrix multiplications representing machine-learning
//!   computations;
//! * **#9–11** — two-electron integral transformations from an atomic- to a
//!   molecular-orbital basis;
//! * **#12–30** — 19 contractions from the CCSD coupled-cluster method;
//! * **#31–48** — 18 contractions from the CCSD(T) method (the SD1 and SD2
//!   families of NWChem's triples kernels).
//!
//! The original benchmark file is not available offline, so this module
//! *reconstructs* the suite: the group structure, tensor dimensionalities,
//! contraction-index counts and representative extents follow the paper and
//! the public structure of the TCCG/NWChem kernels. Anchors that the paper
//! states explicitly are reproduced exactly — e.g. SD2_1 is
//! `abcdef-gdab-efgc` (Fig. 8), and Eq. 1 (`abcd-aebf-dfce`) appears among
//! the 4D=4D×4D CCSD contractions. See `DESIGN.md` for the substitution
//! rationale.
//!
//! # Examples
//!
//! ```
//! let suite = cogent_tccg::suite();
//! assert_eq!(suite.len(), 48);
//! let sd2_1 = suite.iter().find(|e| e.name == "sd2_1").unwrap();
//! assert_eq!(sd2_1.spec, "abcdef-gdab-efgc");
//! ```

pub mod suite;

pub use suite::{find, sd1_entries, sd2_entries, suite, BenchGroup, TccgEntry};
