//! Benchmarks the Algorithm 3 cost model: it must be cheap enough to rank
//! thousands of surviving configurations in negligible time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cogent_core::cost::{paper_transaction_cost, transaction_cost};
use cogent_core::KernelConfig;
use cogent_gpu_model::{GpuDevice, Precision};
use cogent_ir::{Contraction, SizeMap};

fn setup() -> (Contraction, SizeMap, KernelConfig, GpuDevice) {
    let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
    let sizes = SizeMap::uniform(&tc, 48);
    let cfg = KernelConfig {
        tbx: vec![("a".into(), 16)],
        regx: vec![("b".into(), 4)],
        tby: vec![("d".into(), 16)],
        regy: vec![("c".into(), 4)],
        tbk: vec![("e".into(), 8), ("f".into(), 2)],
    };
    (tc, sizes, cfg, GpuDevice::v100())
}

fn bench_cost(c: &mut Criterion) {
    let (tc, sizes, cfg, device) = setup();
    c.bench_function("transaction_cost_hw", |b| {
        b.iter(|| transaction_cost(black_box(&tc), &cfg, &sizes, &device, Precision::F64))
    });
    c.bench_function("transaction_cost_paper", |b| {
        b.iter(|| paper_transaction_cost(black_box(&tc), &cfg, &sizes))
    });
}

criterion_group!(benches, bench_cost);
criterion_main!(benches);
