//! Benchmarks end-to-end kernel generation (`Cogent::generate`) and the
//! CUDA emission step alone.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cogent_core::codegen::emit_source;
use cogent_core::Cogent;
use cogent_gpu_model::Precision;
use cogent_ir::{Contraction, SizeMap};

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("cogent_generate");
    group.sample_size(10);
    for (name, spec, n) in [
        ("eq1_4d", "abcd-aebf-dfce", 48usize),
        ("sd2_1_6d", "abcdef-gdab-efgc", 20),
    ] {
        let tc: Contraction = spec.parse().unwrap();
        let sizes = SizeMap::uniform(&tc, n);
        let cogent = Cogent::new();
        group.bench_function(name, |b| {
            b.iter(|| cogent.generate(black_box(&tc), &sizes).unwrap())
        });
    }
    group.finish();
}

fn bench_emit(c: &mut Criterion) {
    let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
    let sizes = SizeMap::uniform(&tc, 48);
    let generated = Cogent::new().generate(&tc, &sizes).unwrap();
    c.bench_function("emit_cuda_source", |b| {
        b.iter(|| emit_source(black_box(&generated.plan), Precision::F64))
    });
}

criterion_group!(benches, bench_generate, bench_emit);
criterion_main!(benches);
