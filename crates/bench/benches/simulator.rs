//! Benchmarks the virtual GPU: functional plan execution and the
//! transaction tracer (the per-candidate cost of the TC-like autotuner).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cogent_gpu_model::{GpuDevice, Precision};
use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
use cogent_gpu_sim::trace::{trace_transactions, TraceOptions};
use cogent_gpu_sim::{execute_plan, simulate};
use cogent_ir::{Contraction, SizeMap};
use cogent_tensor::reference::random_inputs;

fn eq1_plan(n: usize) -> KernelPlan {
    let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
    KernelPlan::new(
        &tc,
        vec![
            IndexBinding::new("a", n, 8.min(n), MapDim::ThreadX),
            IndexBinding::new("b", n, 4.min(n), MapDim::RegX),
            IndexBinding::new("c", n, 8.min(n), MapDim::ThreadY),
            IndexBinding::new("d", n, 4.min(n), MapDim::RegY),
            IndexBinding::new("e", n, 4.min(n), MapDim::SerialK),
            IndexBinding::new("f", n, 2.min(n), MapDim::SerialK),
        ],
    )
    .unwrap()
}

fn bench_execute(c: &mut Criterion) {
    let plan = eq1_plan(12);
    let tc = plan.contraction().clone();
    let sizes = SizeMap::uniform(&tc, 12);
    let (a, b) = random_inputs::<f64>(&tc, &sizes, 7);
    c.bench_function("execute_plan_12^6", |bch| {
        bch.iter(|| execute_plan(black_box(&plan), &a, &b))
    });
}

fn bench_trace_and_simulate(c: &mut Criterion) {
    let plan = eq1_plan(48);
    let device = GpuDevice::v100();
    c.bench_function("trace_sampled_48^6", |b| {
        b.iter(|| {
            trace_transactions(
                black_box(&plan),
                &device,
                Precision::F64,
                TraceOptions::default(),
            )
        })
    });
    c.bench_function("simulate_48^6", |b| {
        b.iter(|| simulate(black_box(&plan), &device, Precision::F64))
    });
}

criterion_group!(benches, bench_execute, bench_trace_and_simulate);
criterion_main!(benches);
