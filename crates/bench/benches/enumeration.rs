//! Benchmarks the configuration enumeration and the full model-driven
//! search — the "code generation time" axis on which the paper contrasts
//! COGENT (seconds) with autotuners (hours).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cogent_core::enumerate::{enumerate_configs, EnumerationOptions};
use cogent_core::select::{search, SearchOptions};
use cogent_gpu_model::{GpuDevice, Precision};
use cogent_ir::{Contraction, SizeMap};

fn bench_enumeration(c: &mut Criterion) {
    let cases = [
        ("matmul", "ij-ik-kj", 1024usize),
        ("eq1_4d", "abcd-aebf-dfce", 48),
        ("sd2_1_6d", "abcdef-gdab-efgc", 20),
    ];
    let mut group = c.benchmark_group("enumerate_configs");
    for (name, spec, n) in cases {
        let tc: Contraction = spec.parse().unwrap();
        let sizes = SizeMap::uniform(&tc, n);
        let opts = EnumerationOptions::default();
        group.bench_function(name, |b| {
            b.iter(|| enumerate_configs(black_box(&tc), black_box(&sizes), &opts))
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let cases = [
        ("eq1_4d", "abcd-aebf-dfce", 48usize),
        ("sd2_1_6d", "abcdef-gdab-efgc", 20),
    ];
    let device = GpuDevice::v100();
    let mut group = c.benchmark_group("model_driven_search");
    group.sample_size(20);
    for (name, spec, n) in cases {
        let tc: Contraction = spec.parse().unwrap();
        let sizes = SizeMap::uniform(&tc, n);
        let opts = SearchOptions::default();
        group.bench_function(name, |b| {
            b.iter(|| search(black_box(&tc), &sizes, &device, Precision::F64, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration, bench_search);
criterion_main!(benches);
