//! Benchmarks the host-side numeric substrate: permutation, GEMM, the
//! reference contraction and the TTGT pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cogent_ir::{Contraction, SizeMap};
use cogent_tensor::gemm::gemm;
use cogent_tensor::gett::GettPlan;
use cogent_tensor::permute::permute;
use cogent_tensor::reference::{contract_reference, random_inputs};
use cogent_tensor::ttgt::TtgtPlan;
use cogent_tensor::DenseTensor;

fn bench_permute(c: &mut Criterion) {
    let t = DenseTensor::<f64>::random(&[64, 32, 16, 8], 1);
    c.bench_function("permute_4d_fvi_change", |b| {
        b.iter(|| permute(black_box(&t), &[3, 2, 1, 0]))
    });
    c.bench_function("permute_4d_fvi_keep", |b| {
        b.iter(|| permute(black_box(&t), &[0, 3, 2, 1]))
    });
}

fn bench_gemm(c: &mut Criterion) {
    let (m, n, k) = (128, 128, 128);
    let a = DenseTensor::<f64>::random(&[m, k], 2);
    let bm = DenseTensor::<f64>::random(&[k, n], 3);
    c.bench_function("gemm_128", |b| {
        b.iter(|| {
            let mut out = vec![0.0f64; m * n];
            gemm(m, n, k, a.as_slice(), bm.as_slice(), &mut out);
            out
        })
    });
}

fn bench_contraction_paths(c: &mut Criterion) {
    let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
    let sizes = SizeMap::uniform(&tc, 8);
    let (a, b) = random_inputs::<f64>(&tc, &sizes, 4);
    let plan = TtgtPlan::new(&tc, &sizes);
    c.bench_function("reference_contraction_8^6", |bch| {
        bch.iter(|| contract_reference(black_box(&tc), &sizes, &a, &b))
    });
    c.bench_function("ttgt_host_8^6", |bch| {
        bch.iter(|| plan.execute(black_box(&a), &b))
    });
    let gett = GettPlan::new(&tc, &sizes);
    c.bench_function("gett_host_8^6", |bch| {
        bch.iter(|| gett.execute(black_box(&a), &b))
    });
}

criterion_group!(benches, bench_permute, bench_gemm, bench_contraction_paths);
criterion_main!(benches);
