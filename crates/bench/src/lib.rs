//! Shared harness utilities for the figure-regeneration binaries.
//!
//! The binaries in `src/bin/` regenerate the paper's evaluation:
//!
//! | Binary          | Reproduces |
//! |-----------------|------------|
//! | `fig4_5`        | Figs. 4–5: COGENT vs NWChem-gen vs TAL_SH on the 48 TCCG benchmarks (FP64), P100/V100 |
//! | `fig6_7`        | Figs. 6–7: COGENT vs Tensor Comprehensions (tuned/untuned) on the SD2 subset (FP32) |
//! | `fig8`          | Fig. 8: TC best-so-far GFLOPS vs autotuning iterations on SD2_1 |
//! | `pruning_stats` | §IV statistics: raw space size, enumerated/pruned counts |

use std::path::Path;
use std::time::Instant;

use cogent_baselines::{measure_cogent, Measurement, NwchemLikeGenerator, TtgtEngine};
use cogent_gpu_model::{GpuDevice, Precision};
use cogent_obs::json::Json;
use cogent_tccg::TccgEntry;

/// Geometric mean of positive values. Returns `NaN` for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / n as f64).exp()
}

/// Parses `--device p100|v100` from an argument list (defaults to V100).
pub fn parse_device(args: &[String]) -> GpuDevice {
    match args
        .iter()
        .position(|a| a == "--device")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("p100") => GpuDevice::p100(),
        Some("v100") | None => GpuDevice::v100(),
        Some(other) => {
            eprintln!("unknown device {other:?}, using v100");
            GpuDevice::v100()
        }
    }
}

/// Whether a `--quick` flag is present (binaries shrink their workloads).
pub fn quick_mode(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quick")
}

/// Returns the value following `flag`, if present.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Writes a JSON document (plus trailing newline) to `path`, creating
/// parent directories as needed — the one writer every `results/*.json`
/// emitter shares.
pub fn write_json_report(path: &str, report: &Json) -> std::io::Result<()> {
    if let Some(dir) = Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut text = String::new();
    report.write(&mut text);
    text.push('\n');
    std::fs::write(path, text)
}

/// One row of the Fig. 4/5 comparison.
#[derive(Debug, Clone)]
pub struct Fig45Row {
    /// The benchmark.
    pub entry: TccgEntry,
    /// COGENT's simulated GFLOPS.
    pub cogent: Measurement,
    /// The NWChem-like generator's simulated GFLOPS.
    pub nwchem: Measurement,
    /// The TAL_SH-like TTGT engine's simulated GFLOPS.
    pub talsh: Measurement,
    /// Seconds COGENT spent generating (search + lowering + simulation).
    pub generation_s: f64,
}

/// Runs `f` under a [`cogent_obs::Capture`] and publishes the resulting
/// pipeline trace to the global registry under `label`. A no-op wrapper
/// while tracing is disabled.
pub fn with_published_trace<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let capture = cogent_obs::Capture::start(label);
    let value = f();
    if let Some(trace) = capture.finish() {
        cogent_obs::registry::publish(label, trace);
    }
    value
}

/// Drains the trace registry and writes one JSON object per line
/// (`{"label": ..., "trace": {...}}`) to `path`, creating parent
/// directories as needed. Returns how many traces were written; writes
/// nothing (and leaves any existing file alone) when the registry is
/// empty.
pub fn write_trace_jsonl(path: &Path) -> std::io::Result<usize> {
    let traces = cogent_obs::registry::drain();
    if traces.is_empty() {
        return Ok(0);
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut out = String::new();
    let count = traces.len();
    for (label, trace) in traces {
        let line = Json::Object(vec![
            ("label".to_string(), Json::Str(label)),
            ("trace".to_string(), trace.to_json()),
        ]);
        line.write(&mut out);
        out.push('\n');
    }
    std::fs::write(path, out)?;
    Ok(count)
}

/// Runs the three FP64 frameworks of Figs. 4–5 on one benchmark.
pub fn run_fig45_entry(entry: &TccgEntry, device: &GpuDevice) -> Fig45Row {
    let tc = entry.contraction();
    let sizes = entry.sizes();
    let start = Instant::now();
    let cogent = with_published_trace(&entry.name, || {
        measure_cogent(&tc, &sizes, device, Precision::F64)
    });
    let generation_s = start.elapsed().as_secs_f64();
    let nwchem = NwchemLikeGenerator::new().measure(&tc, &sizes, device, Precision::F64);
    let talsh = TtgtEngine::new().measure(&tc, &sizes, device, Precision::F64);
    Fig45Row {
        entry: entry.clone(),
        cogent,
        nwchem,
        talsh,
        generation_s,
    }
}

/// Formats a GFLOPS column.
pub fn fmt_gflops(m: &Measurement) -> String {
    format!("{:9.1}", m.gflops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn parse_device_flags() {
        let p = parse_device(&["--device".into(), "p100".into()]);
        assert_eq!(p.sm_count, 56);
        let v = parse_device(&[]);
        assert_eq!(v.sm_count, 80);
    }

    #[test]
    fn quick_flag() {
        assert!(quick_mode(&["--quick".into()]));
        assert!(!quick_mode(&[]));
    }

    #[test]
    fn published_traces_written_as_jsonl() {
        cogent_obs::set_enabled(true);
        let value = with_published_trace("jsonl_test", || {
            cogent_obs::counter("test.touched", 1);
            42
        });
        cogent_obs::set_enabled(false);
        assert_eq!(value, 42);

        let path = std::env::temp_dir().join("cogent_bench_trace_test.jsonl");
        let written = write_trace_jsonl(&path).unwrap();
        assert!(written >= 1);
        let text = std::fs::read_to_string(&path).unwrap();
        // Concurrent tests may publish too; every line must parse and
        // ours must be among them.
        let mut found = false;
        for line in text.lines() {
            let json = Json::parse(line).unwrap();
            if json.get("label").and_then(Json::as_str) == Some("jsonl_test") {
                assert!(json.get("trace").and_then(|t| t.get("root")).is_some());
                found = true;
            }
        }
        assert!(found, "published trace missing from {text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_json_report_creates_directories() {
        let dir = std::env::temp_dir().join("cogent_bench_json_report");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/report.json");
        let path_s = path.to_str().unwrap();
        let report = Json::obj([("answer", Json::from(42u64))]);
        write_json_report(path_s, &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"answer\":42}\n");
        assert_eq!(Json::parse(text.trim()).unwrap(), report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fig45_row_runs_one_entry() {
        let entry = &cogent_tccg::suite()[11]; // Eq. 1
        let row = run_fig45_entry(entry, &GpuDevice::v100());
        assert!(row.cogent.gflops > 0.0);
        assert!(row.nwchem.gflops > 0.0);
        assert!(row.talsh.gflops > 0.0);
        assert!(row.generation_s > 0.0);
    }
}
