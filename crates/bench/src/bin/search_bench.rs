//! End-to-end benchmark of the search-performance layer: sweeps the TCCG
//! suite five ways — serial search, `COGENT_THREADS`-style parallel
//! search via `Cogent::generate_many`, a warm `KernelCache`, a traced
//! serial sweep feeding the phase profiler, and a thread-scaling pass at
//! `COGENT_THREADS ∈ {1, 2, 4}` — and verifies the emitted sources *and*
//! `SearchOutcome`s are byte-identical across all untraced paths before
//! reporting any speedup. The profiled pass lands in the report as
//! `phase_breakdown` (`cogent.profile.v1`): the per-phase self-time
//! attribution of the cold path. Scaling speedups are reported honestly:
//! `cores_visible` is recorded alongside, and on a single-core host the
//! ratios legitimately sit at or below 1.
//!
//! Usage: `cargo run --release -p cogent-bench --bin search_bench
//! [--quick] [--threads N] [--out FILE]`
//!
//! Writes `results/search_bench.json` (override with `--out`) with
//! per-entry cold/warm timings, sweep totals, and the two headline
//! ratios: `speedup_warm` (cold search vs cached lookup, same thread) and
//! `speedup_parallel` (N-thread sweep vs serial sweep — bounded by the
//! machine's available parallelism, which is recorded alongside).

use std::sync::Arc;
use std::time::Instant;

use cogent_bench::{flag_value, quick_mode, write_json_report};
use cogent_core::select::SearchOptions;
use cogent_core::{Cogent, KernelCache};
use cogent_ir::{Contraction, SizeMap};
use cogent_obs::json::Json;
use cogent_tccg::suite;

fn generator_with_threads(threads: usize) -> Cogent {
    Cogent::new().search_options(SearchOptions {
        threads,
        ..SearchOptions::default()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: usize = flag_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let out_path = flag_value(&args, "--out")
        .unwrap_or("results/search_bench.json")
        .to_string();

    let entries = suite();
    let entries: Vec<_> = if quick_mode(&args) {
        entries.into_iter().step_by(8).collect()
    } else {
        entries
    };
    let jobs: Vec<(Contraction, SizeMap)> = entries
        .iter()
        .map(|e| (e.contraction(), e.sizes()))
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "search_bench: {} TCCG entries | {} worker thread(s) | {} core(s) visible",
        entries.len(),
        threads,
        cores
    );

    // Pass 1: serial sweep, one generate per entry, timed individually.
    let serial_gen = generator_with_threads(1);
    let mut cold_ms: Vec<f64> = Vec::with_capacity(jobs.len());
    let mut serial_kernels = Vec::with_capacity(jobs.len());
    let serial_started = Instant::now();
    for (tc, sizes) in &jobs {
        let t0 = Instant::now();
        let kernel = serial_gen
            .generate(tc, sizes)
            .unwrap_or_else(|e| panic!("serial generate failed for {tc}: {e}"));
        cold_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        serial_kernels.push(kernel);
    }
    let serial_total_s = serial_started.elapsed().as_secs_f64();
    println!("serial sweep:      {serial_total_s:.2}s");

    // Pass 2: parallel sweep through generate_many (shared thread pool).
    let parallel_gen = generator_with_threads(threads);
    let parallel_started = Instant::now();
    let parallel_kernels: Vec<_> = parallel_gen
        .generate_many(&jobs)
        .into_iter()
        .zip(&entries)
        .map(|(r, e)| {
            r.unwrap_or_else(|err| panic!("parallel generate failed for {}: {err}", e.name))
        })
        .collect();
    let parallel_total_s = parallel_started.elapsed().as_secs_f64();
    println!("parallel sweep:    {parallel_total_s:.2}s ({threads} threads)");

    // Pass 3: warm cache. Fill it cold, then time the all-hits pass. One
    // shard sized to the suite, so retention is exact (no hash-skew
    // evictions) and every warm lookup must hit.
    let cache = Arc::new(KernelCache::with_shards(jobs.len().max(1), 1));
    let cached_gen = generator_with_threads(1).cache(Arc::clone(&cache));
    for (tc, sizes) in &jobs {
        cached_gen
            .generate(tc, sizes)
            .unwrap_or_else(|e| panic!("cache-fill generate failed for {tc}: {e}"));
    }
    let mut warm_ms: Vec<f64> = Vec::with_capacity(jobs.len());
    let mut warm_kernels = Vec::with_capacity(jobs.len());
    let warm_started = Instant::now();
    for (tc, sizes) in &jobs {
        let t0 = Instant::now();
        let kernel = cached_gen
            .generate(tc, sizes)
            .unwrap_or_else(|e| panic!("warm generate failed for {tc}: {e}"));
        warm_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        warm_kernels.push(kernel);
    }
    let warm_total_s = warm_started.elapsed().as_secs_f64();
    let stats = cache.stats();
    assert_eq!(
        stats.hits as usize,
        jobs.len(),
        "warm pass must hit on every entry (stats: {stats:?})"
    );

    // Pass 4: profiled cold sweep. Tracing on, no cache — the phase
    // profiler attributes every entry's cold wall time to the pipeline
    // phases, answering *where* the ~serial cold cost goes before anyone
    // optimizes it.
    let profiled_gen = generator_with_threads(1);
    let was_enabled = cogent_obs::enabled();
    cogent_obs::set_enabled(true);
    let mut breakdown: Option<cogent_obs::profile::PhaseProfile> = None;
    let profiled_started = Instant::now();
    for (tc, sizes) in &jobs {
        let kernel = profiled_gen
            .generate(tc, sizes)
            .unwrap_or_else(|e| panic!("profiled generate failed for {tc}: {e}"));
        let trace = kernel.trace.expect("tracing enabled: trace attached");
        let profile = cogent_obs::profile::PhaseProfile::from_trace(&trace);
        match breakdown.as_mut() {
            Some(acc) => acc.merge(&profile),
            None => breakdown = Some(profile),
        }
    }
    let profiled_total_s = profiled_started.elapsed().as_secs_f64();
    cogent_obs::set_enabled(was_enabled);
    let breakdown = breakdown.expect("the suite is never empty");
    println!(
        "profiled sweep:    {profiled_total_s:.2}s (tracing on, coverage {:.1}%)",
        breakdown.coverage() * 100.0
    );

    // Pass 5: thread-scaling sweep, the `COGENT_THREADS ∈ {1, 2, 4}`
    // ladder. Each setting re-runs the whole suite cold and must
    // reproduce the serial pass's search outcomes and sources byte for
    // byte — determinism across thread counts is the contract that makes
    // the parallel path deployable at all. Speedups are recorded against
    // the serial sweep without massaging: on a host showing fewer cores
    // than workers the ratio honestly drops to or below 1
    // (`cores_visible` in the report is the denominator that explains it).
    let mut scaling_rows = Vec::new();
    for scale_threads in [1usize, 2, 4] {
        let gen = generator_with_threads(scale_threads);
        let started = Instant::now();
        let kernels: Vec<_> = gen
            .generate_many(&jobs)
            .into_iter()
            .zip(&entries)
            .map(|(r, e)| {
                r.unwrap_or_else(|err| panic!("scaling generate failed for {}: {err}", e.name))
            })
            .collect();
        let total_s = started.elapsed().as_secs_f64();
        for (kernel, serial) in kernels.iter().zip(&serial_kernels) {
            assert_eq!(
                kernel.search, serial.search,
                "SearchOutcome diverged at {scale_threads} threads"
            );
            assert_eq!(
                kernel.cuda_source, serial.cuda_source,
                "CUDA source diverged at {scale_threads} threads"
            );
            assert_eq!(
                kernel.opencl_source, serial.opencl_source,
                "OpenCL source diverged at {scale_threads} threads"
            );
        }
        let speedup = serial_total_s / total_s.max(1e-12);
        println!(
            "scaling sweep:     {total_s:.2}s at {scale_threads} thread(s) \
             ({speedup:.2}x vs serial, {cores} core(s) visible)"
        );
        scaling_rows.push(Json::obj([
            ("threads", Json::from(scale_threads)),
            ("total_s", Json::Float(total_s)),
            ("speedup_vs_serial", Json::Float(speedup)),
            ("byte_identical", Json::from(true)),
        ]));
    }

    // Correctness gate: all three paths emit byte-identical sources.
    let mut rows = Vec::with_capacity(entries.len());
    let mut all_identical = true;
    for (i, entry) in entries.iter().enumerate() {
        let identical = serial_kernels[i].cuda_source == parallel_kernels[i].cuda_source
            && serial_kernels[i].cuda_source == warm_kernels[i].cuda_source
            && serial_kernels[i].opencl_source == parallel_kernels[i].opencl_source
            && serial_kernels[i].opencl_source == warm_kernels[i].opencl_source;
        if !identical {
            all_identical = false;
            eprintln!(
                "MISMATCH: {} emits different sources across paths",
                entry.name
            );
        }
        rows.push(Json::obj([
            ("name", Json::from(entry.name.clone())),
            ("spec", Json::from(entry.spec.clone())),
            ("cold_ms", Json::Float(cold_ms[i])),
            ("warm_ms", Json::Float(warm_ms[i])),
            (
                "warm_speedup",
                Json::Float(cold_ms[i] / warm_ms[i].max(1e-9)),
            ),
            ("byte_identical", Json::from(identical)),
        ]));
    }
    assert!(all_identical, "serial/parallel/cached sources diverged");

    let cold_total_s: f64 = cold_ms.iter().sum::<f64>() / 1e3;
    let speedup_warm = cold_total_s / warm_total_s.max(1e-12);
    let speedup_parallel = serial_total_s / parallel_total_s.max(1e-12);
    println!("warm-cache sweep:  {warm_total_s:.4}s ({speedup_warm:.0}x vs cold)");
    println!("parallel speedup:  {speedup_parallel:.2}x (on {cores} core(s))");

    let report = Json::obj([
        ("suite_entries", Json::from(entries.len())),
        ("threads", Json::from(threads)),
        ("cores_visible", Json::from(cores)),
        ("serial_total_s", Json::Float(serial_total_s)),
        ("parallel_total_s", Json::Float(parallel_total_s)),
        ("cold_total_s", Json::Float(cold_total_s)),
        ("warm_total_s", Json::Float(warm_total_s)),
        ("speedup_parallel", Json::Float(speedup_parallel)),
        ("speedup_warm", Json::Float(speedup_warm)),
        (
            "note",
            Json::from(
                "speedup_parallel is bounded by cores_visible; on a single-core host \
                 4 worker threads time-slice one CPU and the ratio drops below 1",
            ),
        ),
        ("byte_identical", Json::from(all_identical)),
        // COGENT_THREADS ladder: wall time and honest speedup per thread
        // count, each verified byte-identical to the serial pass.
        ("scaling", Json::Array(scaling_rows)),
        ("instrumented_total_s", Json::Float(profiled_total_s)),
        // Per-phase cold-path attribution (cogent.profile.v1), merged
        // over every suite entry's traced cold run.
        ("phase_breakdown", breakdown.to_json()),
        (
            "cache",
            Json::obj([
                ("capacity", Json::from(stats.capacity)),
                ("hits", Json::from(stats.hits)),
                ("misses", Json::from(stats.misses)),
                ("evictions", Json::from(stats.evictions)),
            ]),
        ),
        ("entries", Json::Array(rows)),
    ]);
    write_json_report(&out_path, &report).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
