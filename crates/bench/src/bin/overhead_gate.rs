//! Observability overhead probe: times the cold generation path with
//! tracing *disabled* and reports a `cogent.overhead.v1` JSON document.
//!
//! Run twice — once compiled normally ("instrumented": every span/counter
//! call site present but gated off by the atomic flag) and once with the
//! `strip` feature ("stripped": `cogent_obs::STRIPPED` makes `enabled()`
//! a compile-time `false`, so the instrumentation folds away entirely).
//! `tools/overhead_diff` then compares the two reports and fails CI when
//! the dormant instrumentation costs more than a fixed ratio of the
//! stripped path:
//!
//! ```text
//! cargo run --release -p cogent-bench --bin overhead_gate --features strip \
//!     -- --out target/overhead_stripped.json
//! cargo run --release -p cogent-bench --bin overhead_gate \
//!     -- --out target/overhead_instrumented.json
//! overhead_diff target/overhead_stripped.json target/overhead_instrumented.json
//! ```
//!
//! The sweep reports the *best* of `--reps` repetitions: on a loaded CI
//! host the minimum is the measurement least polluted by scheduling
//! noise, and overhead can only make the minimum worse.

use std::time::Instant;

use cogent_bench::{flag_value, quick_mode, write_json_report};
use cogent_core::Cogent;
use cogent_ir::{Contraction, SizeMap};
use cogent_obs::json::Json;
use cogent_tccg::suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = if cogent_obs::STRIPPED {
        "stripped"
    } else {
        "instrumented"
    };
    let default_out = format!("target/overhead_{mode}.json");
    let out_path = flag_value(&args, "--out")
        .unwrap_or(&default_out)
        .to_string();
    let reps: usize = flag_value(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick_mode(&args) { 2 } else { 3 })
        .max(1);

    // Every 8th suite entry: one per benchmark group region, enough work
    // (~0.4 s/sweep in release) to dwarf timer resolution while keeping
    // the doubled CI build+run affordable.
    let entries: Vec<_> = suite().into_iter().step_by(8).collect();
    let jobs: Vec<(Contraction, SizeMap)> = entries
        .iter()
        .map(|e| (e.contraction(), e.sizes()))
        .collect();

    // The gate measures the *disabled* path — the cost every ordinary
    // run pays for carrying the instrumentation, not the cost of tracing.
    assert!(
        !cogent_obs::enabled(),
        "overhead_gate must run with tracing disabled (unset {})",
        cogent_obs::TRACE_ENV_VAR
    );

    let generator = Cogent::new();
    // Untimed warmup sweep: faults in code pages and the allocator.
    for (tc, sizes) in &jobs {
        generator
            .generate(tc, sizes)
            .unwrap_or_else(|e| panic!("warmup generate failed for {tc}: {e}"));
    }

    // The flight recorder is always on in `cogent serve`, so its
    // per-request cost (timeline marks + ring push) rides inside the
    // timed loop and is bounded by the same instrumented/stripped
    // ceiling as the rest of the dormant instrumentation. Under the
    // `strip` feature the ring push compiles to a no-op.
    let recorder = cogent_obs::flight::FlightRecorder::new(256);
    let mut sweeps_s: Vec<f64> = Vec::with_capacity(reps);
    for rep in 0..reps {
        let started = Instant::now();
        for (i, (tc, sizes)) in jobs.iter().enumerate() {
            let mut timeline = cogent_obs::flight::FlightTimeline::start(
                &format!("overhead-{rep}-{i}"),
                "generate",
            );
            timeline.mark("started");
            generator
                .generate(tc, sizes)
                .unwrap_or_else(|e| panic!("timed generate failed for {tc}: {e}"));
            timeline.set_search_ns(timeline.elapsed_ns());
            recorder.record(timeline.finish(200));
        }
        sweeps_s.push(started.elapsed().as_secs_f64());
    }
    let best_sweep_s = sweeps_s.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "overhead_gate: mode {mode} | {} entries x {reps} reps | best sweep {best_sweep_s:.3}s | {} flight records",
        jobs.len(),
        recorder.recorded()
    );

    let report = Json::obj([
        ("schema", Json::from("cogent.overhead.v1")),
        ("mode", Json::from(mode)),
        ("entries", Json::from(jobs.len())),
        ("reps", Json::from(reps)),
        (
            "sweeps_s",
            Json::Array(sweeps_s.iter().map(|s| Json::Float(*s)).collect()),
        ),
        ("best_sweep_s", Json::Float(best_sweep_s)),
        (
            "per_generate_ms",
            Json::Float(best_sweep_s * 1e3 / jobs.len() as f64),
        ),
    ]);
    write_json_report(&out_path, &report).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
