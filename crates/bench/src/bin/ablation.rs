//! Ablations of COGENT's design choices, quantifying what each mechanism
//! contributes on representative benchmarks:
//!
//! * **cost-model ranking** — simulated GFLOPS of the model's #1 pick vs
//!   the median and worst surviving configurations, and vs an oracle that
//!   simulates a sample of survivors (upper bound);
//! * **pruning rules** — survivor counts and achieved GFLOPS with each
//!   performance rule disabled;
//! * **simulator refinement depth** — `refine_top` 1 vs 4 vs 16.
//!
//! Usage: `cargo run --release -p cogent-bench --bin ablation`

use cogent_core::select::{search, SearchOptions};
use cogent_core::Cogent;
use cogent_gpu_model::{GpuDevice, Precision};
use cogent_gpu_sim::simulate;
use cogent_ir::{Contraction, ContractionAnalysis, SizeMap};

fn gflops_of_rank(
    outcome: &cogent_core::SearchOutcome,
    sizes: &SizeMap,
    device: &GpuDevice,
    rank: usize,
) -> f64 {
    let r = &outcome.ranked[rank.min(outcome.ranked.len() - 1)];
    let plan = r
        .config
        .lower(&outcome.contraction, sizes)
        .expect("lowerable");
    let report = simulate(&plan, device, Precision::F64);
    let flops = ContractionAnalysis::new(&outcome.contraction).flops(sizes) as f64;
    flops / report.time.total_s / 1e9
}

fn main() {
    let device = GpuDevice::v100();
    let benches = [
        ("eq1_4d", "abcd-aebf-dfce", 48usize),
        ("sd2_1", "abcdef-gdab-efgc", 20),
        ("ttm_3d", "abc-acd-db", 152),
    ];

    println!("Ablation study on {} (FP64)\n", device);

    println!("--- cost-model ranking quality (simulated GFLOPS) ---");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>14}",
        "bench", "model #1", "median", "worst", "oracle(top64)"
    );
    for (name, spec, n) in benches {
        let tc: Contraction = spec.parse().unwrap();
        let sizes = SizeMap::uniform(&tc, n);
        let opts = SearchOptions {
            top_k: usize::MAX, // keep the full ranking for this study
            ..SearchOptions::default()
        };
        let outcome = search(&tc, &sizes, &device, Precision::F64, &opts);
        let k = outcome.ranked.len();
        let best = gflops_of_rank(&outcome, &sizes, &device, 0);
        let median = gflops_of_rank(&outcome, &sizes, &device, k / 2);
        let worst = gflops_of_rank(&outcome, &sizes, &device, k - 1);
        let oracle = (0..k.min(64))
            .map(|r| gflops_of_rank(&outcome, &sizes, &device, r))
            .fold(0.0f64, f64::max);
        println!("{name:<8} {best:>10.1} {median:>10.1} {worst:>10.1} {oracle:>14.1}");
    }

    println!("\n--- pruning-rule ablation (survivors / picked GFLOPS) ---");
    println!(
        "{:<8} {:>18} {:>18} {:>18} {:>18}",
        "bench", "all rules", "no FVI rule", "no min-blocks", "no occupancy"
    );
    for (name, spec, n) in benches {
        let tc: Contraction = spec.parse().unwrap();
        let sizes = SizeMap::uniform(&tc, n);
        let mut row = format!("{name:<8}");
        for variant in 0..4 {
            let mut opts = SearchOptions::default();
            match variant {
                1 => opts.rules.require_input_fvi_coalescing = false,
                2 => opts.rules.min_blocks_per_sm = 0.0,
                3 => opts.rules.min_occupancy = 0.0,
                _ => {}
            }
            let outcome = search(&tc, &sizes, &device, Precision::F64, &opts);
            let g = gflops_of_rank(&outcome, &sizes, &device, 0);
            row.push_str(&format!(" {:>9}/{:>8.1}", outcome.survivors, g));
        }
        println!("{row}");
    }

    println!("\n--- simulator refinement depth (picked GFLOPS / generation s) ---");
    println!(
        "{:<8} {:>16} {:>16} {:>16}",
        "bench", "refine=1", "refine=4", "refine=16"
    );
    for (name, spec, n) in benches {
        let tc: Contraction = spec.parse().unwrap();
        let sizes = SizeMap::uniform(&tc, n);
        let mut row = format!("{name:<8}");
        for k in [1usize, 4, 16] {
            let start = std::time::Instant::now();
            let g = Cogent::new().refine_top(k).generate(&tc, &sizes).unwrap();
            let elapsed = start.elapsed().as_secs_f64();
            let flops = ContractionAnalysis::new(&g.contraction).flops(&sizes) as f64;
            let gf = flops / g.report.time.total_s / 1e9;
            row.push_str(&format!(" {gf:>9.1}/{elapsed:>5.2}s"));
        }
        println!("{row}");
    }
}
