//! Regenerates the §IV search-space statistics: the raw configuration
//! space (|mapping| × |tilesize| — 3,981,312 for Eq. 1), the size of
//! COGENT's structured enumeration, and the fraction removed by the
//! hardware/performance pruning (the paper reports ≈97% pruned across the
//! evaluated benchmarks).
//!
//! Usage: `cargo run -p cogent-bench --bin pruning_stats [--quick]`

use std::time::Instant;

use cogent_bench::{quick_mode, with_published_trace};
use cogent_core::select::{search, SearchOptions};
use cogent_gpu_model::{GpuDevice, Precision};
use cogent_tccg::suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = GpuDevice::v100();
    // Per-contraction search traces (enumerate/prune/rank spans with the
    // per-rule reject counters) land in results/ as JSONL.
    cogent_obs::set_enabled(true);
    let entries = suite();
    let entries: Vec<_> = if quick_mode(&args) {
        entries.into_iter().step_by(8).collect()
    } else {
        entries
    };

    println!("COGENT search-space statistics (V100, FP64)");
    println!(
        "{:>3} {:<8} {:<22} {:>14} {:>8} {:>9} {:>8} {:>9}",
        "#", "name", "contraction", "raw space", "enum", "survive", "pruned", "time [ms]"
    );

    let mut pruned_fractions = Vec::new();
    for entry in &entries {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let start = Instant::now();
        let outcome = with_published_trace(&entry.name, || {
            search(
                &tc,
                &sizes,
                &device,
                Precision::F64,
                &SearchOptions::default(),
            )
        });
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>3} {:<8} {:<22} {:>14} {:>8} {:>9} {:>7.1}% {:>9.2}",
            entry.id,
            entry.name,
            entry.spec,
            outcome.raw_space,
            outcome.enumerated,
            outcome.survivors,
            outcome.pruned_fraction() * 100.0,
            elapsed,
        );
        pruned_fractions.push(outcome.pruned_fraction());
    }

    let avg = pruned_fractions.iter().sum::<f64>() / pruned_fractions.len() as f64;
    println!(
        "\naverage pruned fraction: {:.1}% (paper: ~97% of configurations pruned before cost evaluation)",
        avg * 100.0
    );

    // The paper's worked example.
    let eq1 = &suite()[11];
    let outcome = search(
        &eq1.contraction(),
        &eq1.sizes(),
        &device,
        Precision::F64,
        &SearchOptions::default(),
    );
    println!(
        "Eq. 1 ({}): raw space {} (paper: 3,981,312), structured enumeration {}, cost model evaluated {} survivors",
        eq1.spec, outcome.raw_space, outcome.enumerated, outcome.survivors
    );

    let trace_path = std::path::Path::new("results/pruning_stats_traces.jsonl");
    match cogent_bench::write_trace_jsonl(trace_path) {
        Ok(n) if n > 0 => println!("wrote {n} search traces to {}", trace_path.display()),
        Ok(_) => {}
        Err(e) => eprintln!("could not write {}: {e}", trace_path.display()),
    }
}
