//! Regenerates Fig. 4 (P100) / Fig. 5 (V100): double-precision GFLOPS of
//! COGENT, the NWChem-like code generator and the TAL_SH-like TTGT engine
//! on all 48 TCCG benchmarks, followed by the paper's headline geometric
//! means.
//!
//! Usage: `cargo run -p cogent-bench --bin fig4_5 -- --device v100`

use cogent_bench::{fmt_gflops, geomean, parse_device, quick_mode, run_fig45_entry};
use cogent_tccg::{suite, BenchGroup};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = parse_device(&args);
    // Per-benchmark pipeline traces land next to the printed table as
    // JSON lines (results/fig4_5_traces.jsonl).
    cogent_obs::set_enabled(true);
    let entries = suite();
    let entries: Vec<_> = if quick_mode(&args) {
        entries.into_iter().step_by(6).collect()
    } else {
        entries
    };

    println!(
        "TCCG benchmark, FP64, on {} — simulated GFLOPS (higher is better)",
        device
    );
    println!(
        "{:>3} {:<8} {:<9} {:<22} {:>9} {:>9} {:>9}  {:>8}",
        "#", "name", "group", "contraction", "COGENT", "NWChem", "TAL_SH", "gen [s]"
    );

    let mut rows = Vec::new();
    for entry in &entries {
        let row = run_fig45_entry(entry, &device);
        println!(
            "{:>3} {:<8} {:<9} {:<22} {} {} {}  {:>8.3}",
            entry.id,
            entry.name,
            entry.group.to_string(),
            entry.spec,
            fmt_gflops(&row.cogent),
            fmt_gflops(&row.nwchem),
            fmt_gflops(&row.talsh),
            row.generation_s,
        );
        rows.push(row);
    }

    let summarize = |label: &str, filter: &dyn Fn(&BenchGroup) -> bool| {
        let cg: Vec<f64> = rows
            .iter()
            .filter(|r| filter(&r.entry.group))
            .map(|r| r.cogent.gflops)
            .collect();
        if cg.is_empty() {
            return;
        }
        let nw: Vec<f64> = rows
            .iter()
            .filter(|r| filter(&r.entry.group))
            .map(|r| r.nwchem.gflops)
            .collect();
        let ts: Vec<f64> = rows
            .iter()
            .filter(|r| filter(&r.entry.group))
            .map(|r| r.talsh.gflops)
            .collect();
        println!(
            "  {label:<12} geomean GFLOPS: COGENT {:8.1}  NWChem {:8.1}  TAL_SH {:8.1}   speedup vs NWChem {:4.2}x, vs TAL_SH {:4.2}x",
            geomean(&cg),
            geomean(&nw),
            geomean(&ts),
            geomean(&cg) / geomean(&nw),
            geomean(&cg) / geomean(&ts),
        );
    };

    println!("\nSummary ({}):", device.name);
    summarize("all 48", &|_| true);
    summarize("ML", &|g| *g == BenchGroup::MachineLearning);
    summarize("AO-MO", &|g| *g == BenchGroup::AoToMo);
    summarize("CCSD", &|g| *g == BenchGroup::Ccsd);
    summarize("CCSD(T)", &|g| *g == BenchGroup::CcsdT);

    let max_nw = rows
        .iter()
        .map(|r| r.cogent.gflops / r.nwchem.gflops)
        .fold(0.0f64, f64::max);
    let max_ts = rows
        .iter()
        .map(|r| r.cogent.gflops / r.talsh.gflops)
        .fold(0.0f64, f64::max);
    println!("  max speedup: vs NWChem {max_nw:.1}x, vs TAL_SH {max_ts:.1}x");
    println!(
        "  total COGENT generation time for {} benchmarks: {:.2} s",
        rows.len(),
        rows.iter().map(|r| r.generation_s).sum::<f64>()
    );

    let trace_path = std::path::Path::new("results/fig4_5_traces.jsonl");
    match cogent_bench::write_trace_jsonl(trace_path) {
        Ok(n) if n > 0 => println!("  wrote {n} pipeline traces to {}", trace_path.display()),
        Ok(_) => {}
        Err(e) => eprintln!("could not write {}: {e}", trace_path.display()),
    }
}
