//! Regenerates Fig. 8: Tensor Comprehensions' best-so-far GFLOPS as a
//! function of the number of autotuning iterations (code versions
//! evaluated), on the SD2_1 benchmark (`abcdef-gdab-efgc`, FP32, V100),
//! with COGENT's instantly-selected configuration as the reference line.
//!
//! Usage: `cargo run --release -p cogent-bench --bin fig8 [--quick]`

use std::time::Instant;

use cogent_baselines::{measure_cogent, SearchStrategy, TcAutotuner};
use cogent_bench::quick_mode;
use cogent_gpu_model::{GpuDevice, Precision};
use cogent_tccg::sd2_entries;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = GpuDevice::v100();
    let entry = sd2_entries().into_iter().next().expect("sd2_1 exists");
    assert_eq!(entry.spec, "abcdef-gdab-efgc");
    let tc = entry.contraction();
    let sizes = entry.sizes();

    let start = Instant::now();
    let cogent = measure_cogent(&tc, &sizes, &device, Precision::F32);
    let cogent_s = start.elapsed().as_secs_f64();

    let mut tuner = TcAutotuner::new();
    if quick_mode(&args) {
        tuner.population = 20;
        tuner.generations = 5;
    }
    let start = Instant::now();
    let result = tuner.tune(&tc, &sizes, &device, Precision::F32);
    let tune_s = start.elapsed().as_secs_f64();
    let mut random = tuner.clone();
    random.strategy = SearchStrategy::Random;
    let random_result = random.tune(&tc, &sizes, &device, Precision::F32);

    println!(
        "SD2_1 ({}) on {}, FP32 — TC best-so-far GFLOPS vs code versions evaluated",
        entry.spec, device
    );
    println!("TC untuned: {:.3} GFLOPS", result.untuned.gflops);
    println!(
        "COGENT (model-driven, no tuning): {:.1} GFLOPS selected in {:.3} s",
        cogent.gflops, cogent_s
    );
    println!(
        "\n{:>10} {:>14} {:>16}",
        "versions", "GA best", "random best"
    );
    let step = (result.trace.len() / 40).max(1);
    for (point, rnd) in result.trace.iter().zip(&random_result.trace).step_by(step) {
        println!(
            "{:>10} {:>14.1} {:>16.1}",
            point.evaluations, point.gflops, rnd.gflops
        );
    }
    if let (Some(last), Some(rlast)) = (result.trace.last(), random_result.trace.last()) {
        println!(
            "{:>10} {:>14.1} {:>16.1}",
            last.evaluations, last.gflops, rlast.gflops
        );
    }
    println!(
        "\nTC evaluated {} code versions in {:.1} s (simulated); best {:.1} GFLOPS — {:.2}x {} COGENT's untuned pick",
        result.evaluations,
        tune_s,
        result.tuned.gflops,
        (result.tuned.gflops / cogent.gflops).max(cogent.gflops / result.tuned.gflops),
        if result.tuned.gflops >= cogent.gflops { "above" } else { "below" },
    );
}
