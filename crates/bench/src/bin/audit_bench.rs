//! Cost-model fidelity benchmark: audits the analytical transaction
//! model against the `gpu-sim` address tracer over the TCCG suite and
//! writes the `cogent.audit.v1` report that CI gates against.
//!
//! Usage: `cargo run --release -p cogent-bench --bin audit_bench
//! [--quick] [--top K] [--device p100|v100] [--exhaustive] [--out FILE]`
//!
//! The default output is `results/audit_baseline.json` — the checked-in
//! regression baseline. Regenerate it intentionally (after a deliberate
//! model change) by running this binary on the full suite and committing
//! the diff; `tools/bench_diff` compares fresh runs against it with
//! per-metric tolerances. `--quick` audits every 8th suite entry, which
//! is what the CI smoke uses (`bench_diff` matches entries by name, so a
//! subset still gates against the full baseline).

use std::time::Instant;

use cogent_bench::{flag_value, quick_mode, write_json_report};
use cogent_core::{audit_contraction, AuditOptions, AuditReport};
use cogent_gpu_model::Precision;
use cogent_gpu_sim::TraceOptions;
use cogent_tccg::suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let top: usize = flag_value(&args, "--top")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let out_path = flag_value(&args, "--out")
        .unwrap_or("results/audit_baseline.json")
        .to_string();
    let device = cogent_bench::parse_device(&args);

    let entries = suite();
    let entries: Vec<_> = if quick_mode(&args) {
        entries.into_iter().step_by(8).collect()
    } else {
        entries
    };
    println!(
        "audit_bench: {} TCCG entries | top {} configs each | {}",
        entries.len(),
        top,
        device,
    );

    let mut options = AuditOptions {
        top_k: top,
        ..AuditOptions::default()
    };
    if args.iter().any(|a| a == "--exhaustive") {
        options.trace = TraceOptions::exhaustive();
    }

    let started = Instant::now();
    let mut audits = Vec::with_capacity(entries.len());
    for entry in &entries {
        let tc = entry.contraction();
        let sizes = entry.sizes();
        let audit = audit_contraction(&entry.name, &tc, &sizes, &device, Precision::F64, &options)
            .unwrap_or_else(|e| panic!("auditing {} failed: {e}", entry.name));
        audits.push(audit);
    }
    let elapsed = started.elapsed();

    let report = AuditReport::from_contractions(top, audits);
    print!("{}", report.render_text());
    println!("audited in {:.2}s", elapsed.as_secs_f64());

    write_json_report(&out_path, &report.to_json())
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
