//! CPU-framework comparison (§VI of the paper: TTGT-with-HPTT vs the
//! direct GETT approach on a multicore CPU). Unlike the GPU figures these
//! are *real wall-clock measurements* of this workspace's host kernels:
//! the naive reference, the TTGT pipeline (permute + GEMM + permute) and
//! the GETT pack-based direct contraction.
//!
//! Usage: `cargo run --release -p cogent-bench --bin cpu_frameworks [--quick]`

use std::time::Instant;

use cogent_bench::quick_mode;
use cogent_ir::{Contraction, ContractionAnalysis, SizeMap};
use cogent_tensor::gett::GettPlan;
use cogent_tensor::reference::{contract_reference, random_inputs};
use cogent_tensor::ttgt::TtgtPlan;

fn time_gflops(flops: f64, mut f: impl FnMut()) -> f64 {
    // One warmup, then best of three.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    flops / best / 1e9
}

/// (name, TCCG spec, extents).
type Case = (&'static str, &'static str, Vec<(&'static str, usize)>);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shrink = if quick_mode(&args) { 2 } else { 1 };

    let cases: Vec<Case> = vec![
        (
            "matmul",
            "ij-ik-kj",
            vec![
                ("i", 256 / shrink),
                ("j", 256 / shrink),
                ("k", 256 / shrink),
            ],
        ),
        (
            "ttm_3d",
            "abc-acd-db",
            vec![
                ("a", 96 / shrink),
                ("b", 96 / shrink),
                ("c", 96 / shrink),
                ("d", 96 / shrink),
            ],
        ),
        (
            "eq1_4d",
            "abcd-aebf-dfce",
            vec![
                ("a", 24 / shrink),
                ("b", 24 / shrink),
                ("c", 24 / shrink),
                ("d", 24 / shrink),
                ("e", 24 / shrink),
                ("f", 24 / shrink),
            ],
        ),
        (
            "sd2_1",
            "abcdef-gdab-efgc",
            vec![
                ("a", 8),
                ("b", 8),
                ("c", 8),
                ("d", 12 / shrink),
                ("e", 12 / shrink),
                ("f", 12 / shrink),
                ("g", 12),
            ],
        ),
    ];

    println!("host CPU contraction kernels — measured GFLOPS (single thread)");
    println!(
        "{:<8} {:<22} {:>10} {:>10} {:>10}",
        "bench", "contraction", "reference", "TTGT", "GETT"
    );
    for (name, spec, size_pairs) in cases {
        let tc: Contraction = spec.parse().unwrap();
        let sizes = SizeMap::from_pairs(size_pairs.iter().copied());
        let flops = ContractionAnalysis::new(&tc).flops(&sizes) as f64;
        let (a, b) = random_inputs::<f64>(&tc, &sizes, 1);

        let r = time_gflops(flops, || {
            std::hint::black_box(contract_reference(&tc, &sizes, &a, &b));
        });
        let ttgt_plan = TtgtPlan::new(&tc, &sizes);
        let t = time_gflops(flops, || {
            std::hint::black_box(ttgt_plan.execute(&a, &b));
        });
        let gett_plan = GettPlan::new(&tc, &sizes);
        let g = time_gflops(flops, || {
            std::hint::black_box(gett_plan.execute(&a, &b));
        });
        println!("{name:<8} {spec:<22} {r:>10.3} {t:>10.3} {g:>10.3}");
    }
    println!("\n(the direct approaches avoid the transposition traffic the paper's §II motivates)");
}
