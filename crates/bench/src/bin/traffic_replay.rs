//! Service-level traffic replay against a live `cogent serve` daemon.
//!
//! Spawns the server on a loopback port, then drives a deterministic,
//! seeded request trace through real HTTP connections:
//!
//! * a **cold phase** issuing every unique contraction once (all cache
//!   misses — the steady-state working set being built), then
//! * a **warm phase** replaying zipf-distributed repeats of that working
//!   set from several concurrent client threads (the shape of real
//!   request traffic: a few hot contractions dominate), with every fifth
//!   draw going to `/v1/explain` so the endpoint mix is exercised too.
//!
//! The report records per-endpoint p50/p99 latency and an error-status
//! taxonomy alongside the aggregate percentiles.
//!
//! The trace mixes TCCG suite entries with seeded pseudo-random
//! contractions so the replay is not biased toward the benchmark suite's
//! index structure. The workload is fully deterministic (fixed seed, no
//! wall-clock dependence), so cache hit counts are exactly reproducible
//! and CI can gate on them; latency percentiles are reported for
//! trend-watching and gated only against catastrophic (100x) regressions.
//!
//! Usage: `cargo run --release -p cogent-bench --bin traffic_replay
//! [--quick] [--workers N] [--clients N] [--out FILE] [--check BASELINE]`
//!
//! Writes `results/traffic_replay.json` (override with `--out`). With
//! `--check BASELINE`, compares the fresh run against the checked-in
//! baseline and exits nonzero on a service-level regression. Regenerate
//! the baseline intentionally with:
//!   cargo run --release -p cogent-bench --bin traffic_replay

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cogent_bench::{flag_value, quick_mode, write_json_report};
use cogent_core::{ServeConfig, Server};
use cogent_obs::json::Json;
use cogent_tccg::suite;

/// Deterministic xorshift64* generator: the replay must not depend on
/// process entropy, or CI could not gate on hit counts.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A seeded pseudo-random contraction in the generator's supported shape:
/// 1-2 external indices per input, 1-2 contracted, rotated input layouts.
fn random_spec(rng: &mut Rng) -> String {
    let na = 1 + rng.below(2);
    let nb = 1 + rng.below(2);
    let ni = 1 + rng.below(2);
    let letters: Vec<char> = (0..na + nb + ni)
        .map(|i| (b'a' + i as u8) as char)
        .collect();
    let c: String = letters[..na + nb].iter().collect();
    let mut a: Vec<char> = letters[..na]
        .iter()
        .chain(&letters[na + nb..])
        .copied()
        .collect();
    let mut b: Vec<char> = letters[na..].to_vec();
    let rot_a = rng.below(a.len());
    let rot_b = rng.below(b.len());
    a.rotate_left(rot_a);
    b.rotate_left(rot_b);
    let (a, b): (String, String) = (a.into_iter().collect(), b.into_iter().collect());
    format!("{c}-{a}-{b}")
}

/// One replayed request: which endpoint it hit and how it went.
struct Outcome {
    endpoint: &'static str,
    status: u16,
    hit: bool,
    latency: Duration,
}

/// One POST over a fresh loopback connection. Returns the HTTP status,
/// whether the response was a cache hit, and the latency.
fn issue(addr: &str, path: &str, body: &str) -> (u16, bool, Duration) {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect to replay server");
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (
        status,
        response.contains("\"cache\":\"hit\""),
        started.elapsed(),
    )
}

/// Replays `jobs` (endpoint path + body) from `clients` concurrent
/// threads; returns per-request outcomes in completion order.
fn replay(addr: &str, jobs: &[(&'static str, String)], clients: usize) -> Vec<Outcome> {
    let results = Arc::new(Mutex::new(Vec::with_capacity(jobs.len())));
    let next = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let results = Arc::clone(&results);
            let next = Arc::clone(&next);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (endpoint, body) = &jobs[i];
                let (status, hit, latency) = issue(addr, endpoint, body);
                results.lock().unwrap().push(Outcome {
                    endpoint,
                    status,
                    hit,
                    latency,
                });
            });
        }
    });
    Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("replay threads still hold results"))
        .into_inner()
        .unwrap()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn summarize(outcomes: &[Outcome]) -> (usize, usize, Vec<f64>) {
    let mut latencies: Vec<f64> = outcomes
        .iter()
        .map(|o| o.latency.as_secs_f64() * 1e3)
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let errors = outcomes.iter().filter(|o| o.status != 200).count();
    let hits = outcomes.iter().filter(|o| o.hit).count();
    (errors, hits, latencies)
}

/// Per-endpoint latency percentiles over every outcome (cold + warm),
/// keyed by endpoint label (`generate`, `explain`).
fn endpoint_stats(outcomes: &[&Outcome]) -> Json {
    let mut by_endpoint: std::collections::BTreeMap<&str, Vec<f64>> =
        std::collections::BTreeMap::new();
    for outcome in outcomes {
        by_endpoint
            .entry(outcome.endpoint.trim_start_matches("/v1/"))
            .or_default()
            .push(outcome.latency.as_secs_f64() * 1e3);
    }
    Json::Object(
        by_endpoint
            .into_iter()
            .map(|(endpoint, mut ms)| {
                ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
                (
                    endpoint.to_string(),
                    Json::obj([
                        ("requests", Json::from(ms.len())),
                        ("p50_ms", Json::Float(percentile(&ms, 0.50))),
                        ("p99_ms", Json::Float(percentile(&ms, 0.99))),
                    ]),
                )
            })
            .collect(),
    )
}

/// Error-status taxonomy over every outcome: `{"200": N, "429": M, ...}`.
fn status_taxonomy(outcomes: &[&Outcome]) -> Json {
    let mut counts: std::collections::BTreeMap<u16, usize> = std::collections::BTreeMap::new();
    for outcome in outcomes {
        *counts.entry(outcome.status).or_default() += 1;
    }
    Json::Object(
        counts
            .into_iter()
            .map(|(status, n)| (status.to_string(), Json::from(n)))
            .collect(),
    )
}

fn get_f64(report: &Json, key: &str) -> f64 {
    let Json::Object(members) = report else {
        panic!("baseline is not a JSON object")
    };
    match members.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
        Some(Json::Float(f)) => *f,
        Some(Json::UInt(u)) => *u as f64,
        other => panic!("baseline field {key}: expected a number, got {other:?}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers: usize = flag_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let clients: usize = flag_value(&args, "--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let out_path = flag_value(&args, "--out")
        .unwrap_or("results/traffic_replay.json")
        .to_string();
    let quick = quick_mode(&args);

    // The working set: TCCG entries (small ones first, at their suite
    // sizes) plus seeded pseudo-random contractions at modest extents.
    let (tccg_count, random_count, draws) = if quick { (6, 2, 60) } else { (16, 8, 240) };
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    let mut unique: Vec<String> = suite()
        .iter()
        .take(tccg_count)
        .map(|e| format!(r#"{{"contraction":"{}","uniform":16}}"#, e.spec))
        .collect();
    for _ in 0..random_count {
        unique.push(format!(
            r#"{{"contraction":"{}","uniform":{}}}"#,
            random_spec(&mut rng),
            8 + 4 * rng.below(3)
        ));
    }
    unique.sort();
    unique.dedup();

    // Zipf-ish popularity over the working set: weight 1/(rank+1). Every
    // fifth warm draw goes to /v1/explain instead of /v1/generate so the
    // replay exercises the endpoint mix real traffic has.
    let weights: Vec<f64> = (0..unique.len()).map(|r| 1.0 / (r + 1) as f64).collect();
    let total_weight: f64 = weights.iter().sum();
    let mut warm_jobs = Vec::with_capacity(draws);
    for draw in 0..draws {
        let mut point = (rng.next() as f64 / u64::MAX as f64) * total_weight;
        let mut pick = 0;
        for (rank, w) in weights.iter().enumerate() {
            point -= w;
            if point <= 0.0 {
                pick = rank;
                break;
            }
        }
        let endpoint = if draw % 5 == 4 {
            "/v1/explain"
        } else {
            "/v1/generate"
        };
        warm_jobs.push((endpoint, unique[pick].clone()));
    }
    let cold_jobs: Vec<(&'static str, String)> = unique
        .iter()
        .map(|body| ("/v1/generate", body.clone()))
        .collect();

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth: clients.max(workers) * 4,
        max_conns: clients * 8,
        cache_capacity: unique.len() * 4,
        ..ServeConfig::default()
    };
    let server = Server::spawn(config).expect("spawn replay server");
    let addr = server.addr().to_string();
    println!(
        "traffic_replay: {} unique contractions | {draws} warm draws | {workers} worker(s) | {clients} client(s) | {addr}",
        unique.len()
    );

    let cold_started = Instant::now();
    let cold = replay(&addr, &cold_jobs, clients);
    let cold_total_s = cold_started.elapsed().as_secs_f64();
    let warm_started = Instant::now();
    let warm = replay(&addr, &warm_jobs, clients);
    let warm_total_s = warm_started.elapsed().as_secs_f64();
    server.shutdown();

    let (cold_errors, cold_hits, cold_ms) = summarize(&cold);
    let (warm_errors, warm_hits, warm_ms) = summarize(&warm);
    let warm_hit_rate = warm_hits as f64 / warm.len().max(1) as f64;
    let all: Vec<&Outcome> = cold.iter().chain(warm.iter()).collect();
    let report = Json::obj([
        ("unique_contractions", Json::from(unique.len())),
        ("warm_draws", Json::from(draws)),
        ("workers", Json::from(workers)),
        ("clients", Json::from(clients)),
        ("cold_total_s", Json::Float(cold_total_s)),
        ("warm_total_s", Json::Float(warm_total_s)),
        ("cold_errors", Json::from(cold_errors)),
        ("warm_errors", Json::from(warm_errors)),
        ("cold_hits", Json::from(cold_hits)),
        ("warm_hits", Json::from(warm_hits)),
        ("warm_hit_rate", Json::Float(warm_hit_rate)),
        ("cold_p50_ms", Json::Float(percentile(&cold_ms, 0.50))),
        ("cold_p99_ms", Json::Float(percentile(&cold_ms, 0.99))),
        ("warm_p50_ms", Json::Float(percentile(&warm_ms, 0.50))),
        ("warm_p99_ms", Json::Float(percentile(&warm_ms, 0.99))),
        ("endpoints", endpoint_stats(&all)),
        ("status_counts", status_taxonomy(&all)),
    ]);
    write_json_report(&out_path, &report).expect("write report");
    println!(
        "cold: {cold_total_s:.2}s (p99 {:.2}ms, {cold_errors} errors) | warm: {warm_total_s:.2}s (p99 {:.2}ms, hit rate {:.1}%, {warm_errors} errors)",
        percentile(&cold_ms, 0.99),
        percentile(&warm_ms, 0.99),
        warm_hit_rate * 100.0,
    );

    let Some(baseline_path) = flag_value(&args, "--check") else {
        return;
    };
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = Json::parse(&text).expect("parse baseline");
    let mut failures = Vec::new();
    // Deterministic service-level invariants: the seeded trace must hit
    // the cache exactly as the baseline run did, with zero errors. (The
    // quick and full traces differ, so --check only compares runs of the
    // same mode; the checked-in baseline is a full-mode run.)
    if !quick {
        let want_hits = get_f64(&baseline, "warm_hits");
        if (warm_hits as f64) < want_hits {
            failures.push(format!("warm_hits {warm_hits} < baseline {want_hits}"));
        }
    }
    if cold_errors + warm_errors > 0 {
        failures.push(format!(
            "replay saw {cold_errors} cold + {warm_errors} warm non-200 responses"
        ));
    }
    if warm_hit_rate < 0.5 {
        failures.push(format!("warm hit rate {warm_hit_rate:.2} below 0.5 floor"));
    }
    // Latency is machine-dependent; gate only against catastrophic
    // serialization bugs (e.g. the warm path falling off the cache).
    let p99_ceiling = (get_f64(&baseline, "warm_p99_ms") * 100.0).max(500.0);
    let warm_p99 = percentile(&warm_ms, 0.99);
    if warm_p99 > p99_ceiling {
        failures.push(format!(
            "warm p99 {warm_p99:.1}ms above ceiling {p99_ceiling:.1}ms"
        ));
    }
    if failures.is_empty() {
        println!("traffic_replay: within baseline {baseline_path}");
    } else {
        for failure in &failures {
            eprintln!("traffic_replay: REGRESSION: {failure}");
        }
        std::process::exit(1);
    }
}
