//! Regenerates Fig. 6 (P100) / Fig. 7 (V100): single-precision GFLOPS of
//! COGENT versus Tensor Comprehensions (with and without autotuning) on
//! the SD2 CCSD(T) contractions, including each framework's
//! code-generation/tuning time — the paper's headline contrast between
//! model-driven selection (seconds) and genetic autotuning (hours on real
//! hardware; thousands of simulated kernel evaluations here).
//!
//! Usage: `cargo run --release -p cogent-bench --bin fig6_7 -- --device v100 [--quick]`

use std::time::Instant;

use cogent_baselines::{measure_cogent, TcAutotuner};
use cogent_bench::{geomean, parse_device, quick_mode, with_published_trace};
use cogent_gpu_model::Precision;
use cogent_tccg::sd2_entries;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = parse_device(&args);
    let quick = quick_mode(&args);
    // COGENT's per-contraction pipeline traces go to results/ as JSONL.
    cogent_obs::set_enabled(true);

    let mut tuner = TcAutotuner::new(); // paper settings: pop 100, 20 gens
    if quick {
        tuner.population = 20;
        tuner.generations = 5;
    }

    println!(
        "SD2 CCSD(T) contractions, FP32, on {} — COGENT vs Tensor Comprehensions",
        device
    );
    println!(
        "{:<7} {:<22} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "name", "contraction", "COGENT", "TC (tuned)", "TC (untuned)", "gen [s]", "tune evals"
    );

    let mut cogent_all = Vec::new();
    let mut tc_all = Vec::new();
    for entry in sd2_entries() {
        let tc_expr = entry.contraction();
        let sizes = entry.sizes();
        let start = Instant::now();
        let cogent = with_published_trace(&entry.name, || {
            measure_cogent(&tc_expr, &sizes, &device, Precision::F32)
        });
        let gen_s = start.elapsed().as_secs_f64();
        let tuned = tuner.tune(&tc_expr, &sizes, &device, Precision::F32);
        println!(
            "{:<7} {:<22} {:>10.1} {:>12.1} {:>12.3} {:>10.3} {:>12}",
            entry.name,
            entry.spec,
            cogent.gflops,
            tuned.tuned.gflops,
            tuned.untuned.gflops,
            gen_s,
            tuned.evaluations,
        );
        cogent_all.push(cogent.gflops);
        tc_all.push(tuned.tuned.gflops);
    }

    println!(
        "\ngeomean GFLOPS: COGENT {:.1}, TC tuned {:.1} → COGENT is {:.2}x faster with no autotuning",
        geomean(&cogent_all),
        geomean(&tc_all),
        geomean(&cogent_all) / geomean(&tc_all),
    );

    let trace_path = std::path::Path::new("results/fig6_7_traces.jsonl");
    match cogent_bench::write_trace_jsonl(trace_path) {
        Ok(n) if n > 0 => println!("wrote {n} pipeline traces to {}", trace_path.display()),
        Ok(_) => {}
        Err(e) => eprintln!("could not write {}: {e}", trace_path.display()),
    }
}
