//! Phase profiler: attributes a trace's wall time to pipeline phases.
//!
//! A [`PhaseProfile`] is derived entirely from a finished
//! [`PipelineTrace`] — the span tree *is* the sample set, so profiling
//! adds zero cost beyond the spans the pipeline already records. For
//! every distinct span name ("phase") it accumulates:
//!
//! - `calls` — number of spans with that name,
//! - `total_ns` — wall time including children (inclusive time),
//! - `self_ns` — wall time excluding children (exclusive time).
//!
//! Self times partition the root's wall clock (up to clock-read jitter),
//! so `sum(self_ns) ≈ wall_ns` and [`PhaseProfile::coverage`] — the
//! fraction of wall time attributed to phases other than the root —
//! measures how much of the run the instrumentation actually explains.
//!
//! Three renderings are provided: a fixed-width self-time table
//! ([`PhaseProfile::render_table`]), a `cogent.profile.v1` JSON document
//! ([`PhaseProfile::to_json`]), and flamegraph-compatible folded stacks
//! ([`folded_stacks`], one `path;to;span self_ns` line per distinct call
//! path, ready for `flamegraph.pl` or speedscope).

use std::collections::BTreeMap;

use crate::json::Json;
use crate::render::fmt_ns;
use crate::{PipelineTrace, SpanNode};

/// Schema identifier embedded in serialized profiles.
pub const PROFILE_SCHEMA: &str = "cogent.profile.v1";

/// Aggregated timing of one phase (all spans sharing a name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Span name, e.g. `"prune"`.
    pub name: String,
    /// Number of spans with this name.
    pub calls: u64,
    /// Inclusive wall time (children counted), summed over calls.
    pub total_ns: u128,
    /// Exclusive wall time (children subtracted), summed over calls.
    pub self_ns: u128,
}

/// A per-phase self/total breakdown of one or more traces.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// Name of the root span the profile was derived from.
    pub root: String,
    /// Total wall time: the root span's duration (summed over merged
    /// traces).
    pub wall_ns: u128,
    /// Traces merged into this profile.
    pub runs: u64,
    /// Per-phase stats, sorted by descending self time (name-ascending
    /// tiebreak).
    pub phases: Vec<PhaseStat>,
}

fn children_ns(span: &SpanNode) -> u128 {
    span.children
        .iter()
        .map(|c| u128::from(c.duration_ns))
        .sum()
}

impl PhaseProfile {
    /// Derives a profile from a finished trace.
    pub fn from_trace(trace: &PipelineTrace) -> Self {
        let mut acc: BTreeMap<&str, PhaseStat> = BTreeMap::new();
        fn walk<'t>(span: &'t SpanNode, acc: &mut BTreeMap<&'t str, PhaseStat>) {
            let stat = acc.entry(&span.name).or_insert_with(|| PhaseStat {
                name: span.name.clone(),
                calls: 0,
                total_ns: 0,
                self_ns: 0,
            });
            stat.calls += 1;
            stat.total_ns += u128::from(span.duration_ns);
            // Clock reads are taken per span, so children can overshoot
            // the parent by a few ns; clamp instead of wrapping.
            stat.self_ns += u128::from(span.duration_ns).saturating_sub(children_ns(span));
            for child in &span.children {
                walk(child, acc);
            }
        }
        walk(&trace.root, &mut acc);
        let mut phases: Vec<PhaseStat> = acc.into_values().collect();
        phases.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        Self {
            root: trace.root.name.clone(),
            wall_ns: u128::from(trace.root.duration_ns),
            runs: 1,
            phases,
        }
    }

    /// Folds another profile (e.g. a repeat run of the same pipeline)
    /// into this one: wall times and per-phase stats add.
    pub fn merge(&mut self, other: &PhaseProfile) {
        self.wall_ns += other.wall_ns;
        self.runs += other.runs;
        for stat in &other.phases {
            match self.phases.iter_mut().find(|p| p.name == stat.name) {
                Some(mine) => {
                    mine.calls += stat.calls;
                    mine.total_ns += stat.total_ns;
                    mine.self_ns += stat.self_ns;
                }
                None => self.phases.push(stat.clone()),
            }
        }
        self.phases
            .sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    }

    /// Sum of every phase's self time. Equals `wall_ns` up to per-span
    /// clock-read jitter.
    pub fn attributed_ns(&self) -> u128 {
        self.phases.iter().map(|p| p.self_ns).sum()
    }

    /// Fraction of wall time attributed to named phases *other than the
    /// root span* — i.e. how much of the run the instrumentation
    /// explains. 0.0 for an empty trace, in `[0, 1]` otherwise.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        let non_root: u128 = self
            .phases
            .iter()
            .filter(|p| p.name != self.root)
            .map(|p| p.self_ns)
            .sum();
        (non_root as f64 / self.wall_ns as f64).min(1.0)
    }

    /// Renders a fixed-width self-time table, phases sorted by
    /// descending self time, with a totals row and the coverage figure.
    pub fn render_table(&self) -> String {
        let width = self
            .phases
            .iter()
            .map(|p| p.name.len())
            .chain(["phase".len(), "total".len()])
            .max()
            .unwrap_or(5);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<width$}  {:>8}  {:>10}  {:>10}  {:>6}\n",
            "phase", "calls", "total", "self", "self%"
        ));
        let pct = |ns: u128| {
            if self.wall_ns == 0 {
                0.0
            } else {
                ns as f64 / self.wall_ns as f64 * 100.0
            }
        };
        for stat in &self.phases {
            out.push_str(&format!(
                "{:<width$}  {:>8}  {:>10}  {:>10}  {:>5.1}%\n",
                stat.name,
                stat.calls,
                fmt_ns(stat.total_ns.min(u128::from(u64::MAX)) as u64),
                fmt_ns(stat.self_ns.min(u128::from(u64::MAX)) as u64),
                pct(stat.self_ns),
            ));
        }
        out.push_str(&format!(
            "{:<width$}  {:>8}  {:>10}  {:>10}  {:>5.1}%\n",
            "total",
            "",
            fmt_ns(self.wall_ns.min(u128::from(u64::MAX)) as u64),
            fmt_ns(self.attributed_ns().min(u128::from(u64::MAX)) as u64),
            pct(self.attributed_ns()),
        ));
        out.push_str(&format!(
            "coverage: {:.1}% of wall time attributed below the root\n",
            self.coverage() * 100.0
        ));
        out
    }

    /// Serializes to the `cogent.profile.v1` JSON schema.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("schema".into(), Json::Str(PROFILE_SCHEMA.into())),
            ("root".into(), Json::Str(self.root.clone())),
            ("runs".into(), Json::UInt(self.runs.into())),
            ("wall_ns".into(), Json::UInt(self.wall_ns)),
            ("attributed_ns".into(), Json::UInt(self.attributed_ns())),
            ("coverage".into(), Json::Float(self.coverage())),
            (
                "phases".into(),
                Json::Array(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::Object(vec![
                                ("name".into(), Json::Str(p.name.clone())),
                                ("calls".into(), Json::UInt(p.calls.into())),
                                ("total_ns".into(), Json::UInt(p.total_ns)),
                                ("self_ns".into(), Json::UInt(p.self_ns)),
                                (
                                    "self_pct".into(),
                                    Json::Float(if self.wall_ns == 0 {
                                        0.0
                                    } else {
                                        p.self_ns as f64 / self.wall_ns as f64 * 100.0
                                    }),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Accumulates a trace's self times into `acc`, keyed by the
/// semicolon-joined root-to-span name path (the flamegraph folded-stack
/// convention). Call repeatedly to merge several runs.
pub fn fold_stacks_into(trace: &PipelineTrace, acc: &mut BTreeMap<String, u128>) {
    fn walk(span: &SpanNode, prefix: &str, acc: &mut BTreeMap<String, u128>) {
        let path = if prefix.is_empty() {
            span.name.clone()
        } else {
            format!("{prefix};{}", span.name)
        };
        let self_ns = u128::from(span.duration_ns).saturating_sub(children_ns(span));
        *acc.entry(path.clone()).or_insert(0) += self_ns;
        for child in &span.children {
            walk(child, &path, acc);
        }
    }
    walk(&trace.root, "", acc);
}

/// Renders a folded-stack accumulator as `path;to;span self_ns` lines
/// (one per distinct call path, lexicographically sorted). The output
/// feeds `flamegraph.pl` / speedscope / `inferno` unchanged.
pub fn render_folded(acc: &BTreeMap<String, u128>) -> String {
    let mut out = String::new();
    for (path, self_ns) in acc {
        out.push_str(&format!("{path} {self_ns}\n"));
    }
    out
}

/// One-shot folded-stack rendering of a single trace.
pub fn folded_stacks(trace: &PipelineTrace) -> String {
    let mut acc = BTreeMap::new();
    fold_stacks_into(trace, &mut acc);
    render_folded(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// generate(1000) → prune(600) → cost(200); generate → lower(250).
    fn sample_trace() -> PipelineTrace {
        fn node(name: &str, start_ns: u64, duration_ns: u64, children: Vec<SpanNode>) -> SpanNode {
            SpanNode {
                name: name.to_string(),
                start_ns,
                duration_ns,
                counters: Vec::new(),
                histograms: Vec::new(),
                gauges: Vec::new(),
                thread: 0,
                children,
            }
        }
        PipelineTrace {
            root: node(
                "generate",
                0,
                1_000,
                vec![
                    node("prune", 10, 600, vec![node("cost", 20, 200, vec![])]),
                    node("lower", 700, 250, vec![]),
                ],
            ),
        }
    }

    #[test]
    fn self_times_partition_the_wall_clock() {
        let profile = PhaseProfile::from_trace(&sample_trace());
        assert_eq!(profile.wall_ns, 1_000);
        assert_eq!(profile.attributed_ns(), 1_000, "self times partition wall");
        let stat = |name: &str| profile.phases.iter().find(|p| p.name == name).unwrap();
        assert_eq!(stat("generate").self_ns, 150); // 1000 - 600 - 250
        assert_eq!(stat("prune").self_ns, 400); // 600 - 200
        assert_eq!(stat("prune").total_ns, 600);
        assert_eq!(stat("cost").self_ns, 200);
        assert_eq!(stat("lower").self_ns, 250);
        // Sorted by descending self time.
        assert_eq!(profile.phases[0].name, "prune");
        // Coverage excludes only the root's own self time.
        assert!((profile.coverage() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_runs() {
        let mut profile = PhaseProfile::from_trace(&sample_trace());
        let again = PhaseProfile::from_trace(&sample_trace());
        profile.merge(&again);
        assert_eq!(profile.runs, 2);
        assert_eq!(profile.wall_ns, 2_000);
        let prune = profile.phases.iter().find(|p| p.name == "prune").unwrap();
        assert_eq!(prune.calls, 2);
        assert_eq!(prune.self_ns, 800);
        assert!((profile.coverage() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn table_and_json_are_deterministic() {
        let profile = PhaseProfile::from_trace(&sample_trace());
        let table = profile.render_table();
        assert!(table.starts_with("phase"));
        assert!(table.contains("coverage: 85.0%"));
        // Header + 4 phases + totals + coverage.
        assert_eq!(table.lines().count(), 7);
        let json = profile.to_json();
        assert_eq!(
            json.get("schema").unwrap().as_str(),
            Some("cogent.profile.v1")
        );
        assert_eq!(json.get("wall_ns").unwrap().as_u128(), Some(1_000));
        assert_eq!(json.get("phases").unwrap().as_array().unwrap().len(), 4);
        assert!(Json::parse(&json.to_string()).is_ok());
    }

    #[test]
    fn folded_stacks_follow_call_paths() {
        let folded = folded_stacks(&sample_trace());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "generate 150",
                "generate;lower 250",
                "generate;prune 400",
                "generate;prune;cost 200",
            ]
        );
        // Merging a second run doubles every weight.
        let mut acc = BTreeMap::new();
        fold_stacks_into(&sample_trace(), &mut acc);
        fold_stacks_into(&sample_trace(), &mut acc);
        assert!(render_folded(&acc).contains("generate;prune 800"));
    }

    #[test]
    fn zero_wall_trace_has_zero_coverage() {
        let trace = PipelineTrace {
            root: SpanNode {
                name: "empty".into(),
                start_ns: 0,
                duration_ns: 0,
                counters: Vec::new(),
                histograms: Vec::new(),
                gauges: Vec::new(),
                thread: 0,
                children: Vec::new(),
            },
        };
        let profile = PhaseProfile::from_trace(&trace);
        assert_eq!(profile.coverage(), 0.0);
        assert!(profile.render_table().contains("coverage: 0.0%"));
    }
}
