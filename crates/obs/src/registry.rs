//! Process-wide collection points: a registry for finished **traces**
//! and a sharded registry for **metrics**.
//!
//! # Traces
//!
//! The bench binaries run pipelines from worker threads; each worker
//! [`publish`]es its labelled trace here and the main thread [`drain`]s
//! them for writing (e.g. as JSON lines next to the result tables).
//!
//! # Metrics
//!
//! Every span closed anywhere in the process folds its counters,
//! histograms, gauges and duration into a per-thread [`MetricsShard`]
//! (see [`fold_span`]). Shards register themselves in a global list on a
//! thread's first fold and are **drained on thread exit** into a global
//! accumulator, so metrics survive worker joins. [`metrics_snapshot`]
//! merges the accumulator with every live shard losslessly:
//!
//! - counters add,
//! - histograms merge bucket-by-bucket ([`crate::metrics::Histogram::merge`]),
//! - gauges resolve last-writer-wins via a global sequence number,
//!
//! so the merged result is independent of thread scheduling and merge
//! order. [`render_prometheus`] renders a snapshot in the Prometheus
//! text exposition format (served by `cogent stats`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::Histogram;
use crate::{PipelineTrace, SpanNode};

static REGISTRY: Mutex<Vec<(String, PipelineTrace)>> = Mutex::new(Vec::new());

/// Appends a labelled trace to the registry.
pub fn publish(label: &str, trace: PipelineTrace) {
    REGISTRY
        .lock()
        .expect("trace registry poisoned")
        .push((label.to_string(), trace));
}

/// Removes and returns every published trace, in publish order.
pub fn drain() -> Vec<(String, PipelineTrace)> {
    std::mem::take(&mut *REGISTRY.lock().expect("trace registry poisoned"))
}

/// Number of traces currently queued.
pub fn len() -> usize {
    REGISTRY.lock().expect("trace registry poisoned").len()
}

/// Whether the registry is empty.
pub fn is_empty() -> bool {
    len() == 0
}

// ---------------------------------------------------------------------------
// Global metrics: per-thread shards, drain-on-join, lossless merge
// ---------------------------------------------------------------------------

/// One thread's (or one test's) accumulated metrics. Shards merge
/// losslessly and the merge is associative and order-insensitive, so a
/// snapshot taken after any interleaving of threads equals the serial
/// single-thread result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsShard {
    /// Monotone counters, by metric name.
    pub counters: BTreeMap<String, u128>,
    /// Log-bucketed histograms, by metric name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Gauges as `(sequence, value)`: the globally-issued sequence number
    /// makes "last writer" well defined across threads, and breaking ties
    /// by the value's bit pattern keeps the merge a total order.
    pub gauges: BTreeMap<String, (u64, f64)>,
    /// Spans folded into this shard.
    pub spans_closed: u64,
}

impl MetricsShard {
    /// An empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the shard holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.gauges.is_empty()
            && self.spans_closed == 0
    }

    /// Adds `value` to counter `name`.
    pub fn add_counter(&mut self, name: &str, value: u128) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// Records `value` into histogram `name`.
    pub fn record_histogram(&mut self, name: &str, value: u128) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Sets gauge `name` to `value` under an explicit sequence number
    /// (kept only if it outranks the stored write; see [`MetricsShard`]).
    pub fn set_gauge_seq(&mut self, name: &str, seq: u64, value: f64) {
        match self.gauges.get_mut(name) {
            Some(slot) => {
                if (seq, value.to_bits()) > (slot.0, slot.1.to_bits()) {
                    *slot = (seq, value);
                }
            }
            None => {
                self.gauges.insert(name.to_string(), (seq, value));
            }
        }
    }

    /// Sets gauge `name` to `value` under a freshly issued global
    /// sequence number (i.e. "now" is the last write).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.set_gauge_seq(name, next_gauge_seq(), value);
    }

    /// Folds `other` into `self` losslessly.
    pub fn merge(&mut self, other: &MetricsShard) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
        for (name, &(seq, value)) in &other.gauges {
            self.set_gauge_seq(name, seq, value);
        }
        self.spans_closed += other.spans_closed;
    }
}

/// Issues gauge sequence numbers; strictly increasing process-wide.
static GAUGE_SEQ: AtomicU64 = AtomicU64::new(1);

fn next_gauge_seq() -> u64 {
    GAUGE_SEQ.fetch_add(1, Ordering::Relaxed)
}

type SharedShard = Arc<Mutex<MetricsShard>>;

/// Live per-thread shards, in registration order.
static LIVE_SHARDS: Mutex<Vec<SharedShard>> = Mutex::new(Vec::new());

/// Metrics recovered from threads that have exited.
static DRAINED: Mutex<MetricsShard> = Mutex::new(MetricsShard {
    counters: BTreeMap::new(),
    histograms: BTreeMap::new(),
    gauges: BTreeMap::new(),
    spans_closed: 0,
});

/// Total shards ever registered (threads that recorded at least one span).
static THREADS_SEEN: AtomicU64 = AtomicU64::new(0);

/// Owns a thread's shard registration; the destructor runs at thread
/// exit and drains the shard into [`DRAINED`] ("drain-on-join").
struct ShardHandle {
    shard: SharedShard,
}

impl ShardHandle {
    fn register() -> Self {
        let shard: SharedShard = Arc::new(Mutex::new(MetricsShard::new()));
        LIVE_SHARDS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&shard));
        THREADS_SEEN.fetch_add(1, Ordering::Relaxed);
        Self { shard }
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        let data = std::mem::take(&mut *self.shard.lock().unwrap_or_else(|e| e.into_inner()));
        DRAINED
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(&data);
        LIVE_SHARDS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|s| !Arc::ptr_eq(s, &self.shard));
    }
}

thread_local! {
    static LOCAL_SHARD: ShardHandle = ShardHandle::register();
}

/// Folds a closed span's metrics (and its duration, as the histogram
/// `span.<name>.duration_ns`) into the calling thread's shard. Called by
/// the span machinery on every close; a no-op only if the thread is
/// already tearing down its locals.
pub(crate) fn fold_span(node: &SpanNode) {
    let _ = LOCAL_SHARD.try_with(|handle| {
        let mut shard = handle.shard.lock().unwrap_or_else(|e| e.into_inner());
        for (name, value) in &node.counters {
            shard.add_counter(name, *value);
        }
        for (name, histogram) in &node.histograms {
            shard
                .histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
        for (name, value) in &node.gauges {
            shard.set_gauge(name, *value);
        }
        shard.record_histogram(
            &format!("span.{}.duration_ns", node.name),
            u128::from(node.duration_ns),
        );
        shard.spans_closed += 1;
    });
}

/// A merged, point-in-time view of every shard (drained and live).
pub fn metrics_snapshot() -> MetricsShard {
    let mut merged = DRAINED.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let live = LIVE_SHARDS.lock().unwrap_or_else(|e| e.into_inner());
    for shard in live.iter() {
        merged.merge(&shard.lock().unwrap_or_else(|e| e.into_inner()));
    }
    merged
}

/// Clears the drained accumulator and every live shard (live threads
/// keep their registration and continue recording into emptied shards).
pub fn reset_metrics() {
    *DRAINED.lock().unwrap_or_else(|e| e.into_inner()) = MetricsShard::new();
    let live = LIVE_SHARDS.lock().unwrap_or_else(|e| e.into_inner());
    for shard in live.iter() {
        *shard.lock().unwrap_or_else(|e| e.into_inner()) = MetricsShard::new();
    }
}

/// Number of currently registered (live) thread shards.
pub fn live_shards() -> usize {
    LIVE_SHARDS.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Total threads that ever registered a shard.
pub fn threads_seen() -> u64 {
    THREADS_SEEN.load(Ordering::Relaxed)
}

/// Maps a dotted internal metric name (`serve.queue_depth`) onto the
/// Prometheus name charset `[a-zA-Z0-9_:]`; every other character
/// becomes `_`. An empty name renders as a single `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    if name.is_empty() {
        return "_".to_string();
    }
    name.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect()
}

/// Escapes a `# HELP` docstring (backslash and newline, per the text
/// exposition format).
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Groups metrics by their sanitized family name. Distinct internal
/// names that collide after sanitization merge into one family (the
/// HELP line lists every source name), so the rendering stays valid for
/// strict parsers no matter what was recorded.
fn families<'a, V>(
    metrics: impl IntoIterator<Item = (&'a String, V)>,
    suffix: &str,
) -> BTreeMap<String, (Vec<&'a str>, Vec<V>)> {
    let mut grouped: BTreeMap<String, (Vec<&'a str>, Vec<V>)> = BTreeMap::new();
    for (name, value) in metrics {
        let family = format!("cogent_{}{suffix}", sanitize_metric_name(name));
        let entry = grouped.entry(family).or_default();
        entry.0.push(name);
        entry.1.push(value);
    }
    grouped
}

/// Renders a snapshot in the Prometheus text exposition format (v0.0.4).
/// Each internal metric becomes its own family with `# HELP` / `# TYPE`
/// lines and a name sanitized to `[a-zA-Z0-9_:]` (counters get a
/// `_total` suffix); histograms render as summaries with nearest-rank
/// quantiles plus `_sum` / `_count`. Deterministic: families are emitted
/// in sorted order and collisions after sanitization merge losslessly.
pub fn render_prometheus(snapshot: &MetricsShard) -> String {
    let mut out = String::new();
    out.push_str(
        "# cogent.stats.v2 — merged process-wide metrics (Prometheus text format v0.0.4)\n",
    );
    for (family, (sources, values)) in families(&snapshot.counters, "_total") {
        out.push_str(&format!(
            "# HELP {family} Counter {} (merged across threads).\n",
            escape_help(&sources.join(", "))
        ));
        out.push_str(&format!("# TYPE {family} counter\n"));
        let total: u128 = values.iter().copied().sum();
        out.push_str(&format!("{family} {total}\n"));
    }
    for (family, (sources, values)) in families(&snapshot.gauges, "") {
        out.push_str(&format!(
            "# HELP {family} Gauge {} (last writer wins).\n",
            escape_help(&sources.join(", "))
        ));
        out.push_str(&format!("# TYPE {family} gauge\n"));
        // Colliding gauges resolve exactly like a shard merge would:
        // highest (sequence, bit-pattern) write wins.
        if let Some(&&(_, value)) = values
            .iter()
            .max_by_key(|&&&(seq, value)| (seq, value.to_bits()))
        {
            out.push_str(&format!("{family} {value}\n"));
        }
    }
    for (family, (sources, values)) in families(&snapshot.histograms, "") {
        out.push_str(&format!(
            "# HELP {family} Histogram {} (log-bucketed; nearest-rank quantiles).\n",
            escape_help(&sources.join(", "))
        ));
        out.push_str(&format!("# TYPE {family} summary\n"));
        let mut merged = Histogram::new();
        for histogram in values {
            merged.merge(histogram);
        }
        for (q, value) in [
            ("0.5", merged.p50()),
            ("0.9", merged.p90()),
            ("0.99", merged.p99()),
        ] {
            if let Some(v) = value {
                out.push_str(&format!("{family}{{quantile=\"{q}\"}} {v}\n"));
            }
        }
        out.push_str(&format!("{family}_sum {}\n", merged.sum()));
        out.push_str(&format!("{family}_count {}\n", merged.count()));
    }
    out.push_str("# HELP cogent_spans_closed Spans folded into the metric registry.\n");
    out.push_str("# TYPE cogent_spans_closed counter\n");
    out.push_str(&format!("cogent_spans_closed {}\n", snapshot.spans_closed));
    out.push_str("# HELP cogent_threads_seen Threads that ever registered a metric shard.\n");
    out.push_str("# TYPE cogent_threads_seen counter\n");
    out.push_str(&format!("cogent_threads_seen {}\n", threads_seen()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanNode;

    fn trace(name: &str) -> PipelineTrace {
        PipelineTrace {
            root: SpanNode {
                name: name.to_string(),
                start_ns: 0,
                duration_ns: 1,
                counters: Vec::new(),
                histograms: Vec::new(),
                gauges: Vec::new(),
                thread: 0,
                children: Vec::new(),
            },
        }
    }

    #[test]
    fn publish_and_drain_from_threads() {
        // Drain anything left over from other tests first.
        let _ = drain();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    publish(&format!("job-{i}"), trace("generate"));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(len(), 4);
        let mut drained = drain();
        drained.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(drained.len(), 4);
        assert_eq!(drained[0].0, "job-0");
        assert!(drain().is_empty());
    }

    #[test]
    fn shard_merge_is_lossless() {
        let mut a = MetricsShard::new();
        a.add_counter("c", 3);
        a.record_histogram("h", 10);
        a.set_gauge_seq("g", 1, 0.25);
        a.spans_closed = 2;
        let mut b = MetricsShard::new();
        b.add_counter("c", 4);
        b.add_counter("only_b", 1);
        b.record_histogram("h", 1_000_000);
        b.set_gauge_seq("g", 2, 0.75);
        b.spans_closed = 1;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.counters["c"], 7);
        assert_eq!(ab.counters["only_b"], 1);
        assert_eq!(ab.histograms["h"].count(), 2);
        assert_eq!(ab.gauges["g"], (2, 0.75), "higher sequence wins");
        assert_eq!(ab.spans_closed, 3);
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_escaped() {
        let mut shard = MetricsShard::new();
        shard.add_counter("cache.hit", 12);
        shard.set_gauge_seq("audit.spearman", 7, 0.9375);
        shard.record_histogram("lat_ns", 100);
        shard.record_histogram("lat_ns", 200);
        shard.spans_closed = 5;
        let text = render_prometheus(&shard);
        assert!(text.contains("# HELP cogent_cache_hit_total Counter cache.hit"));
        assert!(text.contains("# TYPE cogent_cache_hit_total counter\n"));
        assert!(text.contains("cogent_cache_hit_total 12\n"));
        assert!(text.contains("# TYPE cogent_audit_spearman gauge\n"));
        assert!(text.contains("cogent_audit_spearman 0.9375\n"));
        assert!(text.contains("# TYPE cogent_lat_ns summary\n"));
        assert!(text.contains("cogent_lat_ns_count 2\n"));
        assert!(text.contains("cogent_lat_ns_sum 300\n"));
        assert!(text.contains("cogent_lat_ns{quantile=\"0.5\"}"));
        assert!(text.contains("# TYPE cogent_spans_closed counter\n"));
        assert!(text.contains("cogent_spans_closed 5\n"));
        assert_eq!(text, render_prometheus(&shard), "stable output");
    }

    #[test]
    fn prometheus_names_stay_inside_the_charset() {
        let mut shard = MetricsShard::new();
        shard.add_counter("weird\"name\\x", 1);
        shard.add_counter("weird name x", 2); // collides after sanitizing
        shard.add_counter("serve.status.200", 3);
        shard.set_gauge_seq("Ünïcode metric", 1, 1.5);
        shard.record_histogram("latency (ns)", 10);
        let text = render_prometheus(&shard);
        // Every exposed metric name uses only [a-zA-Z0-9_:] — check each
        // non-comment line up to the first '{' or ' '.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name: &str = line.split(['{', ' ']).next().unwrap_or(line);
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in line {line:?}"
            );
        }
        // Colliding names merge into one counter family and add up.
        assert!(text.contains("cogent_weird_name_x_total 3\n"));
        assert!(text
            .contains("# HELP cogent_weird_name_x_total Counter weird name x, weird\"name\\\\x"));
        assert!(text.contains("cogent_serve_status_200_total 3\n"));
        assert!(text.contains("cogent__n_code_metric 1.5\n"));
        assert!(text.contains("cogent_latency__ns__count 1\n"));
        assert_eq!(sanitize_metric_name(""), "_");
    }
}
