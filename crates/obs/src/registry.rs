//! A process-wide, thread-safe collection point for finished traces.
//!
//! The bench binaries run pipelines from worker threads; each worker
//! [`publish`]es its labelled trace here and the main thread [`drain`]s
//! them for writing (e.g. as JSON lines next to the result tables).

use std::sync::Mutex;

use crate::PipelineTrace;

static REGISTRY: Mutex<Vec<(String, PipelineTrace)>> = Mutex::new(Vec::new());

/// Appends a labelled trace to the registry.
pub fn publish(label: &str, trace: PipelineTrace) {
    REGISTRY
        .lock()
        .expect("trace registry poisoned")
        .push((label.to_string(), trace));
}

/// Removes and returns every published trace, in publish order.
pub fn drain() -> Vec<(String, PipelineTrace)> {
    std::mem::take(&mut *REGISTRY.lock().expect("trace registry poisoned"))
}

/// Number of traces currently queued.
pub fn len() -> usize {
    REGISTRY.lock().expect("trace registry poisoned").len()
}

/// Whether the registry is empty.
pub fn is_empty() -> bool {
    len() == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanNode;

    fn trace(name: &str) -> PipelineTrace {
        PipelineTrace {
            root: SpanNode {
                name: name.to_string(),
                start_ns: 0,
                duration_ns: 1,
                counters: Vec::new(),
                histograms: Vec::new(),
                gauges: Vec::new(),
                children: Vec::new(),
            },
        }
    }

    #[test]
    fn publish_and_drain_from_threads() {
        // Drain anything left over from other tests first.
        let _ = drain();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    publish(&format!("job-{i}"), trace("generate"));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(len(), 4);
        let mut drained = drain();
        drained.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(drained.len(), 4);
        assert_eq!(drained[0].0, "job-0");
        assert!(drain().is_empty());
    }
}
