//! Text rendering of a [`PipelineTrace`] as an indented tree.

use crate::{PipelineTrace, SpanNode};

/// Formats a nanosecond duration with a human-friendly unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

pub(crate) fn render_text(trace: &PipelineTrace) -> String {
    let mut out = String::new();
    render_span(&trace.root, trace.root.thread, 0, &mut out);
    out
}

fn render_span(span: &SpanNode, root_thread: u32, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let name_width = 28usize.saturating_sub(indent.len()).max(1);
    out.push_str(&format!(
        "{indent}{:<name_width$} {:>10}",
        span.name,
        fmt_ns(span.duration_ns),
    ));
    // Tag spans recorded off the capture's thread so multi-thread runs
    // are legible in plain text.
    if span.thread != root_thread {
        out.push_str(&format!(" @t{}", span.thread));
    }
    let mut metrics: Vec<String> = span
        .counters
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    metrics.extend(span.gauges.iter().map(|(k, v)| format!("{k}={v}")));
    metrics.extend(span.histograms.iter().map(|(k, h)| {
        format!(
            "{k}{{n={} p50={} p99={}}}",
            h.count(),
            h.p50().unwrap_or(0),
            h.p99().unwrap_or(0),
        )
    }));
    if !metrics.is_empty() {
        out.push_str(&format!("  [{}]", metrics.join(" ")));
    }
    out.push('\n');
    for child in &span.children {
        render_span(child, root_thread, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }

    #[test]
    fn renders_tree_with_counters() {
        let mut lat = crate::metrics::Histogram::new();
        lat.record(5);
        lat.record(5);
        let trace = PipelineTrace {
            root: SpanNode {
                name: "generate".into(),
                start_ns: 0,
                duration_ns: 2_000_000,
                counters: vec![],
                histograms: vec![],
                gauges: vec![("audit.spearman".into(), 0.95)],
                thread: 3,
                children: vec![
                    SpanNode {
                        name: "prune".into(),
                        start_ns: 10,
                        duration_ns: 1_000,
                        counters: vec![("prune.survivors".into(), 42)],
                        histograms: vec![("prune.lat_ns".into(), lat)],
                        gauges: vec![],
                        thread: 3,
                        children: vec![],
                    },
                    SpanNode {
                        name: "prune.worker".into(),
                        start_ns: 20,
                        duration_ns: 500,
                        counters: vec![],
                        histograms: vec![],
                        gauges: vec![],
                        thread: 7,
                        children: vec![],
                    },
                ],
            },
        };
        let text = trace.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("generate"));
        assert!(lines[0].contains("audit.spearman=0.95"));
        assert!(lines[1].starts_with("  prune"));
        assert!(lines[1].contains("prune.survivors=42"));
        assert!(lines[1].contains("prune.lat_ns{n=2 p50=5 p99=5}"));
        // Same-thread spans carry no tag; cross-thread spans do.
        assert!(!lines[1].contains("@t"));
        assert!(lines[2].contains("@t7"));
    }
}
