//! Observability for the COGENT pipeline.
//!
//! This crate provides hierarchical wall-clock **spans** with attached
//! **counters**, collected into a [`PipelineTrace`] that the generator
//! attaches to every kernel it produces (and that `cogent explain`
//! renders). It is deliberately dependency-free: timings come from
//! [`std::time::Instant`], serialization is a hand-rolled JSON subset
//! ([`json`]), and thread safety comes from [`std::sync`] atomics plus a
//! thread-local span stack.
//!
//! # Model
//!
//! - Tracing is **globally opt-in** via [`set_enabled`] (or the
//!   `COGENT_TRACE` environment variable through [`init_from_env`]).
//!   While disabled, [`span`], [`counter`] and [`Capture::start`] are a
//!   single relaxed atomic load and allocate nothing — verified by the
//!   [`nodes_allocated`] statistic.
//! - A [`Capture`] opens a trace on the **current thread**; [`span`]
//!   guards opened underneath it nest into a tree, and [`counter`] calls
//!   accumulate `phase.metric`-style counters on the innermost open span.
//!   Per-thread collection means parallel pipeline runs (e.g. the bench
//!   binaries) never interleave each other's spans.
//! - Finished traces can be published to a process-wide [`registry`] so
//!   worker threads can hand traces to a writer thread. Independently of
//!   traces, every closed span folds its counters, histograms, gauges and
//!   duration into a per-thread **metric shard**; shards register
//!   themselves on first use, drain into a global accumulator when their
//!   thread exits, and merge losslessly into a process-wide
//!   [`registry::metrics_snapshot`] (rendered by
//!   [`registry::render_prometheus`]).
//! - Worker threads can contribute spans to a trace owned by another
//!   thread through [`fork`]: the parent forks a handle while its capture
//!   is open, each worker opens a span against the handle, and the parent
//!   [`TraceFork::attach`]es the collected subtrees in a deterministic
//!   order after joining. Every span carries the [`thread_ordinal`] of
//!   the thread that recorded it, so [`chrome`] exports render real
//!   per-worker timelines.
//! - Compiling with the `strip` cargo feature hard-disables the whole
//!   layer at compile time ([`STRIPPED`]): [`enabled`] becomes a constant
//!   `false` and the optimizer removes every probe. CI uses this build to
//!   bound the overhead of the instrumented (but disabled) hot path.
//!
//! # Example
//!
//! ```
//! cogent_obs::set_enabled(true);
//! let capture = cogent_obs::Capture::start("generate");
//! {
//!     let _s = cogent_obs::span("enumerate");
//!     cogent_obs::counter("enumerate.configs", 1296);
//! }
//! let trace = capture.finish().expect("tracing is enabled");
//! cogent_obs::set_enabled(false);
//! assert_eq!(trace.root.name, "generate");
//! assert_eq!(trace.root.children[0].counter("enumerate.configs"), Some(1296));
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub mod chrome;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod render;

pub use registry::{
    live_shards, metrics_snapshot, render_prometheus, reset_metrics, threads_seen, MetricsShard,
};

use metrics::Histogram;

/// Schema identifier embedded in every serialized trace. Version 3 adds a
/// per-span `thread` ordinal and a derived top-level `profile` section;
/// [`PipelineTrace::from_json_str`] still reads [`TRACE_SCHEMA_V1`] and
/// [`TRACE_SCHEMA_V2`] documents.
pub const TRACE_SCHEMA: &str = "cogent.trace.v3";

/// Version 2 (per-span `histograms` and `gauges`, no thread ids),
/// accepted by the reader; its spans parse with thread ordinal 0.
pub const TRACE_SCHEMA_V2: &str = "cogent.trace.v2";

/// The original schema (spans with counters only), accepted by the
/// reader for compatibility with traces recorded before histograms and
/// gauges existed.
pub const TRACE_SCHEMA_V1: &str = "cogent.trace.v1";

/// Environment variable that enables tracing for the CLI and benches.
pub const TRACE_ENV_VAR: &str = "COGENT_TRACE";

// ---------------------------------------------------------------------------
// Data model
// ---------------------------------------------------------------------------

/// One timed phase of the pipeline, with counters, histograms, gauges and
/// nested child spans.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Phase name, e.g. `"enumerate"` or `"simulate"`.
    pub name: String,
    /// Start offset in nanoseconds relative to the capture's start.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (always at least 1 once closed).
    pub duration_ns: u64,
    /// `phase.metric`-named counters, in first-touch order.
    pub counters: Vec<(String, u128)>,
    /// `phase.metric`-named log-bucketed histograms, in first-touch order.
    pub histograms: Vec<(String, Histogram)>,
    /// `phase.metric`-named last-value gauges, in first-touch order.
    pub gauges: Vec<(String, f64)>,
    /// [`thread_ordinal`] of the thread that recorded this span (0 for
    /// spans parsed from pre-v3 documents).
    pub thread: u32,
    /// Nested spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: &str, start_ns: u64) -> Self {
        NODES_ALLOCATED.fetch_add(1, Ordering::Relaxed);
        Self {
            name: name.to_string(),
            start_ns,
            duration_ns: 0,
            counters: Vec::new(),
            histograms: Vec::new(),
            gauges: Vec::new(),
            thread: thread_ordinal(),
            children: Vec::new(),
        }
    }

    /// Adds `value` to the counter `name`, creating it at zero if absent.
    pub fn add_counter(&mut self, name: &str, value: u128) {
        if let Some((_, v)) = self.counters.iter_mut().find(|(n, _)| n == name) {
            *v += value;
        } else {
            self.counters.push((name.to_string(), value));
        }
    }

    /// Records `value` into the histogram `name`, creating it if absent.
    pub fn record_histogram(&mut self, name: &str, value: u128) {
        if let Some((_, h)) = self.histograms.iter_mut().find(|(n, _)| n == name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.push((name.to_string(), h));
        }
    }

    /// Sets the gauge `name` to `value`, creating it if absent.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if let Some((_, g)) = self.gauges.iter_mut().find(|(n, _)| n == name) {
            *g = value;
        } else {
            self.gauges.push((name.to_string(), value));
        }
    }

    /// Returns the histogram `name` on this span, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Returns the value of gauge `name` on this span, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Returns the value of counter `name` on this span, if present.
    pub fn counter(&self, name: &str) -> Option<u128> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Depth-first search for the first descendant (or self) named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Collects every span (self included) named `name`, depth-first.
    pub fn find_all<'a>(&'a self, name: &str, out: &mut Vec<&'a SpanNode>) {
        if self.name == name {
            out.push(self);
        }
        for child in &self.children {
            child.find_all(name, out);
        }
    }

    /// Sums, over this subtree, every counter whose name starts with
    /// `prefix`.
    pub fn counter_sum_prefix(&self, prefix: &str) -> u128 {
        let own: u128 = self
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum();
        own + self
            .children
            .iter()
            .map(|c| c.counter_sum_prefix(prefix))
            .sum::<u128>()
    }

    fn rebase(&mut self, offset_ns: u64) {
        self.start_ns = self.start_ns.saturating_sub(offset_ns);
        for child in &mut self.children {
            child.rebase(offset_ns);
        }
    }
}

/// A finished trace of one pipeline run: a tree of [`SpanNode`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineTrace {
    /// The outermost span (usually `"generate"`).
    pub root: SpanNode,
}

impl PipelineTrace {
    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        self.root.find(name)
    }

    /// Collects every span named `name`, depth-first.
    pub fn find_all(&self, name: &str) -> Vec<&SpanNode> {
        let mut out = Vec::new();
        self.root.find_all(name, &mut out);
        out
    }

    /// Sums every counter in the trace whose name starts with `prefix`.
    pub fn counter_sum_prefix(&self, prefix: &str) -> u128 {
        self.root.counter_sum_prefix(prefix)
    }

    /// Renders an indented text tree with durations and counters.
    pub fn render_text(&self) -> String {
        render::render_text(self)
    }

    /// Serializes to the stable `cogent.trace.v3` JSON schema. Histograms
    /// carry their raw buckets plus derived `p50`/`p90`/`p99` summaries,
    /// and the document carries a derived per-phase `profile` section
    /// (see [`profile::PhaseProfile`]); both are recomputable and ignored
    /// by the reader, but convenient for downstream consumers.
    pub fn to_json(&self) -> json::Json {
        fn histogram(h: &Histogram) -> json::Json {
            let mut members = vec![
                ("count".into(), json::Json::UInt(h.count())),
                ("sum".into(), json::Json::UInt(h.sum())),
                ("min".into(), json::Json::UInt(h.min().unwrap_or(0))),
                ("max".into(), json::Json::UInt(h.max().unwrap_or(0))),
                (
                    "buckets".into(),
                    json::Json::Array(
                        h.buckets()
                            .iter()
                            .map(|&(b, c)| {
                                json::Json::Array(vec![
                                    json::Json::UInt(b.into()),
                                    json::Json::UInt(c),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ];
            for (key, value) in [("p50", h.p50()), ("p90", h.p90()), ("p99", h.p99())] {
                if let Some(v) = value {
                    members.push((key.into(), json::Json::UInt(v)));
                }
            }
            json::Json::Object(members)
        }
        fn node(span: &SpanNode) -> json::Json {
            json::Json::Object(vec![
                ("name".into(), json::Json::Str(span.name.clone())),
                ("start_ns".into(), json::Json::UInt(span.start_ns.into())),
                (
                    "duration_ns".into(),
                    json::Json::UInt(span.duration_ns.into()),
                ),
                (
                    "counters".into(),
                    json::Json::Object(
                        span.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), json::Json::UInt(*v)))
                            .collect(),
                    ),
                ),
                (
                    "histograms".into(),
                    json::Json::Object(
                        span.histograms
                            .iter()
                            .map(|(k, h)| (k.clone(), histogram(h)))
                            .collect(),
                    ),
                ),
                (
                    "gauges".into(),
                    json::Json::Object(
                        span.gauges
                            .iter()
                            .map(|(k, v)| (k.clone(), json::Json::Float(*v)))
                            .collect(),
                    ),
                ),
                ("thread".into(), json::Json::UInt(span.thread.into())),
                (
                    "children".into(),
                    json::Json::Array(span.children.iter().map(node).collect()),
                ),
            ])
        }
        json::Json::Object(vec![
            ("schema".into(), json::Json::Str(TRACE_SCHEMA.into())),
            ("root".into(), node(&self.root)),
            (
                "profile".into(),
                profile::PhaseProfile::from_trace(self).to_json(),
            ),
        ])
    }

    /// Serializes to a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses a trace previously produced by [`Self::to_json_string`].
    /// Accepts the current [`TRACE_SCHEMA`] plus the older
    /// [`TRACE_SCHEMA_V2`] (no thread ids: spans parse with thread 0) and
    /// counters-only [`TRACE_SCHEMA_V1`] (empty histogram and gauge
    /// tables as well). The derived `profile` section of v3 documents is
    /// ignored — it is recomputed on the next serialization.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON, the schema tag
    /// is missing or unknown, or a span field has the wrong type.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let value = json::Json::parse(text).map_err(|e| e.to_string())?;
        let schema = value
            .get("schema")
            .and_then(json::Json::as_str)
            .ok_or("missing schema tag")?;
        if schema != TRACE_SCHEMA && schema != TRACE_SCHEMA_V2 && schema != TRACE_SCHEMA_V1 {
            return Err(format!("unknown trace schema {schema:?}"));
        }
        fn histogram(value: &json::Json, key: &str) -> Result<Histogram, String> {
            let field = |name: &str| {
                value
                    .get(name)
                    .and_then(json::Json::as_u128)
                    .ok_or_else(|| format!("histogram {key:?} missing {name}"))
            };
            let buckets = value
                .get("buckets")
                .and_then(json::Json::as_array)
                .ok_or_else(|| format!("histogram {key:?} missing buckets"))?
                .iter()
                .map(|pair| {
                    let pair = pair.as_array().unwrap_or(&[]);
                    match (
                        pair.first().and_then(json::Json::as_u128),
                        pair.get(1).and_then(json::Json::as_u128),
                    ) {
                        (Some(b), Some(c)) if b < metrics::NUM_BUCKETS as u128 => Ok((b as u8, c)),
                        _ => Err(format!("histogram {key:?} has a malformed bucket")),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            Histogram::from_parts(
                field("count")?,
                field("sum")?,
                field("min")?,
                field("max")?,
                buckets,
            )
            .map_err(|e| format!("histogram {key:?}: {e}"))
        }
        fn node(value: &json::Json) -> Result<SpanNode, String> {
            let name = value
                .get("name")
                .and_then(json::Json::as_str)
                .ok_or("span missing name")?
                .to_string();
            let start_ns = value
                .get("start_ns")
                .and_then(json::Json::as_u128)
                .ok_or("span missing start_ns")? as u64;
            let duration_ns = value
                .get("duration_ns")
                .and_then(json::Json::as_u128)
                .ok_or("span missing duration_ns")? as u64;
            let counters = value
                .get("counters")
                .and_then(json::Json::as_object)
                .ok_or("span missing counters")?
                .iter()
                .map(|(k, v)| {
                    v.as_u128()
                        .map(|v| (k.clone(), v))
                        .ok_or_else(|| format!("counter {k:?} is not an unsigned integer"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            // Absent in v1 documents: default to empty tables.
            let histograms = match value.get("histograms") {
                None => Vec::new(),
                Some(h) => h
                    .as_object()
                    .ok_or("span histograms is not an object")?
                    .iter()
                    .map(|(k, v)| histogram(v, k).map(|h| (k.clone(), h)))
                    .collect::<Result<Vec<_>, _>>()?,
            };
            let gauges = match value.get("gauges") {
                None => Vec::new(),
                Some(g) => g
                    .as_object()
                    .ok_or("span gauges is not an object")?
                    .iter()
                    .map(|(k, v)| {
                        v.as_f64()
                            .map(|v| (k.clone(), v))
                            .ok_or_else(|| format!("gauge {k:?} is not a number"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            };
            // Absent before v3: default to thread ordinal 0.
            let thread = match value.get("thread") {
                None => 0,
                Some(t) => t
                    .as_u128()
                    .filter(|&t| t <= u128::from(u32::MAX))
                    .ok_or("span thread is not a u32")? as u32,
            };
            let children = value
                .get("children")
                .and_then(json::Json::as_array)
                .ok_or("span missing children")?
                .iter()
                .map(node)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SpanNode {
                name,
                start_ns,
                duration_ns,
                counters,
                histograms,
                gauges,
                thread,
                children,
            })
        }
        let root = node(value.get("root").ok_or("missing root span")?)?;
        Ok(Self { root })
    }
}

// ---------------------------------------------------------------------------
// Global switch and statistics
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static NODES_ALLOCATED: AtomicUsize = AtomicUsize::new(0);
static NEXT_THREAD_ORDINAL: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_ORDINAL: u32 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

/// Whether this build was compiled with the `strip` cargo feature, which
/// hard-disables the observability layer: [`enabled`] is then a
/// compile-time `false` and every probe folds to nothing. Used by the CI
/// overhead gate to compare the instrumented-but-disabled hot path
/// against a probe-free build.
pub const STRIPPED: bool = cfg!(feature = "strip");

/// Turns tracing on or off process-wide. Ignored in [`STRIPPED`] builds.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently enabled. A single relaxed atomic load
/// (a compile-time `false` in [`STRIPPED`] builds).
#[inline]
pub fn enabled() -> bool {
    !STRIPPED && ENABLED.load(Ordering::Relaxed)
}

/// Small dense ordinal of the calling thread, assigned on first use and
/// stable for the thread's lifetime. Recorded on every [`SpanNode`] so
/// multi-thread traces can be split back into per-worker timelines (the
/// [`chrome`] export uses it as the `tid`).
pub fn thread_ordinal() -> u32 {
    THREAD_ORDINAL.with(|t| *t)
}

/// Enables tracing when `COGENT_TRACE` is set to `1`, `true`, `on` or
/// `yes` (case-insensitive). Returns the resulting enabled state.
pub fn init_from_env() -> bool {
    if let Ok(value) = std::env::var(TRACE_ENV_VAR) {
        let v = value.to_ascii_lowercase();
        if matches!(v.as_str(), "1" | "true" | "on" | "yes") {
            set_enabled(true);
        }
    }
    enabled()
}

/// Total [`SpanNode`]s ever allocated by the tracing machinery. Used to
/// assert that disabled tracing allocates nothing.
pub fn nodes_allocated() -> usize {
    NODES_ALLOCATED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Thread-local collection
// ---------------------------------------------------------------------------

struct Builder {
    epoch: Instant,
    /// Open spans, outermost first. Parallel with `starts`.
    stack: Vec<SpanNode>,
    starts: Vec<Instant>,
}

impl Builder {
    fn push(&mut self, name: &str) {
        let start_ns = self.epoch.elapsed().as_nanos() as u64;
        self.stack.push(SpanNode::new(name, start_ns));
        self.starts.push(Instant::now());
    }

    fn pop(&mut self) -> SpanNode {
        let start = self.starts.pop().expect("span stack underflow");
        let mut node = self.stack.pop().expect("span stack underflow");
        node.duration_ns = (start.elapsed().as_nanos() as u64).max(1);
        node
    }
}

thread_local! {
    static BUILDER: RefCell<Option<Builder>> = const { RefCell::new(None) };
}

/// RAII guard for one pipeline phase; closing (dropping) it attaches the
/// span to its parent.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    active: bool,
}

/// Opens a span named `name` under the current thread's capture.
///
/// Inert (no allocation, no timing) when tracing is disabled or when no
/// [`Capture`] is open on this thread.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: false };
    }
    BUILDER.with(|cell| {
        let mut slot = cell.borrow_mut();
        match slot.as_mut() {
            Some(builder) => {
                builder.push(name);
                SpanGuard { active: true }
            }
            None => SpanGuard { active: false },
        }
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        BUILDER.with(|cell| {
            let mut slot = cell.borrow_mut();
            if let Some(builder) = slot.as_mut() {
                let node = builder.pop();
                registry::fold_span(&node);
                if let Some(parent) = builder.stack.last_mut() {
                    parent.children.push(node);
                }
                // A guard outliving its capture is a misuse; the node is
                // silently discarded rather than panicking in a destructor.
            }
        });
    }
}

/// Adds `value` to counter `name` on the innermost open span of the
/// current thread. A no-op when tracing is disabled or no span is open.
pub fn counter(name: &str, value: u128) {
    if !enabled() {
        return;
    }
    BUILDER.with(|cell| {
        let mut slot = cell.borrow_mut();
        if let Some(builder) = slot.as_mut() {
            if let Some(top) = builder.stack.last_mut() {
                top.add_counter(name, value);
            }
        }
    });
}

/// Records `value` into histogram `name` on the innermost open span of
/// the current thread. A no-op when tracing is disabled or no span is
/// open.
pub fn histogram(name: &str, value: u128) {
    if !enabled() {
        return;
    }
    BUILDER.with(|cell| {
        let mut slot = cell.borrow_mut();
        if let Some(builder) = slot.as_mut() {
            if let Some(top) = builder.stack.last_mut() {
                top.record_histogram(name, value);
            }
        }
    });
}

/// Sets gauge `name` to `value` on the innermost open span of the current
/// thread. A no-op when tracing is disabled or no span is open.
pub fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    BUILDER.with(|cell| {
        let mut slot = cell.borrow_mut();
        if let Some(builder) = slot.as_mut() {
            if let Some(top) = builder.stack.last_mut() {
                top.set_gauge(name, value);
            }
        }
    });
}

/// Opens (or nests into) a trace on the current thread.
///
/// The first `Capture` on a thread owns the trace; captures started while
/// another is open become nested spans, and their [`finish`](Self::finish)
/// returns a clone of just their subtree (with timestamps rebased to the
/// subtree start). Either way, `finish` returns `Some` whenever tracing
/// was enabled at start time.
#[must_use = "dropping a capture discards its trace; call finish()"]
pub struct Capture {
    active: bool,
    owns: bool,
}

impl Capture {
    /// Starts a capture named `name`. Inert when tracing is disabled.
    pub fn start(name: &str) -> Self {
        if !enabled() {
            return Self {
                active: false,
                owns: false,
            };
        }
        BUILDER.with(|cell| {
            let mut slot = cell.borrow_mut();
            match slot.as_mut() {
                Some(builder) => {
                    builder.push(name);
                    Self {
                        active: true,
                        owns: false,
                    }
                }
                None => {
                    let mut builder = Builder {
                        epoch: Instant::now(),
                        stack: Vec::new(),
                        starts: Vec::new(),
                    };
                    builder.push(name);
                    *slot = Some(builder);
                    Self {
                        active: true,
                        owns: true,
                    }
                }
            }
        })
    }

    /// Closes the capture and returns its trace (`None` when tracing was
    /// disabled at [`start`](Self::start)).
    pub fn finish(mut self) -> Option<PipelineTrace> {
        self.close()
    }

    fn close(&mut self) -> Option<PipelineTrace> {
        if !self.active {
            return None;
        }
        self.active = false;
        BUILDER.with(|cell| {
            let mut slot = cell.borrow_mut();
            let builder = slot.as_mut()?;
            let node = builder.pop();
            registry::fold_span(&node);
            if self.owns {
                *slot = None;
                Some(PipelineTrace { root: node })
            } else {
                let mut subtree = node.clone();
                if let Some(parent) = builder.stack.last_mut() {
                    parent.children.push(node);
                }
                let offset = subtree.start_ns;
                subtree.rebase(offset);
                Some(PipelineTrace { root: subtree })
            }
        })
    }
}

impl Drop for Capture {
    fn drop(&mut self) {
        // Keeps the thread-local stack balanced when a capture is dropped
        // without finish() (e.g. on an early return); the trace (or, for a
        // nested capture, its standalone clone) is discarded.
        let _ = self.close();
    }
}

// ---------------------------------------------------------------------------
// Cross-thread span relay
// ---------------------------------------------------------------------------

/// A handle that lets worker threads contribute spans to the trace open
/// on the forking thread. See [`fork`].
pub struct TraceFork {
    /// The parent capture's epoch, so worker `start_ns` offsets land on
    /// the same timeline as the parent's spans.
    epoch: Instant,
    /// Closed worker subtrees, keyed by the caller-supplied index so
    /// [`attach`](Self::attach) can order them deterministically.
    sink: Mutex<Vec<(usize, SpanNode)>>,
}

/// Forks the trace currently open on this thread for use by worker
/// threads. Returns `None` when tracing is disabled or no span is open
/// (workers then skip instrumentation entirely).
///
/// Workers call [`TraceFork::open`] to start a span recorded on *their*
/// thread (carrying their [`thread_ordinal`]); after joining them, the
/// forking thread calls [`TraceFork::attach`] to splice the collected
/// subtrees into the still-open parent span, sorted by worker index so
/// the merged trace is deterministic regardless of scheduling.
///
/// # Examples
///
/// ```
/// cogent_obs::set_enabled(true);
/// let capture = cogent_obs::Capture::start("search");
/// let fork = cogent_obs::fork().expect("capture is open");
/// std::thread::scope(|scope| {
///     for index in 0..2 {
///         let fork = &fork;
///         scope.spawn(move || {
///             let _w = fork.open("prune.worker", index);
///             cogent_obs::counter("prune.checked", 10);
///         });
///     }
/// });
/// fork.attach();
/// let trace = capture.finish().unwrap();
/// cogent_obs::set_enabled(false);
/// assert_eq!(trace.root.children.len(), 2);
/// assert_eq!(trace.counter_sum_prefix("prune.checked"), 20);
/// ```
pub fn fork() -> Option<TraceFork> {
    if !enabled() {
        return None;
    }
    BUILDER.with(|cell| {
        let slot = cell.borrow();
        slot.as_ref()
            .filter(|builder| !builder.stack.is_empty())
            .map(|builder| TraceFork {
                epoch: builder.epoch,
                sink: Mutex::new(Vec::new()),
            })
    })
}

impl TraceFork {
    /// Opens a span named `name` on the calling worker thread. When the
    /// guard drops, the closed subtree is handed back to the fork under
    /// `index` (workers must use distinct indices — chunk or job numbers).
    ///
    /// If the calling thread already has a trace open (nested
    /// parallelism), the span nests there instead of the fork, so spans
    /// are never lost or double-attached.
    pub fn open(&self, name: &str, index: usize) -> ForkGuard<'_> {
        BUILDER.with(|cell| {
            let mut slot = cell.borrow_mut();
            match slot.as_mut() {
                Some(builder) => {
                    builder.push(name);
                    ForkGuard {
                        fork: self,
                        index,
                        owns: false,
                    }
                }
                None => {
                    let mut builder = Builder {
                        epoch: self.epoch,
                        stack: Vec::new(),
                        starts: Vec::new(),
                    };
                    builder.push(name);
                    *slot = Some(builder);
                    ForkGuard {
                        fork: self,
                        index,
                        owns: true,
                    }
                }
            }
        })
    }

    /// Splices every collected worker subtree into the innermost span
    /// open on the calling thread, ordered by worker index. Call after
    /// joining the workers, while the forked span is still open. Subtrees
    /// are discarded if no span is open (e.g. the capture already closed).
    pub fn attach(self) {
        let mut nodes = self.sink.into_inner().unwrap_or_else(|e| e.into_inner());
        nodes.sort_by_key(|&(index, _)| index);
        BUILDER.with(|cell| {
            let mut slot = cell.borrow_mut();
            if let Some(builder) = slot.as_mut() {
                if let Some(top) = builder.stack.last_mut() {
                    top.children.extend(nodes.into_iter().map(|(_, node)| node));
                }
            }
        });
    }
}

/// RAII guard for a worker span opened through [`TraceFork::open`].
#[must_use = "dropping the guard immediately closes the worker span"]
pub struct ForkGuard<'fork> {
    fork: &'fork TraceFork,
    index: usize,
    /// Whether this guard installed the thread's builder (and must remove
    /// it and ship the span to the fork) or merely nested into one.
    owns: bool,
}

impl Drop for ForkGuard<'_> {
    fn drop(&mut self) {
        BUILDER.with(|cell| {
            let mut slot = cell.borrow_mut();
            let Some(builder) = slot.as_mut() else {
                return;
            };
            let node = builder.pop();
            registry::fold_span(&node);
            if self.owns {
                *slot = None;
                let mut sink = self.fork.sink.lock().unwrap_or_else(|e| e.into_inner());
                sink.push((self.index, node));
            } else if let Some(parent) = builder.stack.last_mut() {
                parent.children.push(node);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global flag.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_tracing<T>(f: impl FnOnce() -> T) -> T {
        let _guard = LOCK.lock().unwrap();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn capture_builds_span_tree() {
        let trace = with_tracing(|| {
            let capture = Capture::start("generate");
            {
                let _a = span("enumerate");
                counter("enumerate.configs", 10);
                counter("enumerate.configs", 5);
            }
            {
                let _b = span("prune");
                {
                    let _c = span("relax");
                }
            }
            capture.finish().unwrap()
        });
        assert_eq!(trace.root.name, "generate");
        assert_eq!(trace.root.children.len(), 2);
        let enumerate = &trace.root.children[0];
        assert_eq!(enumerate.counter("enumerate.configs"), Some(15));
        assert!(enumerate.duration_ns >= 1);
        assert_eq!(trace.root.children[1].children[0].name, "relax");
        assert!(trace.find("relax").is_some());
        assert!(trace.find("missing").is_none());
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _guard = LOCK.lock().unwrap();
        set_enabled(false);
        let before = nodes_allocated();
        let capture = Capture::start("generate");
        {
            let _s = span("enumerate");
            counter("enumerate.configs", 3);
        }
        assert!(capture.finish().is_none());
        assert_eq!(nodes_allocated(), before);
    }

    #[test]
    fn nested_capture_returns_subtree() {
        let (outer, inner) = with_tracing(|| {
            let outer = Capture::start("cli");
            let inner = Capture::start("generate");
            {
                let _s = span("codegen");
            }
            let inner_trace = inner.finish().unwrap();
            (outer.finish().unwrap(), inner_trace)
        });
        assert_eq!(inner.root.name, "generate");
        assert_eq!(inner.root.start_ns, 0, "nested capture is rebased");
        assert_eq!(inner.root.children[0].name, "codegen");
        // The outer trace still contains the full tree.
        assert_eq!(outer.root.name, "cli");
        assert!(outer.find("codegen").is_some());
    }

    #[test]
    fn counter_sum_prefix_walks_subtree() {
        let trace = with_tracing(|| {
            let capture = Capture::start("generate");
            {
                let _s = span("prune");
                counter("prune.reject.smem", 7);
                counter("prune.reject.regs", 3);
                counter("prune.survivors", 100);
            }
            capture.finish().unwrap()
        });
        assert_eq!(trace.counter_sum_prefix("prune.reject."), 10);
        assert_eq!(trace.counter_sum_prefix("prune."), 110);
    }

    #[test]
    fn span_without_capture_is_inert() {
        with_tracing(|| {
            let before = nodes_allocated();
            let _s = span("orphan");
            counter("orphan.count", 1);
            assert_eq!(nodes_allocated(), before);
        });
    }

    #[test]
    fn dropped_capture_keeps_stack_balanced() {
        let trace = with_tracing(|| {
            {
                let _abandoned = Capture::start("abandoned");
                let _s = span("child");
            }
            let capture = Capture::start("fresh");
            capture.finish().unwrap()
        });
        assert_eq!(trace.root.name, "fresh");
        assert!(trace.root.children.is_empty());
    }

    #[test]
    fn json_round_trip_preserves_trace() {
        let trace = with_tracing(|| {
            let capture = Capture::start("generate");
            {
                let _s = span("simulate");
                counter("sim.transactions.load_a", u128::from(u64::MAX) + 7);
            }
            capture.finish().unwrap()
        });
        let text = trace.to_json_string();
        let back = PipelineTrace::from_json_str(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn histograms_and_gauges_attach_to_spans() {
        let trace = with_tracing(|| {
            let capture = Capture::start("audit");
            {
                let _s = span("contraction");
                histogram("audit.rel_error_ppm", 12_000);
                histogram("audit.rel_error_ppm", 45_000);
                histogram("audit.rel_error_ppm", 3_000);
                gauge("audit.spearman", 0.5);
                gauge("audit.spearman", 0.97); // overwrites
            }
            capture.finish().unwrap()
        });
        let span = &trace.root.children[0];
        let h = span.histogram("audit.rel_error_ppm").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(3_000));
        assert_eq!(h.max(), Some(45_000));
        assert_eq!(span.gauge("audit.spearman"), Some(0.97));
        assert_eq!(span.gauge("missing"), None);
    }

    #[test]
    fn v3_round_trip_preserves_metrics() {
        let trace = with_tracing(|| {
            let capture = Capture::start("audit");
            histogram("lat_ns", 1);
            histogram("lat_ns", 900);
            histogram("lat_ns", u128::from(u64::MAX) + 1);
            gauge("occupancy", 0.75);
            gauge("regret", 0.0);
            capture.finish().unwrap()
        });
        let text = trace.to_json_string();
        assert!(text.contains("\"schema\":\"cogent.trace.v3\""));
        assert!(text.contains("\"profile\":"));
        let back = PipelineTrace::from_json_str(&text).unwrap();
        assert_eq!(back, trace);
        let h = back.root.histogram("lat_ns").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.p99(), Some(u128::from(u64::MAX) + 1));
    }

    #[test]
    fn reads_v1_documents_without_metrics() {
        // A document as PR 1's writer produced it: counters only.
        let v1 = concat!(
            r#"{"schema":"cogent.trace.v1","root":{"name":"generate","#,
            r#""start_ns":0,"duration_ns":500,"#,
            r#""counters":{"enumerate.configs":1296},"children":[]}}"#,
        );
        let trace = PipelineTrace::from_json_str(v1).unwrap();
        assert_eq!(trace.root.name, "generate");
        assert_eq!(trace.root.counter("enumerate.configs"), Some(1296));
        assert!(trace.root.histograms.is_empty());
        assert!(trace.root.gauges.is_empty());
        assert_eq!(trace.root.thread, 0);
        // Re-serializing upgrades the document to v3.
        assert!(trace
            .to_json_string()
            .contains("\"schema\":\"cogent.trace.v3\""));
    }

    #[test]
    fn reads_v2_documents_without_thread_ids() {
        // A document as PR 3's writer produced it: metrics, no thread ids.
        let v2 = concat!(
            r#"{"schema":"cogent.trace.v2","root":{"name":"generate","#,
            r#""start_ns":0,"duration_ns":500,"counters":{},"#,
            r#""histograms":{},"gauges":{"occupancy":0.5},"#,
            r#""children":[{"name":"prune","start_ns":10,"duration_ns":20,"#,
            r#""counters":{"prune.checked":9},"histograms":{},"gauges":{},"#,
            r#""children":[]}]}}"#,
        );
        let trace = PipelineTrace::from_json_str(v2).unwrap();
        assert_eq!(trace.root.gauge("occupancy"), Some(0.5));
        assert_eq!(trace.root.children[0].counter("prune.checked"), Some(9));
        assert_eq!(trace.root.thread, 0);
        assert_eq!(trace.root.children[0].thread, 0);
        // Round trip: upgrade to v3, parse back, identical tree.
        let upgraded = trace.to_json_string();
        assert!(upgraded.contains("\"schema\":\"cogent.trace.v3\""));
        assert!(upgraded.contains("\"thread\":0"));
        assert_eq!(PipelineTrace::from_json_str(&upgraded).unwrap(), trace);
    }

    #[test]
    fn fork_relays_worker_spans_in_index_order() {
        let trace = with_tracing(|| {
            let capture = Capture::start("search");
            {
                let _prune = span("prune");
                let fork = fork().expect("span is open");
                std::thread::scope(|scope| {
                    for index in [1usize, 0] {
                        let fork = &fork;
                        scope.spawn(move || {
                            let _w = fork.open("prune.worker", index);
                            counter("prune.checked", (index as u128 + 1) * 10);
                        });
                    }
                });
                fork.attach();
            }
            capture.finish().unwrap()
        });
        let prune = trace.find("prune").unwrap();
        assert_eq!(prune.children.len(), 2);
        // Attached in index order, not join order.
        assert_eq!(prune.children[0].counter("prune.checked"), Some(10));
        assert_eq!(prune.children[1].counter("prune.checked"), Some(20));
        // Worker spans carry their own thread ordinals, distinct from the
        // forking thread's and from each other.
        let tids: Vec<u32> = prune.children.iter().map(|c| c.thread).collect();
        assert_ne!(tids[0], tids[1]);
        assert!(tids.iter().all(|&t| t != prune.thread));
        // Worker timelines share the parent epoch.
        for child in &prune.children {
            assert!(child.start_ns >= prune.start_ns);
        }
    }

    #[test]
    fn fork_requires_tracing_and_an_open_span() {
        let _guard = LOCK.lock().unwrap();
        set_enabled(false);
        assert!(fork().is_none());
        set_enabled(true);
        assert!(fork().is_none(), "no capture is open");
        let capture = Capture::start("c");
        assert!(fork().is_some());
        drop(capture);
        set_enabled(false);
    }

    #[test]
    fn from_json_rejects_inconsistent_histogram() {
        let bad = concat!(
            r#"{"schema":"cogent.trace.v2","root":{"name":"g","#,
            r#""start_ns":0,"duration_ns":1,"counters":{},"#,
            r#""histograms":{"h":{"count":5,"sum":9,"min":1,"max":8,"#,
            r#""buckets":[[1,2]]}},"gauges":{},"children":[]}}"#,
        );
        let err = PipelineTrace::from_json_str(bad).unwrap_err();
        assert!(err.contains("bucket counts sum to 2"), "{err}");
    }

    #[test]
    fn from_json_rejects_bad_schema() {
        assert!(PipelineTrace::from_json_str("{}").is_err());
        assert!(
            PipelineTrace::from_json_str(r#"{"schema":"other.v9","root":{}}"#)
                .unwrap_err()
                .contains("unknown trace schema")
        );
    }

    #[test]
    fn env_var_enables_tracing() {
        let _guard = LOCK.lock().unwrap();
        // Only exercise the "unset" path deterministically; mutating the
        // process environment would race other tests.
        if std::env::var(TRACE_ENV_VAR).is_err() {
            set_enabled(false);
            assert!(!init_from_env());
        }
    }
}
