//! A request-scoped **flight recorder**: a bounded, always-on ring
//! buffer of per-request event timelines for `cogent serve`.
//!
//! Process-global metrics ([`crate::registry`]) answer "how is the
//! server doing overall"; the flight recorder answers "what did *that*
//! request do". Each admitted request carries a [`FlightTimeline`] that
//! marks coarse lifecycle seams (`accepted` → `queued` → `started` →
//! search phases → `responded`) plus outcome facts (status, cache
//! hit/miss, truncation, provenance). When the request finishes, the
//! closed [`FlightRecord`] is pushed into a [`FlightRecorder`] — a
//! fixed-size slot ring whose write path is one `fetch_add` to claim a
//! slot plus one uncontended per-slot mutex store, so recording costs
//! nanoseconds and the buffer never grows.
//!
//! Dumps serialize as the stable `cogent.flight.v1` schema
//! ([`FLIGHT_SCHEMA`]); [`parse_dump`] reads them back, and
//! [`FlightRecord::to_trace`] lowers a timeline to a synthetic
//! [`PipelineTrace`] so the existing [`crate::profile::PhaseProfile`]
//! machinery can attribute time across many requests.
//!
//! In [`crate::STRIPPED`] builds [`FlightRecorder::record`] compiles to
//! nothing, matching the rest of the observability layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;
use crate::{PipelineTrace, SpanNode};

/// Schema identifier embedded in every flight dump.
pub const FLIGHT_SCHEMA: &str = "cogent.flight.v1";

/// One timestamped seam in a request's lifecycle, offset from the moment
/// the connection was accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// What happened, e.g. `"queued"` or `"phase:prune"`.
    pub label: String,
    /// Nanoseconds since the request was accepted.
    pub at_ns: u64,
}

/// The closed record of one request: identity, outcome, and timeline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlightRecord {
    /// The request id (client-supplied `X-Request-Id` or generated).
    pub id: String,
    /// Endpoint label, e.g. `"generate"` or `"healthz"`.
    pub endpoint: String,
    /// Final HTTP status.
    pub status: u16,
    /// Time spent waiting in the admission queue.
    pub queue_wait_ns: u64,
    /// Time spent inside the kernel search (0 for non-search requests).
    pub search_ns: u64,
    /// Accepted → responded wall time.
    pub total_ns: u64,
    /// Cache outcome: `"hit"`, `"miss"`, or `""` when not applicable.
    pub cache: String,
    /// Whether the search was truncated by the deadline budget.
    pub truncated: bool,
    /// Plan provenance summary (empty when not applicable).
    pub provenance: String,
    /// The event timeline, sorted by `at_ns`.
    pub events: Vec<FlightEvent>,
}

impl FlightRecord {
    /// Serializes one record (an element of a dump's `requests` array).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("endpoint", Json::Str(self.endpoint.clone())),
            ("status", Json::UInt(u128::from(self.status))),
            ("queue_wait_ns", Json::UInt(u128::from(self.queue_wait_ns))),
            ("search_ns", Json::UInt(u128::from(self.search_ns))),
            ("total_ns", Json::UInt(u128::from(self.total_ns))),
            ("cache", Json::Str(self.cache.clone())),
            ("truncated", Json::Bool(self.truncated)),
            ("provenance", Json::Str(self.provenance.clone())),
            (
                "events",
                Json::Array(
                    self.events
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("label", Json::Str(e.label.clone())),
                                ("at_ns", Json::UInt(u128::from(e.at_ns))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses one record previously produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// A message naming the missing or mistyped member.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        fn str_member(value: &Json, name: &str) -> Result<String, String> {
            value
                .get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("flight record missing string {name:?}"))
        }
        fn u64_member(value: &Json, name: &str) -> Result<u64, String> {
            value
                .get(name)
                .and_then(Json::as_u128)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("flight record missing integer {name:?}"))
        }
        let status = u64_member(value, "status")?;
        let status = u16::try_from(status).map_err(|_| format!("status {status} is not a u16"))?;
        let truncated = match value.get("truncated") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("flight record missing bool \"truncated\"".to_string()),
        };
        let events = value
            .get("events")
            .and_then(Json::as_array)
            .ok_or("flight record missing events array")?
            .iter()
            .map(|e| {
                Ok(FlightEvent {
                    label: str_member(e, "label")?,
                    at_ns: u64_member(e, "at_ns")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            id: str_member(value, "id")?,
            endpoint: str_member(value, "endpoint")?,
            status,
            queue_wait_ns: u64_member(value, "queue_wait_ns")?,
            search_ns: u64_member(value, "search_ns")?,
            total_ns: u64_member(value, "total_ns")?,
            cache: str_member(value, "cache")?,
            truncated,
            provenance: str_member(value, "provenance")?,
            events,
        })
    }

    /// One compact JSON line for the access log: the outcome facts
    /// without the event timeline.
    pub fn access_log_line(&self) -> String {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("endpoint", Json::Str(self.endpoint.clone())),
            ("status", Json::UInt(u128::from(self.status))),
            ("queue_wait_ns", Json::UInt(u128::from(self.queue_wait_ns))),
            ("search_ns", Json::UInt(u128::from(self.search_ns))),
            ("total_ns", Json::UInt(u128::from(self.total_ns))),
            ("cache", Json::Str(self.cache.clone())),
            ("truncated", Json::Bool(self.truncated)),
        ])
        .to_string()
    }

    /// Lowers the timeline to a synthetic [`PipelineTrace`] so
    /// [`crate::profile::PhaseProfile`] can attribute time across
    /// requests: the root span is named `"request"` and each child
    /// covers the interval from one event to the next, named after the
    /// earlier event.
    pub fn to_trace(&self) -> PipelineTrace {
        let children: Vec<SpanNode> = self
            .events
            .windows(2)
            .map(|pair| SpanNode {
                name: pair[0].label.clone(),
                start_ns: pair[0].at_ns,
                duration_ns: pair[1].at_ns.saturating_sub(pair[0].at_ns).max(1),
                counters: Vec::new(),
                histograms: Vec::new(),
                gauges: Vec::new(),
                thread: 0,
                children: Vec::new(),
            })
            .collect();
        PipelineTrace {
            root: SpanNode {
                name: "request".to_string(),
                start_ns: 0,
                duration_ns: self.total_ns.max(1),
                counters: Vec::new(),
                histograms: Vec::new(),
                gauges: Vec::new(),
                thread: 0,
                children,
            },
        }
    }
}

/// An open, per-request timeline. Owned by whichever thread currently
/// holds the request (connection thread, then worker, then connection
/// thread again); closing it with [`finish`](Self::finish) yields the
/// immutable [`FlightRecord`].
#[derive(Debug)]
pub struct FlightTimeline {
    epoch: Instant,
    record: FlightRecord,
}

impl FlightTimeline {
    /// Opens a timeline whose clock starts now.
    pub fn start(id: &str, endpoint: &str) -> Self {
        Self::start_at(Instant::now(), id, endpoint)
    }

    /// Opens a timeline against an earlier epoch (the connection-accept
    /// instant), so `accepted` sits at offset 0 of that clock.
    pub fn start_at(epoch: Instant, id: &str, endpoint: &str) -> Self {
        Self {
            epoch,
            record: FlightRecord {
                id: id.to_string(),
                endpoint: endpoint.to_string(),
                events: vec![FlightEvent {
                    label: "accepted".to_string(),
                    at_ns: 0,
                }],
                ..FlightRecord::default()
            },
        }
    }

    /// A throwaway timeline for unit tests and non-server callers of
    /// [`execute`](../../cogent_core/serve/handlers/fn.execute.html).
    pub fn detached() -> Self {
        Self::start("detached", "test")
    }

    /// The request id this timeline records.
    pub fn id(&self) -> &str {
        &self.record.id
    }

    /// Nanoseconds elapsed since the timeline's epoch.
    pub fn elapsed_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The epoch this timeline's offsets are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Marks an event at the current instant; returns its offset.
    pub fn mark(&mut self, label: &str) -> u64 {
        let at_ns = self.elapsed_ns();
        self.mark_at(label, at_ns);
        at_ns
    }

    /// Marks an event at an explicit offset (used to splice search-phase
    /// seams recorded on another clock).
    pub fn mark_at(&mut self, label: &str, at_ns: u64) {
        self.record.events.push(FlightEvent {
            label: label.to_string(),
            at_ns,
        });
    }

    /// Records the admission-queue wait.
    pub fn set_queue_wait_ns(&mut self, ns: u64) {
        self.record.queue_wait_ns = ns;
    }

    /// Records the in-search time.
    pub fn set_search_ns(&mut self, ns: u64) {
        self.record.search_ns = ns;
    }

    /// Adds to the in-search time (batch requests accumulate one search
    /// per job).
    pub fn add_search_ns(&mut self, ns: u64) {
        self.record.search_ns = self.record.search_ns.saturating_add(ns);
    }

    /// Records the cache outcome (`"hit"` / `"miss"`).
    pub fn set_cache(&mut self, cache: &str) {
        self.record.cache = cache.to_string();
    }

    /// Records whether the search was budget-truncated.
    pub fn set_truncated(&mut self, truncated: bool) {
        self.record.truncated = truncated;
    }

    /// Records the plan provenance summary.
    pub fn set_provenance(&mut self, provenance: &str) {
        self.record.provenance = provenance.to_string();
    }

    /// Closes the timeline: marks `responded`, fixes the total duration,
    /// sorts events by offset (stable, so same-instant events keep
    /// insertion order), and returns the record.
    pub fn finish(mut self, status: u16) -> FlightRecord {
        let at_ns = self.mark("responded");
        self.record.status = status;
        self.record.total_ns = at_ns.max(1);
        self.record.events.sort_by_key(|e| e.at_ns);
        self.record
    }
}

/// The bounded ring of recent [`FlightRecord`]s.
///
/// Writers claim a slot with one atomic `fetch_add` and store under that
/// slot's own mutex — two writers only contend when the ring has wrapped
/// all the way around between them. Readers ([`snapshot`](Self::snapshot))
/// lock slots one at a time, so a dump never blocks the request path for
/// more than one slot store.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightRecord>>>,
    pushes: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder holding the last `capacity` requests
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            pushes: AtomicU64::new(0),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (not the count currently held).
    pub fn recorded(&self) -> u64 {
        self.pushes.load(Ordering::Relaxed)
    }

    /// Pushes one closed record, overwriting the oldest once the ring is
    /// full. Compiled out in [`crate::STRIPPED`] builds.
    pub fn record(&self, record: FlightRecord) {
        if crate::STRIPPED {
            return;
        }
        let n = self.pushes.fetch_add(1, Ordering::Relaxed);
        let slot = (n % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(record);
    }

    /// The retained records, oldest first.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let capacity = self.slots.len() as u64;
        let total = self.pushes.load(Ordering::Relaxed);
        let (start, count) = if total <= capacity {
            (0, total)
        } else {
            (total % capacity, capacity)
        };
        (0..count)
            .filter_map(|i| {
                let slot = ((start + i) % capacity) as usize;
                self.slots[slot]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone()
            })
            .collect()
    }

    /// Serializes the current ring contents as a `cogent.flight.v1` dump.
    pub fn to_json(&self) -> Json {
        let requests = self.snapshot();
        Json::obj([
            ("schema", Json::Str(FLIGHT_SCHEMA.to_string())),
            ("capacity", Json::UInt(self.capacity() as u128)),
            ("recorded", Json::UInt(u128::from(self.recorded()))),
            (
                "requests",
                Json::Array(requests.iter().map(FlightRecord::to_json).collect()),
            ),
        ])
    }
}

/// Parses a `cogent.flight.v1` dump back into its records.
///
/// # Errors
///
/// A message when the text is not JSON, the schema tag is missing or
/// unknown, or a record is malformed.
pub fn parse_dump(text: &str) -> Result<Vec<FlightRecord>, String> {
    let value = Json::parse(text).map_err(|e| e.to_string())?;
    let schema = value
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema tag")?;
    if schema != FLIGHT_SCHEMA {
        return Err(format!("unknown flight schema {schema:?}"));
    }
    value
        .get("requests")
        .and_then(Json::as_array)
        .ok_or("missing requests array")?
        .iter()
        .map(FlightRecord::from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PhaseProfile;

    fn record(id: &str, total_ns: u64) -> FlightRecord {
        FlightRecord {
            id: id.to_string(),
            endpoint: "generate".to_string(),
            status: 200,
            queue_wait_ns: 10,
            search_ns: total_ns / 2,
            total_ns,
            cache: "miss".to_string(),
            truncated: false,
            provenance: "search".to_string(),
            events: vec![
                FlightEvent {
                    label: "accepted".to_string(),
                    at_ns: 0,
                },
                FlightEvent {
                    label: "started".to_string(),
                    at_ns: total_ns / 4,
                },
                FlightEvent {
                    label: "responded".to_string(),
                    at_ns: total_ns,
                },
            ],
        }
    }

    #[test]
    fn timeline_marks_are_monotonic_and_sorted() {
        let mut timeline = FlightTimeline::start("req-1", "generate");
        let a = timeline.mark("queued");
        let b = timeline.mark("started");
        assert!(b >= a);
        // Out-of-order explicit mark: finish() restores sorted order.
        timeline.mark_at("phase:enumerate", 1);
        timeline.set_cache("miss");
        timeline.set_truncated(true);
        timeline.set_provenance("search");
        let record = timeline.finish(200);
        assert_eq!(record.id, "req-1");
        assert_eq!(record.status, 200);
        assert_eq!(record.cache, "miss");
        assert!(record.truncated);
        assert!(record.total_ns >= b);
        assert_eq!(
            record.events.first().map(|e| e.label.as_str()),
            Some("accepted")
        );
        assert_eq!(
            record.events.last().map(|e| e.label.as_str()),
            Some("responded")
        );
        let offsets: Vec<u64> = record.events.iter().map(|e| e.at_ns).collect();
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        assert_eq!(offsets, sorted);
    }

    #[test]
    fn ring_keeps_newest_records_in_order() {
        if crate::STRIPPED {
            return;
        }
        let recorder = FlightRecorder::new(3);
        assert!(recorder.snapshot().is_empty());
        for i in 0..5u64 {
            recorder.record(record(&format!("req-{i}"), 100 + i));
        }
        assert_eq!(recorder.recorded(), 5);
        let ids: Vec<String> = recorder.snapshot().into_iter().map(|r| r.id).collect();
        assert_eq!(ids, ["req-2", "req-3", "req-4"]);
    }

    #[test]
    fn concurrent_pushes_never_lose_the_count() {
        if crate::STRIPPED {
            return;
        }
        let recorder = std::sync::Arc::new(FlightRecorder::new(8));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let recorder = std::sync::Arc::clone(&recorder);
                scope.spawn(move || {
                    for i in 0..25 {
                        recorder.record(record(&format!("t{t}-{i}"), 1));
                    }
                });
            }
        });
        assert_eq!(recorder.recorded(), 100);
        assert_eq!(recorder.snapshot().len(), 8);
    }

    #[test]
    fn dump_round_trips_through_the_schema() {
        if crate::STRIPPED {
            return;
        }
        let recorder = FlightRecorder::new(4);
        recorder.record(record("req-a", 1000));
        recorder.record(record("req-b", 2000));
        let mut text = String::new();
        recorder.to_json().write(&mut text);
        assert!(text.contains("\"schema\":\"cogent.flight.v1\""));
        let back = parse_dump(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], record("req-a", 1000));
        assert_eq!(back[1], record("req-b", 2000));
    }

    #[test]
    fn parse_dump_rejects_bad_schemas() {
        assert!(parse_dump("not json").is_err());
        assert!(parse_dump("{}").unwrap_err().contains("missing schema"));
        assert!(parse_dump(r#"{"schema":"other.v9","requests":[]}"#)
            .unwrap_err()
            .contains("unknown flight schema"));
        assert!(parse_dump(r#"{"schema":"cogent.flight.v1","requests":[{}]}"#).is_err());
    }

    #[test]
    fn to_trace_feeds_phase_profile() {
        let r = record("req-a", 1000);
        let trace = r.to_trace();
        assert_eq!(trace.root.name, "request");
        assert_eq!(trace.root.duration_ns, 1000);
        // Two intervals: accepted→started, started→responded.
        assert_eq!(trace.root.children.len(), 2);
        let profile = PhaseProfile::from_trace(&trace);
        let mut merged = profile.clone();
        merged.merge(&PhaseProfile::from_trace(&record("req-b", 3000).to_trace()));
        assert_eq!(merged.runs, 2);
        assert_eq!(merged.wall_ns, 4000);
        assert!(merged.phases.iter().any(|p| p.name == "started"));
    }
}
