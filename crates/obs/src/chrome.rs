//! Chrome trace-event export: renders a [`PipelineTrace`] span timeline
//! as the JSON Array Format understood by `chrome://tracing` and
//! Perfetto (<https://ui.perfetto.dev>).
//!
//! Each span becomes one complete (`"ph": "X"`) event with microsecond
//! `ts`/`dur`; counters and gauges ride along in `args` so they show in
//! the event detail pane. Every span's recording thread (its
//! [`SpanNode::thread`] ordinal) becomes the event `tid`, so a trace
//! containing relayed worker spans (see [`crate::fork`]) renders one
//! timeline row per worker; a `thread_name` metadata event labels each
//! row.

use std::collections::BTreeSet;

use crate::json::Json;
use crate::{PipelineTrace, SpanNode};

/// Converts `trace` into a Chrome trace-event JSON document.
///
/// # Examples
///
/// ```
/// cogent_obs::set_enabled(true);
/// let capture = cogent_obs::Capture::start("generate");
/// drop(cogent_obs::span("enumerate"));
/// let trace = capture.finish().unwrap();
/// cogent_obs::set_enabled(false);
///
/// let doc = cogent_obs::chrome::to_chrome_trace(&trace);
/// let events = doc.get("traceEvents").unwrap().as_array().unwrap();
/// // One thread_name metadata event plus one complete event per span.
/// assert_eq!(events.len(), 3);
/// ```
pub fn to_chrome_trace(trace: &PipelineTrace) -> Json {
    let mut events = Vec::new();
    let mut tids = BTreeSet::new();
    collect_tids(&trace.root, &mut tids);
    for &tid in &tids {
        let label = if tid == trace.root.thread {
            format!("t{tid} (capture)")
        } else {
            format!("t{tid} (worker)")
        };
        events.push(Json::obj([
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(1u64)),
            ("tid", Json::UInt(tid.into())),
            ("args", Json::obj([("name", Json::Str(label))])),
        ]));
    }
    push_events(&trace.root, &mut events);
    Json::obj([
        ("traceEvents", Json::Array(events)),
        ("displayTimeUnit", Json::from("ns")),
    ])
}

fn collect_tids(span: &SpanNode, out: &mut BTreeSet<u32>) {
    out.insert(span.thread);
    for child in &span.children {
        collect_tids(child, out);
    }
}

/// Serializes [`to_chrome_trace`] output as a compact JSON string.
pub fn to_chrome_trace_string(trace: &PipelineTrace) -> String {
    to_chrome_trace(trace).to_string()
}

fn push_events(span: &SpanNode, out: &mut Vec<Json>) {
    let mut args: Vec<(String, Json)> = span
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
        .collect();
    args.extend(
        span.gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::Float(*v))),
    );
    for (k, h) in &span.histograms {
        let mut summary = vec![
            ("count".to_string(), Json::UInt(h.count())),
            ("mean".to_string(), Json::Float(h.mean().unwrap_or(0.0))),
        ];
        for (name, value) in [("p50", h.p50()), ("p90", h.p90()), ("p99", h.p99())] {
            if let Some(v) = value {
                summary.push((name.to_string(), Json::UInt(v)));
            }
        }
        args.push((k.clone(), Json::Object(summary)));
    }
    out.push(Json::obj([
        ("name", Json::Str(span.name.clone())),
        ("ph", Json::from("X")),
        // Trace-event timestamps are in microseconds (fractions allowed).
        ("ts", Json::Float(span.start_ns as f64 / 1_000.0)),
        ("dur", Json::Float(span.duration_ns as f64 / 1_000.0)),
        ("pid", Json::from(1u64)),
        ("tid", Json::UInt(span.thread.into())),
        ("args", Json::Object(args)),
    ]));
    for child in &span.children {
        push_events(child, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn leaf(name: &str, start_ns: u64, duration_ns: u64) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            start_ns,
            duration_ns,
            counters: Vec::new(),
            histograms: Vec::new(),
            gauges: Vec::new(),
            thread: 0,
            children: Vec::new(),
        }
    }

    #[test]
    fn emits_one_complete_event_per_span() {
        let mut root = leaf("generate", 0, 10_000);
        root.counters.push(("enumerate.configs".to_string(), 42));
        root.gauges.push(("occupancy".to_string(), 0.5));
        let mut h = Histogram::new();
        h.record(100);
        root.histograms.push(("lat".to_string(), h));
        root.children.push(leaf("prune", 2_000, 3_000));
        let doc = to_chrome_trace(&PipelineTrace { root });
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // One thread_name metadata event, then the two span events.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        let first = &events[1];
        assert_eq!(first.get("name").unwrap().as_str(), Some("generate"));
        assert_eq!(first.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(first.get("ts").unwrap().as_f64(), Some(0.0));
        assert_eq!(first.get("dur").unwrap().as_f64(), Some(10.0));
        let args = first.get("args").unwrap();
        assert_eq!(args.get("enumerate.configs").unwrap().as_u128(), Some(42));
        assert_eq!(args.get("occupancy").unwrap().as_f64(), Some(0.5));
        assert_eq!(
            args.get("lat").unwrap().get("p50").unwrap().as_u128(),
            Some(100)
        );
        assert_eq!(events[2].get("ts").unwrap().as_f64(), Some(2.0));
        // The document must parse as standalone JSON.
        assert!(Json::parse(&doc.to_string()).is_ok());
    }

    #[test]
    fn worker_spans_render_on_their_own_timeline_rows() {
        let mut root = leaf("search", 0, 10_000);
        let mut prune = leaf("prune", 1_000, 5_000);
        let mut w0 = leaf("prune.worker", 1_100, 2_000);
        w0.thread = 5;
        let mut w1 = leaf("prune.worker", 1_100, 2_100);
        w1.thread = 6;
        prune.children.push(w0);
        prune.children.push(w1);
        root.children.push(prune);
        let doc = to_chrome_trace(&PipelineTrace { root });
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Three distinct tids → three metadata events + four span events.
        assert_eq!(events.len(), 7);
        let span_tids: std::collections::BTreeSet<u128> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| e.get("tid").unwrap().as_u128().unwrap())
            .collect();
        assert_eq!(span_tids.into_iter().collect::<Vec<_>>(), vec![0, 5, 6]);
        let meta_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(
            meta_names,
            vec!["t0 (capture)", "t5 (worker)", "t6 (worker)"]
        );
    }
}
