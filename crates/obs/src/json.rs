//! A hand-rolled JSON subset: enough to serialize and parse pipeline
//! traces (and the bench binaries' JSONL records) without external
//! crates.
//!
//! Unsigned integers are kept exact as `u128` (counters can exceed the
//! `f64` mantissa); other numbers parse to `f64`. Object member order is
//! preserved.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact.
    UInt(u128),
    /// Any other number (negative or fractional).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; member order preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a non-negative integer.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number. Integers convert (a
    /// whole-valued float like `2.0` serializes as `2` and parses back as
    /// [`Json::UInt`], so gauge readers must accept both).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    ///
    /// # Examples
    ///
    /// ```
    /// use cogent_obs::json::Json;
    ///
    /// let v = Json::obj([("n", Json::from(3u128)), ("ok", Json::from(true))]);
    /// assert_eq!(v.to_string(), r#"{"n":3,"ok":true}"#);
    /// ```
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax problem, with
    /// its byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters"));
        }
        Ok(value)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u128> for Json {
    fn from(v: u128) -> Self {
        Json::UInt(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v as u128)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u128)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Array(items)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                None => return Err(self.error("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.error("bad escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'u' => {
                let high = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: expect a following \uXXXX low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let low = self.hex4()?;
                        0x10000 + ((high - 0xD800) << 10) + (low.wrapping_sub(0xDC00) & 0x3FF)
                    } else {
                        return Err(self.error("unpaired surrogate"));
                    }
                } else {
                    high
                };
                char::from_u32(code).ok_or_else(|| self.error("invalid \\u escape"))?
            }
            _ => return Err(self.error("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.error("short \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.error("bad hex digit"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_integer = true;
        if self.peek() == Some(b'.') {
            is_integer = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_integer = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if is_integer {
            if let Ok(v) = text.parse::<u128>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_values() {
        let value = Json::Object(vec![
            ("name".into(), Json::Str("a \"b\"\n\tc \\ d".into())),
            ("big".into(), Json::UInt(u128::MAX)),
            (
                "list".into(),
                Json::Array(vec![Json::Null, Json::Bool(true), Json::UInt(0)]),
            ),
            ("empty".into(), Json::Object(vec![])),
        ]);
        let text = value.to_string();
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-3").unwrap(), Json::Float(-3.0));
        assert_eq!(Json::parse("2.5e2").unwrap(), Json::Float(250.0));
        assert_eq!(
            Json::parse("340282366920938463463374607431768211455").unwrap(),
            Json::UInt(u128::MAX)
        );
    }

    #[test]
    fn parses_escapes() {
        assert_eq!(Json::parse(r#""é\nA""#).unwrap(), Json::Str("é\nA".into()));
        // Surrogate-pair escape for U+1F600, and the raw character.
        let pair = "\"\\ud83d\\ude00\"";
        assert_eq!(Json::parse(pair).unwrap(), Json::Str("😀".into()));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("12 34").is_err());
    }

    #[test]
    fn as_f64_accepts_both_number_shapes() {
        // 2.0 serializes as "2" and parses back as UInt; as_f64 bridges.
        assert_eq!(Json::parse("2").unwrap().as_f64(), Some(2.0));
        assert_eq!(Json::parse("-0.5").unwrap().as_f64(), Some(-0.5));
        assert_eq!(Json::parse("\"2\"").unwrap().as_f64(), None);
        let round = Json::Float(2.0).to_string();
        assert_eq!(Json::parse(&round).unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn obj_builder_and_from_impls() {
        let v = Json::obj([
            ("s", Json::from("hi")),
            ("n", Json::from(7u64)),
            ("x", Json::from(1.25)),
            ("b", Json::from(false)),
            ("a", Json::from(vec![Json::from(0usize)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"s":"hi","n":7,"x":1.25,"b":false,"a":[0]}"#
        );
    }

    #[test]
    fn accessors() {
        let value = Json::parse(r#"{"k":[1,"s"]}"#).unwrap();
        assert_eq!(value.get("k").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            value.get("k").unwrap().as_array().unwrap()[0].as_u128(),
            Some(1)
        );
        assert!(value.get("missing").is_none());
        assert_eq!(value.as_object().unwrap().len(), 1);
    }
}
