//! Metric types beyond monotone counters: log-bucketed [`Histogram`]s
//! with percentile summaries, and last-value [`Gauge`]s.
//!
//! A histogram buckets `u128` samples by bit length (bucket 0 holds
//! zeros; bucket *b* ≥ 1 covers `[2^(b-1), 2^b)`), so recording is O(1),
//! memory is at most 129 slots regardless of the value range, and any two
//! histograms merge losslessly. Percentiles are estimated from the bucket
//! upper bounds, clamped to the observed `[min, max]` — exact enough for
//! pipeline latencies and transaction counts spanning many decades, and
//! guaranteed monotone in the requested quantile.

/// Number of log buckets: one for zero plus one per possible bit length.
pub const NUM_BUCKETS: usize = 129;

/// A log-bucketed histogram of `u128` samples.
///
/// # Examples
///
/// ```
/// use cogent_obs::metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u128, 2, 3, 100, 10_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(10_000));
/// assert!(h.p50().unwrap() <= h.p90().unwrap());
/// assert!(h.p90().unwrap() <= h.p99().unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    count: u128,
    sum: u128,
    min: u128,
    max: u128,
    /// Occupied buckets only, as `(bucket index, sample count)` pairs in
    /// ascending index order.
    buckets: Vec<(u8, u128)>,
}

/// Bucket index of a value: 0 for 0, otherwise its bit length.
fn bucket_of(value: u128) -> u8 {
    (128 - value.leading_zeros()) as u8
}

/// Inclusive `(lo, hi)` value range of bucket `index`.
pub fn bucket_bounds(index: u8) -> (u128, u128) {
    if index == 0 {
        return (0, 0);
    }
    let lo = 1u128 << (index - 1);
    let hi = if index as usize >= NUM_BUCKETS - 1 {
        u128::MAX
    } else {
        (1u128 << index) - 1
    };
    (lo, hi)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u128) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let b = bucket_of(value);
        match self.buckets.binary_search_by_key(&b, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (b, 1)),
        }
    }

    /// Rebuilds a histogram from serialized parts (see the trace schema).
    ///
    /// # Errors
    ///
    /// Returns a message when the parts are inconsistent: bucket counts
    /// that do not sum to `count`, out-of-order or duplicate bucket
    /// indices, or `min > max` on a non-empty histogram.
    pub fn from_parts(
        count: u128,
        sum: u128,
        min: u128,
        max: u128,
        buckets: Vec<(u8, u128)>,
    ) -> Result<Self, String> {
        if count == 0 {
            if !buckets.is_empty() {
                return Err("empty histogram has occupied buckets".to_string());
            }
            return Ok(Self::new());
        }
        if min > max {
            return Err(format!("min {min} exceeds max {max}"));
        }
        let mut total = 0u128;
        let mut prev: Option<u8> = None;
        for &(b, c) in &buckets {
            if prev.is_some_and(|p| p >= b) {
                return Err("bucket indices not strictly ascending".to_string());
            }
            prev = Some(b);
            total = total.checked_add(c).ok_or("bucket counts overflow u128")?;
        }
        if total != count {
            return Err(format!("bucket counts sum to {total}, expected {count}"));
        }
        Ok(Self {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }

    /// Folds `other` into `self` (the merged histogram is identical to one
    /// fed both sample streams).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for &(b, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&b, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += c,
                Err(pos) => self.buckets.insert(pos, (b, c)),
            }
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u128 {
        self.count
    }

    /// Sum of all samples (saturating at `u128::MAX`).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample, `None` while empty.
    pub fn min(&self) -> Option<u128> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` while empty.
    pub fn max(&self) -> Option<u128> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, `None` while empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The occupied `(bucket index, sample count)` pairs, ascending.
    pub fn buckets(&self) -> &[(u8, u128)] {
        &self.buckets
    }

    /// Nearest-rank quantile estimate for `q ∈ [0, 1]`: the upper bound of
    /// the bucket holding the rank-`⌈q·count⌉` sample, clamped to the
    /// observed `[min, max]`. Monotone in `q`; `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<u128> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u128).max(1);
        let mut cumulative = 0u128;
        for &(b, c) in &self.buckets {
            cumulative += c;
            if cumulative >= rank {
                let (_, hi) = bucket_bounds(b);
                return Some(hi.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> Option<u128> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<u128> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u128> {
        self.quantile(0.99)
    }
}

/// A last-value metric: [`set`](Gauge::set) overwrites rather than
/// accumulates (occupancy, correlation coefficients, queue depths).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// A gauge holding `value`.
    pub fn new(value: f64) -> Self {
        Self { value }
    }

    /// Overwrites the current value.
    pub fn set(&mut self, value: f64) {
        self.value = value;
    }

    /// The most recently set value.
    pub fn get(&self) -> f64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_follow_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u128::MAX), 128);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(3), (4, 7));
        assert_eq!(bucket_bounds(128), (1u128 << 127, u128::MAX));
        // Every positive value lands in the bucket whose bounds contain it.
        for v in [1u128, 5, 63, 64, 65, 1 << 40, u128::MAX] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
        }
    }

    #[test]
    fn records_track_count_sum_min_max() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
        for v in [10u128, 0, 7, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10 + 7 + (1 << 20));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1 << 20));
        assert_eq!(h.mean(), Some((10.0 + 7.0 + (1u128 << 20) as f64) / 4.0));
    }

    #[test]
    fn percentiles_on_a_known_distribution() {
        // 100 samples: 50× value 1, 40× value 100, 10× value 10_000.
        let mut h = Histogram::new();
        for _ in 0..50 {
            h.record(1);
        }
        for _ in 0..40 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        // p50 = rank 50 → the bucket of value 1 (exact: bounds are [1,1]).
        assert_eq!(h.p50(), Some(1));
        // p90 = rank 90 → the bucket of 100 ([64,127]); estimate is its
        // upper bound.
        assert_eq!(h.p90(), Some(127));
        // p99 = rank 99 → the bucket of 10_000 ([8192,16383]), clamped to
        // the observed max.
        assert_eq!(h.p99(), Some(10_000));
        assert_eq!(h.quantile(1.0), Some(10_000));
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn single_sample_percentiles_are_exactly_the_sample() {
        // Clamping to [min, max] collapses every quantile of a singleton.
        let mut h = Histogram::new();
        h.record(12_345);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(12_345));
        }
    }

    #[test]
    fn merge_equals_combined_stream() {
        let samples_a = [3u128, 900, 0, 77];
        let samples_b = [1u128 << 60, 2, 2, 500_000];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for &v in &samples_a {
            a.record(v);
            combined.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        // Merging an empty histogram in either direction is the identity.
        let empty = Histogram::new();
        let mut c = combined.clone();
        c.merge(&empty);
        assert_eq!(c, combined);
        let mut e = Histogram::new();
        e.merge(&combined);
        assert_eq!(e, combined);
    }

    #[test]
    fn saturating_sum_does_not_wrap() {
        let mut h = Histogram::new();
        h.record(u128::MAX);
        h.record(u128::MAX);
        assert_eq!(h.sum(), u128::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn gauge_overwrites() {
        let mut g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(0.75);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
        assert_eq!(Gauge::new(1.5).get(), 1.5);
    }
}
