//! Property tests for the log-bucketed histogram — for arbitrary sample
//! streams, quantile estimates must stay inside the observed `[min, max]`,
//! be monotone in the requested quantile, and merging must equal feeding
//! one histogram the combined stream — and for [`MetricsShard`] merging,
//! which must be associative and order-insensitive so a global snapshot
//! is independent of thread scheduling.

use cogent_obs::metrics::Histogram;
use cogent_obs::registry::MetricsShard;
use proptest::prelude::*;

/// The vendored proptest has no `u128` range strategy, so samples are
/// generated as `u64` and widened — the histogram's bucketing logic is
/// identical across the whole `u128` range (bit length of the value).
fn samples() -> impl Strategy<Value = Vec<u128>> {
    prop::collection::vec(0u64..=u64::MAX, 1..64)
        .prop_map(|vs| vs.into_iter().map(|v| (v as u128) << (v % 7)).collect())
}

fn build(samples: &[u128]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn quantiles_bounded_by_min_and_max(samples in samples(), q_millis in 0u64..=1000) {
        // The vendored proptest has no f64 strategy; derive q from an
        // integer number of thousandths.
        let q = q_millis as f64 / 1000.0;
        let h = build(&samples);
        let est = h.quantile(q).expect("non-empty");
        let min = h.min().expect("non-empty");
        let max = h.max().expect("non-empty");
        prop_assert!(min <= est && est <= max, "q({q}) = {est} outside [{min}, {max}]");
    }

    #[test]
    fn quantiles_monotone_in_q(samples in samples()) {
        let h = build(&samples);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let ests: Vec<u128> = qs.iter().map(|&q| h.quantile(q).expect("non-empty")).collect();
        for w in ests.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {ests:?} at {qs:?}");
        }
    }

    #[test]
    fn merge_equals_combined_stream(a in samples(), b in samples()) {
        let mut merged = build(&a);
        merged.merge(&build(&b));
        let mut combined: Vec<u128> = a.clone();
        combined.extend_from_slice(&b);
        prop_assert_eq!(merged, build(&combined));
    }

    #[test]
    fn serialized_parts_round_trip(samples in samples()) {
        let h = build(&samples);
        let rebuilt = Histogram::from_parts(
            h.count(),
            h.sum(),
            h.min().expect("non-empty"),
            h.max().expect("non-empty"),
            h.buckets().to_vec(),
        ).expect("own parts are consistent");
        prop_assert_eq!(rebuilt, h);
    }
}

// ---------------------------------------------------------------------------
// MetricsShard merge laws
// ---------------------------------------------------------------------------

/// Encoded shard operations: small name alphabet so shards collide on
/// metric names (the interesting case), values widened as above. The
/// `u64` doubles as counter value, histogram sample, or gauge
/// `(seq, value)` source depending on `kind % 3`.
fn shard_ops() -> impl Strategy<Value = Vec<(u8, u8, u64)>> {
    prop::collection::vec((0u8..=255, 0u8..=5, 0u64..=u64::MAX), 0..32)
}

fn build_shard(ops: &[(u8, u8, u64)]) -> MetricsShard {
    let mut shard = MetricsShard::new();
    for &(kind, name, value) in ops {
        let name = format!("m{name}");
        match kind % 3 {
            0 => shard.add_counter(&name, u128::from(value)),
            1 => shard.record_histogram(&name, (u128::from(value)) << (value % 5)),
            // Sequence and value derived from independent halves so ties
            // on seq with differing values occur and exercise the
            // bit-pattern tiebreak.
            _ => shard.set_gauge_seq(&name, value >> 32, (value as u32) as f64 / 16.0),
        }
    }
    shard
}

fn merged(a: &MetricsShard, b: &MetricsShard) -> MetricsShard {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn shard_merge_is_commutative(a in shard_ops(), b in shard_ops()) {
        let (a, b) = (build_shard(&a), build_shard(&b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn shard_merge_is_associative(a in shard_ops(), b in shard_ops(), c in shard_ops()) {
        let (a, b, c) = (build_shard(&a), build_shard(&b), build_shard(&c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn shard_merge_is_order_insensitive(a in shard_ops(), b in shard_ops(), c in shard_ops()) {
        // Any drain order of three "threads" yields the same snapshot.
        let (a, b, c) = (build_shard(&a), build_shard(&b), build_shard(&c));
        let abc = merged(&merged(&a, &b), &c);
        let cab = merged(&merged(&c, &a), &b);
        let bca = merged(&merged(&b, &c), &a);
        prop_assert_eq!(&abc, &cab);
        prop_assert_eq!(&abc, &bca);
    }

    #[test]
    fn shard_merge_identity_is_the_empty_shard(a in shard_ops()) {
        let a = build_shard(&a);
        prop_assert_eq!(merged(&a, &MetricsShard::new()), a.clone());
        prop_assert_eq!(merged(&MetricsShard::new(), &a), a);
    }
}
