//! Property tests for the log-bucketed histogram: for arbitrary sample
//! streams, quantile estimates must stay inside the observed `[min, max]`,
//! be monotone in the requested quantile, and merging must equal feeding
//! one histogram the combined stream.

use cogent_obs::metrics::Histogram;
use proptest::prelude::*;

/// The vendored proptest has no `u128` range strategy, so samples are
/// generated as `u64` and widened — the histogram's bucketing logic is
/// identical across the whole `u128` range (bit length of the value).
fn samples() -> impl Strategy<Value = Vec<u128>> {
    prop::collection::vec(0u64..=u64::MAX, 1..64)
        .prop_map(|vs| vs.into_iter().map(|v| (v as u128) << (v % 7)).collect())
}

fn build(samples: &[u128]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn quantiles_bounded_by_min_and_max(samples in samples(), q_millis in 0u64..=1000) {
        // The vendored proptest has no f64 strategy; derive q from an
        // integer number of thousandths.
        let q = q_millis as f64 / 1000.0;
        let h = build(&samples);
        let est = h.quantile(q).expect("non-empty");
        let min = h.min().expect("non-empty");
        let max = h.max().expect("non-empty");
        prop_assert!(min <= est && est <= max, "q({q}) = {est} outside [{min}, {max}]");
    }

    #[test]
    fn quantiles_monotone_in_q(samples in samples()) {
        let h = build(&samples);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let ests: Vec<u128> = qs.iter().map(|&q| h.quantile(q).expect("non-empty")).collect();
        for w in ests.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {ests:?} at {qs:?}");
        }
    }

    #[test]
    fn merge_equals_combined_stream(a in samples(), b in samples()) {
        let mut merged = build(&a);
        merged.merge(&build(&b));
        let mut combined: Vec<u128> = a.clone();
        combined.extend_from_slice(&b);
        prop_assert_eq!(merged, build(&combined));
    }

    #[test]
    fn serialized_parts_round_trip(samples in samples()) {
        let h = build(&samples);
        let rebuilt = Histogram::from_parts(
            h.count(),
            h.sum(),
            h.min().expect("non-empty"),
            h.max().expect("non-empty"),
            h.buckets().to_vec(),
        ).expect("own parts are consistent");
        prop_assert_eq!(rebuilt, h);
    }
}
