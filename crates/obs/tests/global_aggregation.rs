//! Cross-thread metrics aggregation: N threads recording concurrently
//! through the public span API must merge into exactly the same global
//! snapshot as one thread doing all the work serially — counters add,
//! histogram buckets add, gauges resolve last-writer-wins.
//!
//! These tests share the process-global metric registry (and the global
//! tracing flag), so they serialize on a file-local mutex and diff
//! snapshots instead of assuming a pristine registry.

use std::sync::Mutex;

use cogent_obs::metrics::Histogram;
use cogent_obs::registry::{self, MetricsShard};
use cogent_obs::{set_enabled, Capture};

static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with tracing enabled and a reset registry; returns the
/// snapshot accumulated by `f`.
fn snapshot_of(f: impl FnOnce()) -> MetricsShard {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    registry::reset_metrics();
    set_enabled(true);
    f();
    set_enabled(false);
    registry::metrics_snapshot()
}

/// One "worker's worth" of recording through the public API.
fn record_workload(worker: usize) {
    let capture = Capture::start("job");
    cogent_obs::counter("work.items", 10 + worker as u128);
    cogent_obs::counter("work.items", 1);
    cogent_obs::histogram("work.latency_ns", (worker as u128 + 1) * 1_000);
    cogent_obs::histogram("work.latency_ns", 7);
    drop(capture.finish());
}

#[test]
fn concurrent_recording_equals_serial_merge() {
    const N: usize = 8;
    let concurrent = snapshot_of(|| {
        std::thread::scope(|scope| {
            for worker in 0..N {
                scope.spawn(move || record_workload(worker));
            }
        });
    });
    let serial = snapshot_of(|| {
        for worker in 0..N {
            record_workload(worker);
        }
    });

    // Counters: sum over workers, independent of scheduling.
    let expected: u128 = (0..N).map(|w| 10 + w as u128 + 1).sum();
    assert_eq!(concurrent.counters["work.items"], expected);
    assert_eq!(serial.counters["work.items"], expected);

    // Histograms: bucket-exact equality, not just summary statistics.
    let mut expected_hist = Histogram::new();
    for worker in 0..N {
        expected_hist.record((worker as u128 + 1) * 1_000);
        expected_hist.record(7);
    }
    assert_eq!(concurrent.histograms["work.latency_ns"], expected_hist);
    assert_eq!(
        concurrent.histograms["work.latency_ns"],
        serial.histograms["work.latency_ns"]
    );

    // Span durations differ run to run, but their counts must match.
    assert_eq!(
        concurrent.histograms["span.job.duration_ns"].count(),
        serial.histograms["span.job.duration_ns"].count(),
    );
    assert_eq!(concurrent.spans_closed, serial.spans_closed);
    assert_eq!(concurrent.spans_closed, N as u64);
}

#[test]
fn gauge_last_writer_wins_across_threads() {
    // Spawn-and-join each thread in turn so "last writer" is well
    // defined; the winning value must survive the shard merges.
    let snapshot = snapshot_of(|| {
        for value in [0.25, 0.5, 0.9375] {
            std::thread::spawn(move || {
                let capture = Capture::start("job");
                cogent_obs::gauge("work.occupancy", value);
                drop(capture.finish());
            })
            .join()
            .unwrap();
        }
    });
    assert_eq!(snapshot.gauges["work.occupancy"].1, 0.9375);
}

#[test]
fn exited_threads_drain_into_the_accumulator() {
    let snapshot = snapshot_of(|| {
        let live_before = registry::live_shards();
        std::thread::spawn(|| {
            let capture = Capture::start("job");
            cogent_obs::counter("drain.check", 42);
            drop(capture.finish());
        })
        .join()
        .unwrap();
        // The worker's shard unregistered at thread exit...
        assert_eq!(registry::live_shards(), live_before);
    });
    // ...but its metrics survived the join.
    assert_eq!(snapshot.counters["drain.check"], 42);
}

#[test]
fn reset_clears_drained_and_live_shards() {
    let snapshot = snapshot_of(|| {
        // Both a live shard (this thread) and a drained one (the worker).
        let capture = Capture::start("job");
        cogent_obs::counter("stale.counter", 1);
        drop(capture.finish());
        std::thread::spawn(|| {
            let capture = Capture::start("job");
            cogent_obs::counter("stale.counter", 1);
            drop(capture.finish());
        })
        .join()
        .unwrap();
        assert_eq!(registry::metrics_snapshot().counters["stale.counter"], 2);
        registry::reset_metrics();
        // Live threads keep recording into their emptied shards.
        let capture = Capture::start("job");
        cogent_obs::counter("fresh.counter", 5);
        drop(capture.finish());
    });
    assert!(!snapshot.counters.contains_key("stale.counter"));
    assert_eq!(snapshot.counters["fresh.counter"], 5);
}

#[test]
fn disabled_recording_reaches_no_shard() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    registry::reset_metrics();
    set_enabled(false);
    let capture = Capture::start("job");
    cogent_obs::counter("ghost.counter", 99);
    assert!(capture.finish().is_none());
    let snapshot = registry::metrics_snapshot();
    assert!(!snapshot.counters.contains_key("ghost.counter"));
    assert_eq!(snapshot.spans_closed, 0);
}
