//! Kernel plans: the executable description of a generated kernel.
//!
//! A [`KernelPlan`] captures everything Algorithm 1 of the paper
//! parameterizes: which loop index maps to which hardware dimension
//! (thread-block X/Y, register-tile X/Y, the serial contracted dimension,
//! or grid-only) and the tile size of each index. The plan is the contract
//! between the code generator (which lowers a chosen configuration to a
//! plan and emits equivalent CUDA) and this crate's executor/tracer.

use std::error::Error;
use std::fmt;

use cogent_ir::{Contraction, ContractionAnalysis, IndexClass, IndexName};

/// How the kernel writes its output.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum StoreMode {
    /// `C = A * B`: overwrite the output (Algorithm 1 as written).
    #[default]
    Assign,
    /// `C += A * B`: accumulate into the output, as NWChem's CCSD(T)
    /// triples kernels do (`t3 += t2 * v2`). The store phase performs a
    /// read-modify-write of each output element.
    Accumulate,
}

/// The hardware dimension a loop index is mapped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MapDim {
    /// `threadIdx.x` — external indices of the input holding the output
    /// FVI (`l_TBx` in the paper).
    ThreadX,
    /// `threadIdx.y` — external indices of the other input (`l_TBy`).
    ThreadY,
    /// X dimension of the per-thread register tile (`REG_x`).
    RegX,
    /// Y dimension of the per-thread register tile (`REG_y`).
    RegY,
    /// The serial loop over tiles of the contracted indices (`TB_k`).
    SerialK,
    /// Grid-only: the index is tiled across thread blocks with tile size 1
    /// (the paper: "technically mapped on TBx or TBy with tile size of 1").
    Grid,
}

impl MapDim {
    /// Whether this dimension belongs to the X group (driven by the `A`
    /// input in the outer-product schema).
    pub fn is_x_group(self) -> bool {
        matches!(self, MapDim::ThreadX | MapDim::RegX)
    }

    /// Whether this dimension belongs to the Y group (driven by `B`).
    pub fn is_y_group(self) -> bool {
        matches!(self, MapDim::ThreadY | MapDim::RegY)
    }
}

impl fmt::Display for MapDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MapDim::ThreadX => "TBx",
            MapDim::ThreadY => "TBy",
            MapDim::RegX => "REGx",
            MapDim::RegY => "REGy",
            MapDim::SerialK => "TBk",
            MapDim::Grid => "Blk",
        };
        f.write_str(s)
    }
}

/// One loop index's extent, tile size and mapping.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IndexBinding {
    /// The loop index.
    pub name: IndexName,
    /// Representative extent `N_i`.
    pub extent: usize,
    /// Tile size `T_i` (`1 <= T_i <= N_i`).
    pub tile: usize,
    /// Hardware dimension the index is mapped to.
    pub dim: MapDim,
}

impl IndexBinding {
    /// Creates a binding.
    pub fn new(name: impl Into<IndexName>, extent: usize, tile: usize, dim: MapDim) -> Self {
        Self {
            name: name.into(),
            extent,
            tile,
            dim,
        }
    }

    /// Number of tiles along this index: `ceil(N_i / T_i)`.
    pub fn num_tiles(&self) -> usize {
        self.extent.div_ceil(self.tile)
    }
}

/// Error building a [`KernelPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// A binding refers to an index the contraction does not use, or an
    /// index of the contraction has no binding, or is bound twice.
    BindingMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A tile size is zero or exceeds its extent.
    BadTile {
        /// The offending index.
        index: IndexName,
        /// The tile size given.
        tile: usize,
        /// The extent of the index.
        extent: usize,
    },
    /// An index is mapped to a dimension its class does not allow (e.g. an
    /// internal index on `ThreadX`, or an `A`-external on the Y group).
    BadMapping {
        /// The offending index.
        index: IndexName,
        /// The dimension it was mapped to.
        dim: MapDim,
        /// Why this is illegal.
        reason: String,
    },
    /// A grid-mapped external has a tile size other than 1.
    GridTileNotOne {
        /// The offending index.
        index: IndexName,
    },
    /// An index was looked up that the plan does not bind.
    UnboundIndex {
        /// The index that has no binding.
        index: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::BindingMismatch { detail } => {
                write!(f, "bindings do not match contraction indices: {detail}")
            }
            PlanError::BadTile {
                index,
                tile,
                extent,
            } => write!(
                f,
                "tile {tile} invalid for index {index} of extent {extent}"
            ),
            PlanError::BadMapping { index, dim, reason } => {
                write!(f, "index {index} cannot map to {dim}: {reason}")
            }
            PlanError::GridTileNotOne { index } => {
                write!(f, "grid-mapped index {index} must have tile size 1")
            }
            PlanError::UnboundIndex { index } => {
                write!(f, "plan has no binding for index {index}")
            }
        }
    }
}

impl Error for PlanError {}

/// A validated, executable kernel plan.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPlan {
    contraction: Contraction,
    bindings: Vec<IndexBinding>,
    /// Indices (into `bindings`) per group, in caller order (fastest
    /// varying first within each group).
    tbx: Vec<usize>,
    tby: Vec<usize>,
    regx: Vec<usize>,
    regy: Vec<usize>,
    tbk: Vec<usize>,
    grid: Vec<usize>,
    /// Externals in output order (into `bindings`) — the grid decomposition
    /// order.
    externals_c_order: Vec<usize>,
    store_mode: StoreMode,
}

impl KernelPlan {
    /// Builds and validates a plan.
    ///
    /// The order of `bindings` is meaningful *within* each mapped group:
    /// earlier bindings are faster varying when a hardware dimension is
    /// composed from several indices.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when the bindings do not exactly cover the
    /// contraction's indices, a tile size is out of range, an index is
    /// mapped to a dimension its class does not allow (X-group indices must
    /// be externals of `A`, Y-group of `B`, `SerialK` exactly the
    /// internals), or a grid-mapped index has tile size ≠ 1.
    pub fn new(contraction: &Contraction, bindings: Vec<IndexBinding>) -> Result<Self, PlanError> {
        let analysis = ContractionAnalysis::new(contraction);

        // Coverage: bijection between bindings and contraction indices.
        if bindings.len() != contraction.num_indices() {
            return Err(PlanError::BindingMismatch {
                detail: format!(
                    "{} bindings for {} indices",
                    bindings.len(),
                    contraction.num_indices()
                ),
            });
        }
        for (i, b) in bindings.iter().enumerate() {
            if analysis.classify(&b.name).is_none() {
                return Err(PlanError::BindingMismatch {
                    detail: format!("index {} is not part of the contraction", b.name),
                });
            }
            if bindings[..i].iter().any(|o| o.name == b.name) {
                return Err(PlanError::BindingMismatch {
                    detail: format!("index {} bound twice", b.name),
                });
            }
        }

        let mut tbx = Vec::new();
        let mut tby = Vec::new();
        let mut regx = Vec::new();
        let mut regy = Vec::new();
        let mut tbk = Vec::new();
        let mut grid = Vec::new();

        for (i, b) in bindings.iter().enumerate() {
            if b.tile == 0 || b.tile > b.extent {
                return Err(PlanError::BadTile {
                    index: b.name.clone(),
                    tile: b.tile,
                    extent: b.extent,
                });
            }
            let class = analysis.classify(&b.name).expect("validated above");
            let bad = |reason: &str| PlanError::BadMapping {
                index: b.name.clone(),
                dim: b.dim,
                reason: reason.to_owned(),
            };
            match b.dim {
                MapDim::ThreadX | MapDim::RegX => {
                    if class != IndexClass::ExternalA {
                        return Err(bad("X-group indices must be externals shared by A and C"));
                    }
                    if b.dim == MapDim::ThreadX {
                        tbx.push(i);
                    } else {
                        regx.push(i);
                    }
                }
                MapDim::ThreadY | MapDim::RegY => {
                    if class != IndexClass::ExternalB {
                        return Err(bad("Y-group indices must be externals shared by B and C"));
                    }
                    if b.dim == MapDim::ThreadY {
                        tby.push(i);
                    } else {
                        regy.push(i);
                    }
                }
                MapDim::SerialK => {
                    if class != IndexClass::Internal {
                        return Err(bad("only internal indices map to the serial dimension"));
                    }
                    tbk.push(i);
                }
                MapDim::Grid => {
                    if class == IndexClass::Internal {
                        return Err(bad("internal indices cannot be grid-mapped"));
                    }
                    if b.tile != 1 {
                        return Err(PlanError::GridTileNotOne {
                            index: b.name.clone(),
                        });
                    }
                    grid.push(i);
                }
            }
        }

        // Every internal must be SerialK-mapped (checked implicitly: the
        // counts must match since every binding was classified).
        if tbk.len() != contraction.internal_indices().len() {
            return Err(PlanError::BindingMismatch {
                detail: "every internal index must map to the serial dimension".to_owned(),
            });
        }

        let externals_c_order = contraction
            .c()
            .indices()
            .iter()
            .map(|idx| {
                bindings
                    .iter()
                    .position(|b| &b.name == idx)
                    .expect("coverage validated")
            })
            .collect();

        Ok(Self {
            contraction: contraction.clone(),
            bindings,
            tbx,
            tby,
            regx,
            regy,
            tbk,
            grid,
            externals_c_order,
            store_mode: StoreMode::Assign,
        })
    }

    /// Returns the plan with the given output store mode.
    pub fn with_store_mode(mut self, mode: StoreMode) -> Self {
        self.store_mode = mode;
        self
    }

    /// How the kernel writes its output.
    pub fn store_mode(&self) -> StoreMode {
        self.store_mode
    }

    /// The contraction this plan executes.
    pub fn contraction(&self) -> &Contraction {
        &self.contraction
    }

    /// All index bindings, in construction order.
    pub fn bindings(&self) -> &[IndexBinding] {
        &self.bindings
    }

    /// The binding of `index`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::UnboundIndex`] when the plan does not bind
    /// `index`.
    pub fn binding(&self, index: impl AsRef<str>) -> Result<&IndexBinding, PlanError> {
        let index = index.as_ref();
        self.bindings
            .iter()
            .find(|b| b.name.as_str() == index)
            .ok_or_else(|| PlanError::UnboundIndex {
                index: index.to_owned(),
            })
    }

    /// Infallible binding lookup for callers whose index provably comes
    /// from this plan's own contraction (coverage is validated at
    /// construction, so the lookup cannot miss).
    pub(crate) fn bound(&self, index: impl AsRef<str>) -> &IndexBinding {
        let index = index.as_ref();
        self.bindings
            .iter()
            .find(|b| b.name.as_str() == index)
            .unwrap_or_else(|| panic!("no binding for index {index}"))
    }

    /// Fault-injection backdoor (`crate::fault`): overwrite a binding's
    /// tile size in place *without* re-validating, so detection layers can
    /// be exercised on plans [`KernelPlan::new`] would reject.
    pub(crate) fn set_tile_raw(&mut self, pos: usize, tile: usize) {
        self.bindings[pos].tile = tile;
    }

    /// Fault-injection backdoor (`crate::fault`): rename a binding in
    /// place without re-validating, creating a foreign/unbound index.
    pub(crate) fn rename_binding_raw(&mut self, pos: usize, name: IndexName) {
        self.bindings[pos].name = name;
    }

    fn group(&self, dim: MapDim) -> &[usize] {
        match dim {
            MapDim::ThreadX => &self.tbx,
            MapDim::ThreadY => &self.tby,
            MapDim::RegX => &self.regx,
            MapDim::RegY => &self.regy,
            MapDim::SerialK => &self.tbk,
            MapDim::Grid => &self.grid,
        }
    }

    /// The bindings composing hardware dimension `dim`, fastest first.
    pub fn group_bindings(&self, dim: MapDim) -> impl Iterator<Item = &IndexBinding> {
        self.group(dim).iter().map(|&i| &self.bindings[i])
    }

    /// Product of tile sizes of the bindings in `dim`.
    pub fn group_size(&self, dim: MapDim) -> usize {
        self.group(dim)
            .iter()
            .map(|&i| self.bindings[i].tile)
            .product()
    }

    /// Threads per block: `TBx * TBy`.
    pub fn threads_per_block(&self) -> usize {
        self.group_size(MapDim::ThreadX) * self.group_size(MapDim::ThreadY)
    }

    /// Output elements computed per thread: `REGx * REGy`.
    pub fn outputs_per_thread(&self) -> usize {
        self.group_size(MapDim::RegX) * self.group_size(MapDim::RegY)
    }

    /// Total thread blocks: `prod_ext ceil(N_i / T_i)`.
    pub fn num_blocks(&self) -> usize {
        self.externals_c_order
            .iter()
            .map(|&i| self.bindings[i].num_tiles())
            .product()
    }

    /// Serial steps per block: `prod_int ceil(N_i / T_i)`.
    pub fn steps(&self) -> usize {
        self.tbk
            .iter()
            .map(|&i| self.bindings[i].num_tiles())
            .product::<usize>()
            .max(1)
    }

    /// Elements of the `A` shared-memory slice per block:
    /// `TBx * REGx * TBk_tile`.
    pub fn a_tile_elements(&self) -> usize {
        self.tile_elements(self.contraction.a().indices())
    }

    /// Elements of the `B` shared-memory slice per block.
    pub fn b_tile_elements(&self) -> usize {
        self.tile_elements(self.contraction.b().indices())
    }

    fn tile_elements(&self, indices: &[IndexName]) -> usize {
        indices.iter().map(|i| self.bound(i).tile).product()
    }

    /// Shared memory per block in bytes for the given element size.
    pub fn smem_bytes(&self, elem_bytes: usize) -> usize {
        (self.a_tile_elements() + self.b_tile_elements()) * elem_bytes
    }

    /// Estimated 32-bit registers per thread: the `REGx×REGy` accumulator
    /// tile, the two staging vectors, and a fixed addressing overhead —
    /// doubled for 64-bit elements.
    pub fn registers_per_thread(&self, elem_bytes: usize) -> usize {
        let rx = self.group_size(MapDim::RegX);
        let ry = self.group_size(MapDim::RegY);
        let words = elem_bytes.div_ceil(4);
        (rx * ry + rx + ry) * words + 24
    }

    /// Externals in output order (binding references) — the order used to
    /// decompose a linear block id into per-index tile coordinates.
    pub fn external_bindings_c_order(&self) -> impl Iterator<Item = &IndexBinding> {
        self.externals_c_order.iter().map(|&i| &self.bindings[i])
    }

    /// Writes the global base offset of every *output-tiled* index for
    /// block `block` into `base` (indexed by binding position). Internal
    /// indices are left untouched.
    ///
    /// # Panics
    ///
    /// Panics when `base.len() != self.bindings().len()`.
    pub fn block_base_offsets(&self, block: usize, base: &mut [usize]) {
        assert_eq!(base.len(), self.bindings.len(), "base slice rank mismatch");
        let mut rem = block;
        for &i in &self.externals_c_order {
            let b = &self.bindings[i];
            let n = b.num_tiles();
            base[i] = (rem % n) * b.tile;
            rem /= n;
        }
    }

    /// Writes the global base offset of every internal index for serial
    /// step `step` into `base` (indexed by binding position).
    ///
    /// # Panics
    ///
    /// Panics when `base.len() != self.bindings().len()`.
    pub fn step_base_offsets(&self, step: usize, base: &mut [usize]) {
        assert_eq!(base.len(), self.bindings.len(), "base slice rank mismatch");
        let mut rem = step;
        for &i in &self.tbk {
            let b = &self.bindings[i];
            let n = b.num_tiles();
            base[i] = (rem % n) * b.tile;
            rem /= n;
        }
    }

    /// Decomposes linear block id `block` into the per-external tile number
    /// for each external binding, in output order.
    pub fn block_tile_coords(&self, block: usize) -> Vec<usize> {
        let mut rem = block;
        self.externals_c_order
            .iter()
            .map(|&i| {
                let n = self.bindings[i].num_tiles();
                let t = rem % n;
                rem /= n;
                t
            })
            .collect()
    }

    /// Decomposes a linear position within hardware dimension `dim` into
    /// per-binding in-tile coordinates (group order, fastest first).
    pub fn decompose_in_group(&self, dim: MapDim, linear: usize) -> Vec<usize> {
        let mut rem = linear;
        self.group(dim)
            .iter()
            .map(|&i| {
                let t = self.bindings[i].tile;
                let c = rem % t;
                rem /= t;
                c
            })
            .collect()
    }

    /// True floating point operations of the contraction:
    /// `2 * prod_i N_i`.
    pub fn true_flops(&self) -> u128 {
        2 * self
            .bindings
            .iter()
            .map(|b| b.extent as u128)
            .product::<u128>()
    }

    /// FLOPs including the padded work of partial tiles (what the hardware
    /// actually executes): `2 * prod_i (num_tiles_i * T_i)`.
    pub fn padded_flops(&self) -> u128 {
        2 * self
            .bindings
            .iter()
            .map(|b| (b.num_tiles() * b.tile) as u128)
            .product::<u128>()
    }
}

impl fmt::Display for KernelPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan for {}: grid {} blocks × {} threads, reg tile {}×{}, {} steps",
            self.contraction,
            self.num_blocks(),
            self.threads_per_block(),
            self.group_size(MapDim::RegX),
            self.group_size(MapDim::RegY),
            self.steps()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul_plan() -> KernelPlan {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("i", 64, 16, MapDim::ThreadX),
                IndexBinding::new("j", 64, 16, MapDim::ThreadY),
                IndexBinding::new("k", 32, 8, MapDim::SerialK),
            ],
        )
        .unwrap()
    }

    fn eq1() -> Contraction {
        "abcd-aebf-dfce".parse().unwrap()
    }

    /// The mapping from Fig. 2 of the paper: {a}->Tx, {c}->Ty, {b}->Rx,
    /// {d}->Ry with all tiles 2.
    fn fig2_plan() -> KernelPlan {
        KernelPlan::new(
            &eq1(),
            vec![
                IndexBinding::new("a", 8, 2, MapDim::ThreadX),
                IndexBinding::new("b", 8, 2, MapDim::RegX),
                IndexBinding::new("c", 8, 2, MapDim::ThreadY),
                IndexBinding::new("d", 8, 2, MapDim::RegY),
                IndexBinding::new("e", 8, 4, MapDim::SerialK),
                IndexBinding::new("f", 8, 2, MapDim::SerialK),
            ],
        )
        .unwrap()
    }

    #[test]
    fn matmul_plan_sizes() {
        let p = matmul_plan();
        assert_eq!(p.threads_per_block(), 256);
        assert_eq!(p.outputs_per_thread(), 1);
        assert_eq!(p.num_blocks(), 16);
        assert_eq!(p.steps(), 4);
        assert_eq!(p.a_tile_elements(), 16 * 8);
        assert_eq!(p.b_tile_elements(), 8 * 16);
        assert_eq!(p.smem_bytes(8), (128 + 128) * 8);
    }

    #[test]
    fn fig2_block_structure() {
        let p = fig2_plan();
        // A thread block is T_a × T_c = 4 threads, each with a 2×2 register
        // tile covering T_b × T_d.
        assert_eq!(p.threads_per_block(), 4);
        assert_eq!(p.outputs_per_thread(), 4);
        // Block data space = T_a*T_b*T_c*T_d = 16 output elements.
        assert_eq!(
            p.group_size(MapDim::ThreadX)
                * p.group_size(MapDim::RegX)
                * p.group_size(MapDim::ThreadY)
                * p.group_size(MapDim::RegY),
            16
        );
        // Steps = ceil(8/4) * ceil(8/2) = 8.
        assert_eq!(p.steps(), 8);
        // smem A = T_a*T_e*T_b*T_f = 2*4*2*2 = 32.
        assert_eq!(p.a_tile_elements(), 32);
        assert_eq!(p.b_tile_elements(), 2 * 2 * 2 * 4);
    }

    #[test]
    fn grid_mapping_with_tile_one() {
        let tc = eq1();
        let p = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("a", 8, 4, MapDim::ThreadX),
                IndexBinding::new("b", 8, 1, MapDim::Grid),
                IndexBinding::new("c", 8, 4, MapDim::ThreadY),
                IndexBinding::new("d", 8, 1, MapDim::Grid),
                IndexBinding::new("e", 8, 4, MapDim::SerialK),
                IndexBinding::new("f", 8, 2, MapDim::SerialK),
            ],
        )
        .unwrap();
        // Blocks: ceil over a,b,c,d = 2 * 8 * 2 * 8.
        assert_eq!(p.num_blocks(), 256);
        assert_eq!(p.outputs_per_thread(), 1);
    }

    #[test]
    fn rejects_internal_on_thread_x() {
        let tc = eq1();
        let err = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("e", 8, 4, MapDim::ThreadX),
                IndexBinding::new("a", 8, 4, MapDim::ThreadX),
                IndexBinding::new("b", 8, 1, MapDim::Grid),
                IndexBinding::new("c", 8, 4, MapDim::ThreadY),
                IndexBinding::new("d", 8, 1, MapDim::Grid),
                IndexBinding::new("f", 8, 2, MapDim::SerialK),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::BadMapping { .. }));
    }

    #[test]
    fn rejects_b_external_on_x_group() {
        let tc = eq1();
        // "c" is a B-external; it cannot be in the X group.
        let err = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("a", 8, 4, MapDim::ThreadX),
                IndexBinding::new("c", 8, 4, MapDim::RegX),
                IndexBinding::new("b", 8, 1, MapDim::Grid),
                IndexBinding::new("d", 8, 4, MapDim::ThreadY),
                IndexBinding::new("e", 8, 4, MapDim::SerialK),
                IndexBinding::new("f", 8, 2, MapDim::SerialK),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::BadMapping { .. }));
    }

    #[test]
    fn rejects_bad_tiles() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        for tile in [0usize, 100] {
            let err = KernelPlan::new(
                &tc,
                vec![
                    IndexBinding::new("i", 64, tile, MapDim::ThreadX),
                    IndexBinding::new("j", 64, 16, MapDim::ThreadY),
                    IndexBinding::new("k", 32, 8, MapDim::SerialK),
                ],
            )
            .unwrap_err();
            assert!(matches!(err, PlanError::BadTile { .. }));
        }
    }

    #[test]
    fn rejects_grid_tile_not_one() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let err = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("i", 64, 16, MapDim::ThreadX),
                IndexBinding::new("j", 64, 4, MapDim::Grid),
                IndexBinding::new("k", 32, 8, MapDim::SerialK),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::GridTileNotOne { .. }));
    }

    #[test]
    fn rejects_missing_and_duplicate_bindings() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        assert!(matches!(
            KernelPlan::new(
                &tc,
                vec![
                    IndexBinding::new("i", 64, 16, MapDim::ThreadX),
                    IndexBinding::new("j", 64, 16, MapDim::ThreadY),
                ],
            ),
            Err(PlanError::BindingMismatch { .. })
        ));
        assert!(matches!(
            KernelPlan::new(
                &tc,
                vec![
                    IndexBinding::new("i", 64, 16, MapDim::ThreadX),
                    IndexBinding::new("i", 64, 16, MapDim::ThreadX),
                    IndexBinding::new("k", 32, 8, MapDim::SerialK),
                ],
            ),
            Err(PlanError::BindingMismatch { .. })
        ));
        assert!(matches!(
            KernelPlan::new(
                &tc,
                vec![
                    IndexBinding::new("i", 64, 16, MapDim::ThreadX),
                    IndexBinding::new("j", 64, 16, MapDim::ThreadY),
                    IndexBinding::new("z", 32, 8, MapDim::SerialK),
                ],
            ),
            Err(PlanError::BindingMismatch { .. })
        ));
    }

    #[test]
    fn block_tile_coords_roundtrip() {
        let p = fig2_plan();
        let per_ext: Vec<usize> = p
            .external_bindings_c_order()
            .map(IndexBinding::num_tiles)
            .collect();
        assert_eq!(per_ext, vec![4, 4, 4, 4]);
        for block in [0usize, 1, 17, 255] {
            let coords = p.block_tile_coords(block);
            // Recompose.
            let mut lin = 0;
            let mut mult = 1;
            for (c, n) in coords.iter().zip(&per_ext) {
                lin += c * mult;
                mult *= n;
            }
            assert_eq!(lin, block);
        }
    }

    #[test]
    fn base_offsets_match_tile_coords() {
        let p = fig2_plan();
        let mut base = vec![0usize; p.bindings().len()];
        p.block_base_offsets(37, &mut base);
        let tiles = p.block_tile_coords(37);
        for (bind, t) in p.external_bindings_c_order().zip(&tiles) {
            let pos = p
                .bindings()
                .iter()
                .position(|b| b.name == bind.name)
                .unwrap();
            assert_eq!(base[pos], t * bind.tile);
        }
        p.step_base_offsets(5, &mut base);
        // SerialK group is [e (tile 4, 2 tiles), f (tile 2, 4 tiles)]:
        // step 5 → e tile 1, f tile 2.
        let e_pos = p
            .bindings()
            .iter()
            .position(|b| b.name.as_str() == "e")
            .unwrap();
        let f_pos = p
            .bindings()
            .iter()
            .position(|b| b.name.as_str() == "f")
            .unwrap();
        assert_eq!(base[e_pos], 4);
        assert_eq!(base[f_pos], 4);
    }

    #[test]
    fn decompose_in_group() {
        let p = fig2_plan();
        // SerialK group is [e (tile 4), f (tile 2)].
        assert_eq!(p.decompose_in_group(MapDim::SerialK, 0), vec![0, 0]);
        assert_eq!(p.decompose_in_group(MapDim::SerialK, 3), vec![3, 0]);
        assert_eq!(p.decompose_in_group(MapDim::SerialK, 5), vec![1, 1]);
    }

    #[test]
    fn flops_accounting() {
        let p = matmul_plan();
        assert_eq!(p.true_flops(), 2 * 64 * 64 * 32);
        assert_eq!(p.padded_flops(), 2 * 64 * 64 * 32); // exact tiling
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let ragged = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("i", 60, 16, MapDim::ThreadX),
                IndexBinding::new("j", 64, 16, MapDim::ThreadY),
                IndexBinding::new("k", 32, 8, MapDim::SerialK),
            ],
        )
        .unwrap();
        assert_eq!(ragged.true_flops(), 2 * 60 * 64 * 32);
        assert_eq!(ragged.padded_flops(), 2 * 64 * 64 * 32);
    }

    #[test]
    fn registers_per_thread_scales_with_tile() {
        let p = fig2_plan();
        let small = p.registers_per_thread(8);
        // 2×2 f64 tile: (4 + 2 + 2)*2 + 24 = 40.
        assert_eq!(small, 40);
    }

    #[test]
    fn display_mentions_grid() {
        let p = matmul_plan();
        let s = p.to_string();
        assert!(s.contains("16 blocks"));
        assert!(s.contains("256 threads"));
    }
}
