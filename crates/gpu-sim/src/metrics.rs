//! End-to-end simulation: plan → traced traffic → occupancy → predicted
//! time and GFLOPS.

use cogent_gpu_model::{
    occupancy, predict_time_s, BlockResources, GpuDevice, KernelProfile, Occupancy, Precision,
    TimeBreakdown,
};

use crate::plan::KernelPlan;
use crate::trace::{trace_transactions, TraceOptions, TraceReport};

/// Complete simulation result for one kernel plan on one device.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimReport {
    /// Traced DRAM transactions.
    pub trace: TraceReport,
    /// Achieved occupancy.
    pub occupancy: Occupancy,
    /// Predicted execution time and its components.
    pub time: TimeBreakdown,
    /// Useful GFLOP/s: true (unpadded) FLOPs over predicted time.
    pub gflops: f64,
    /// Thread blocks launched.
    pub blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Shared memory per block, bytes.
    pub smem_bytes: usize,
}

/// Simulates `plan` on `device` at `precision`.
///
/// This is the reproduction's stand-in for "run the generated kernel and
/// time it": the transaction tracer plays the role of the DRAM, the
/// occupancy calculator the role of the SM scheduler, and the roofline the
/// role of the stopwatch.
///
/// # Examples
///
/// ```
/// use cogent_gpu_sim::{plan::{IndexBinding, KernelPlan, MapDim}, simulate};
/// use cogent_gpu_model::{GpuDevice, Precision};
/// use cogent_ir::Contraction;
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let plan = KernelPlan::new(&tc, vec![
///     IndexBinding::new("i", 1024, 16, MapDim::ThreadX),
///     IndexBinding::new("j", 1024, 16, MapDim::ThreadY),
///     IndexBinding::new("k", 1024, 8, MapDim::SerialK),
/// ])?;
/// let report = simulate(&plan, &GpuDevice::v100(), Precision::F64);
/// assert!(report.gflops > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate(plan: &KernelPlan, device: &GpuDevice, precision: Precision) -> SimReport {
    simulate_with(plan, device, precision, TraceOptions::default())
}

/// [`simulate`] with explicit trace sampling options.
pub fn simulate_with(
    plan: &KernelPlan,
    device: &GpuDevice,
    precision: Precision,
    options: TraceOptions,
) -> SimReport {
    let _span = cogent_obs::span("simulate");
    let threads = plan.threads_per_block();
    let smem = plan.smem_bytes(precision.bytes());
    let occ = occupancy(
        device,
        BlockResources {
            threads,
            smem_bytes: smem,
            registers_per_thread: plan.registers_per_thread(precision.bytes()),
        },
    );
    // An infeasible launch never runs; skip the (possibly expensive)
    // address trace and report the infinite time directly.
    let trace = if occ.fraction == 0.0 {
        TraceReport {
            load_a: 0,
            load_b: 0,
            store_c: 0,
        }
    } else {
        trace_transactions(plan, device, precision, options)
    };
    let profile = KernelProfile {
        flops: plan.padded_flops(),
        transactions: trace.total(),
        occupancy: occ,
        total_blocks: plan.num_blocks(),
        steps_per_block: plan.steps(),
        outputs_per_thread: plan.outputs_per_thread(),
        precision,
    };
    let time = predict_time_s(device, &profile);
    // Per-tensor GMEM transactions plus launch shape, for comparison with
    // the analytical model's `cost.*` counters on the same trace.
    cogent_obs::counter("sim.transactions.load_a", trace.load_a);
    cogent_obs::counter("sim.transactions.load_b", trace.load_b);
    cogent_obs::counter("sim.transactions.store_c", trace.store_c);
    cogent_obs::counter("sim.blocks", plan.num_blocks() as u128);
    cogent_obs::counter("sim.occupancy_permille", (occ.fraction * 1000.0) as u128);
    if time.total_s.is_finite() {
        cogent_obs::counter("sim.predicted_ns", (time.total_s * 1e9) as u128);
    }
    SimReport {
        trace,
        occupancy: occ,
        gflops: plan.true_flops() as f64 / time.total_s / 1e9,
        blocks: plan.num_blocks(),
        threads_per_block: threads,
        smem_bytes: smem,
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{IndexBinding, MapDim};
    use cogent_ir::Contraction;

    fn plan(ti: usize, reg: bool) -> KernelPlan {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let (bdim, ddim) = if reg {
            (MapDim::RegX, MapDim::RegY)
        } else {
            (MapDim::Grid, MapDim::Grid)
        };
        let btile = if reg { 4 } else { 1 };
        KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("a", 64, ti, MapDim::ThreadX),
                IndexBinding::new("b", 64, btile, bdim),
                IndexBinding::new("c", 64, 16, MapDim::ThreadY),
                IndexBinding::new("d", 64, btile, ddim),
                IndexBinding::new("e", 32, 8, MapDim::SerialK),
                IndexBinding::new("f", 32, 2, MapDim::SerialK),
            ],
        )
        .unwrap()
    }

    #[test]
    fn produces_finite_positive_time() {
        let r = simulate(&plan(16, true), &GpuDevice::v100(), Precision::F64);
        assert!(r.time.total_s.is_finite());
        assert!(r.time.total_s > 0.0);
        assert!(r.gflops > 0.0);
        assert!(r.gflops < GpuDevice::v100().peak_gflops_f64);
    }

    #[test]
    fn register_tiling_reduces_traffic_per_flop() {
        let d = GpuDevice::v100();
        let with_reg = simulate(&plan(16, true), &d, Precision::F64);
        let without = simulate(&plan(16, false), &d, Precision::F64);
        // Same contraction, same FLOPs. Register tiling gives each thread
        // more reuse, so total transactions per flop must drop.
        let flops = plan(16, true).true_flops() as f64;
        let t1 = with_reg.trace.total() as f64 / flops;
        let t2 = without.trace.total() as f64 / flops;
        assert!(t1 < t2, "reg {t1} vs flat {t2}");
    }

    #[test]
    fn better_plan_is_faster() {
        let d = GpuDevice::v100();
        let good = simulate(&plan(16, true), &d, Precision::F64);
        let bad = simulate(&plan(4, false), &d, Precision::F64);
        assert!(good.gflops > bad.gflops);
    }

    #[test]
    fn p100_slower_than_v100() {
        let pl = plan(16, true);
        let p = simulate(&pl, &GpuDevice::p100(), Precision::F64);
        let v = simulate(&pl, &GpuDevice::v100(), Precision::F64);
        assert!(v.gflops > p.gflops);
    }

    #[test]
    fn report_fields_consistent() {
        let pl = plan(16, true);
        let r = simulate(&pl, &GpuDevice::v100(), Precision::F64);
        assert_eq!(r.blocks, pl.num_blocks());
        assert_eq!(r.threads_per_block, pl.threads_per_block());
        assert_eq!(r.smem_bytes, pl.smem_bytes(8));
    }
}
