//! Warp-level global-memory address tracing.
//!
//! The paper's cost model *estimates* the number of 128-byte DRAM
//! transactions analytically (Algorithm 3). This module *measures* that
//! quantity for a [`KernelPlan`] by enumerating the addresses every warp
//! touches — loads of the `A`/`B` tiles and stores of the output register
//! tiles — and counting distinct aligned 128-byte segments per warp-wide
//! access, exactly as the hardware coalescer does.
//!
//! Tracing every block of a large grid would be wasteful: interior blocks
//! all behave identically. [`TraceOptions`] controls how many blocks and
//! serial steps are sampled (evenly spaced, always including the first);
//! totals are extrapolated from the sample means.

use cogent_gpu_model::{GpuDevice, Precision};

use crate::exec::TensorAccess;
use crate::plan::{KernelPlan, MapDim};

/// Sampling controls for the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOptions {
    /// Maximum thread blocks to trace (evenly spaced over the grid).
    pub max_block_samples: usize,
    /// Maximum serial steps to trace per block (evenly spaced).
    pub max_step_samples: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            max_block_samples: 8,
            max_step_samples: 4,
        }
    }
}

impl TraceOptions {
    /// Trace every block and every step (exact counts).
    pub fn exhaustive() -> Self {
        Self {
            max_block_samples: usize::MAX,
            max_step_samples: usize::MAX,
        }
    }
}

/// Traced DRAM transaction counts for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceReport {
    /// Transactions loading tiles of `A` (whole launch).
    pub load_a: u128,
    /// Transactions loading tiles of `B` (whole launch).
    pub load_b: u128,
    /// Transactions storing the output (whole launch).
    pub store_c: u128,
}

impl TraceReport {
    /// Total transactions.
    pub fn total(&self) -> u128 {
        self.load_a + self.load_b + self.store_c
    }

    /// Total bytes moved, given the device's transaction size.
    pub fn bytes(&self, device: &GpuDevice) -> u128 {
        self.total() * device.transaction_bytes as u128
    }
}

/// Tail-guard and divergence statistics accumulated over the sampled
/// warp accesses (not extrapolated to the full launch).
#[derive(Debug, Default, Clone, Copy)]
struct GuardCounters {
    /// Warp-wide accesses inspected.
    warp_accesses: u128,
    /// Accesses where at least one lane was masked off by a bounds guard
    /// (the partial-tile "tail" of a ragged extent) — divergent warps.
    divergent_warps: u128,
    /// Individual lanes masked off across all accesses.
    oob_lane_skips: u128,
}

impl GuardCounters {
    fn record(&mut self, lanes: usize, active: usize) {
        self.warp_accesses += 1;
        if active < lanes {
            self.divergent_warps += 1;
            self.oob_lane_skips += (lanes - active) as u128;
        }
    }
}

/// Evenly-spaced sample of `take` values from `0..n` (always non-empty,
/// always starts at 0).
fn sample_indices(n: usize, take: usize) -> Vec<usize> {
    let take = take.clamp(1, n.max(1));
    (0..take).map(|i| i * n / take).collect()
}

/// Counts the aligned 128-byte segments touched by a warp given the byte
/// addresses of its active lanes.
fn segments(device: &GpuDevice, addrs: &mut Vec<usize>) -> usize {
    if addrs.is_empty() {
        return 0;
    }
    let tb = device.transaction_bytes;
    addrs.sort_unstable();
    let mut count = 1;
    let mut current = addrs[0] / tb;
    for &a in addrs.iter().skip(1) {
        let seg = a / tb;
        if seg != current {
            count += 1;
            current = seg;
        }
    }
    addrs.clear();
    count
}

/// Traces the DRAM transactions of `plan` on `device` at the given
/// precision.
///
/// # Examples
///
/// ```
/// use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
/// use cogent_gpu_sim::trace::{trace_transactions, TraceOptions};
/// use cogent_gpu_model::{GpuDevice, Precision};
/// use cogent_ir::Contraction;
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let plan = KernelPlan::new(&tc, vec![
///     IndexBinding::new("i", 64, 16, MapDim::ThreadX),
///     IndexBinding::new("j", 64, 16, MapDim::ThreadY),
///     IndexBinding::new("k", 64, 8, MapDim::SerialK),
/// ])?;
/// let report = trace_transactions(
///     &plan, &GpuDevice::v100(), Precision::F64, TraceOptions::exhaustive());
/// assert!(report.total() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn trace_transactions(
    plan: &KernelPlan,
    device: &GpuDevice,
    precision: Precision,
    options: TraceOptions,
) -> TraceReport {
    let tc = plan.contraction();
    let acc_a = TensorAccess::new(plan, tc.a());
    let acc_b = TensorAccess::new(plan, tc.b());
    let acc_c = TensorAccess::new(plan, tc.c());

    let num_blocks = plan.num_blocks();
    let steps = plan.steps();
    let blocks = sample_indices(num_blocks, options.max_block_samples);
    let step_samples = sample_indices(steps, options.max_step_samples);

    let mut base = vec![0usize; plan.bindings().len()];
    let mut load_a_sum = 0u128;
    let mut load_b_sum = 0u128;
    let mut store_c_sum = 0u128;
    let mut guards = GuardCounters::default();

    for &block in &blocks {
        plan.block_base_offsets(block, &mut base);
        for &step in &step_samples {
            plan.step_base_offsets(step, &mut base);
            load_a_sum += trace_tile_load(plan, device, precision, &acc_a, &base, &mut guards);
            load_b_sum += trace_tile_load(plan, device, precision, &acc_b, &base, &mut guards);
        }
        store_c_sum += trace_store(plan, device, precision, &acc_c, &base, &mut guards);
    }

    // Sample-scope statistics (no extrapolation): how much the bounds
    // guards actually masked, and how divergent the warps were.
    cogent_obs::counter("trace.sampled.warp_accesses", guards.warp_accesses);
    cogent_obs::counter("trace.sampled.divergent_warps", guards.divergent_warps);
    cogent_obs::counter("trace.sampled.oob_lane_skips", guards.oob_lane_skips);
    cogent_obs::counter("trace.sampled.blocks", blocks.len() as u128);
    cogent_obs::counter("trace.sampled.steps", step_samples.len() as u128);

    let scale_blocks = num_blocks as u128;
    let nb = blocks.len() as u128;
    let ns = step_samples.len() as u128;
    // Accumulating stores (C += ...) read each output element before
    // writing it: double the output traffic.
    let store_factor = match plan.store_mode() {
        crate::plan::StoreMode::Assign => 1,
        crate::plan::StoreMode::Accumulate => 2,
    };
    TraceReport {
        load_a: load_a_sum * scale_blocks * steps as u128 / (nb * ns),
        load_b: load_b_sum * scale_blocks * steps as u128 / (nb * ns),
        store_c: store_c_sum * scale_blocks * store_factor / nb,
    }
}

/// Transactions for loading one staged tile: `threads` linear threads
/// cooperatively read `tile_elems` elements in tile-linear order, one
/// element per thread per round (the emitted kernel's cooperative-load
/// loop).
fn trace_tile_load(
    plan: &KernelPlan,
    device: &GpuDevice,
    precision: Precision,
    acc: &TensorAccess,
    base: &[usize],
    guards: &mut GuardCounters,
) -> u128 {
    let threads = plan.threads_per_block();
    let warp = device.warp_size;
    let elem_bytes = precision.bytes();
    let tile_elems = acc.tile_elems;
    let mut total = 0u128;
    let mut addrs: Vec<usize> = Vec::with_capacity(warp);

    let rounds = tile_elems.div_ceil(threads);
    for r in 0..rounds {
        let round_base = r * threads;
        let active = threads.min(tile_elems - round_base);
        for warp_start in (0..active).step_by(warp) {
            let lanes = warp.min(active - warp_start);
            for lane in 0..lanes {
                let e = round_base + warp_start + lane;
                // Decompose tile-linear e into per-dim in-tile coords.
                let mut rem = e;
                let mut off = 0usize;
                let mut in_bounds = true;
                for d in &acc.dims {
                    let c = rem % d.tile;
                    rem /= d.tile;
                    let g = base[d.binding] + c;
                    if g >= d.extent {
                        in_bounds = false;
                        break;
                    }
                    off += g * d.global_stride;
                }
                if in_bounds {
                    addrs.push(off * elem_bytes);
                }
            }
            guards.record(lanes, addrs.len());
            total += segments(device, &mut addrs) as u128;
        }
    }
    total
}

/// Transactions for the output store: one warp-wide store per register
/// slot `(rx, ry)` per warp.
fn trace_store(
    plan: &KernelPlan,
    device: &GpuDevice,
    precision: Precision,
    acc_c: &TensorAccess,
    base: &[usize],
    guards: &mut GuardCounters,
) -> u128 {
    let tbx = plan.group_size(MapDim::ThreadX);
    let tby = plan.group_size(MapDim::ThreadY);
    let regx = plan.group_size(MapDim::RegX);
    let regy = plan.group_size(MapDim::RegY);
    let threads = tbx * tby;
    let warp = device.warp_size;
    let elem_bytes = precision.bytes();
    let mut total = 0u128;
    let mut addrs: Vec<usize> = Vec::with_capacity(warp);
    let tables = crate::exec::output_coord_tables(plan, acc_c);

    for ry in 0..regy {
        for rx in 0..regx {
            for warp_start in (0..threads).step_by(warp) {
                let lanes = warp.min(threads - warp_start);
                for lane in 0..lanes {
                    let t = warp_start + lane;
                    let (tx, ty) = (t % tbx, t / tbx);
                    let mut off = 0usize;
                    let mut in_bounds = true;
                    for (d, table) in acc_c.dims.iter().zip(&tables) {
                        let crate::exec::CoordSource::Group(dim, _) = d.source;
                        let lin = match dim {
                            MapDim::ThreadX => tx,
                            MapDim::ThreadY => ty,
                            MapDim::RegX => rx,
                            MapDim::RegY => ry,
                            MapDim::Grid => 0,
                            MapDim::SerialK => unreachable!("C has no internal index"),
                        };
                        let g = base[d.binding] + table[lin];
                        if g >= d.extent {
                            in_bounds = false;
                            break;
                        }
                        off += g * d.global_stride;
                    }
                    if in_bounds {
                        addrs.push(off * elem_bytes);
                    }
                }
                guards.record(lanes, addrs.len());
                total += segments(device, &mut addrs) as u128;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::IndexBinding;
    use cogent_ir::Contraction;

    fn v100() -> GpuDevice {
        GpuDevice::v100()
    }

    fn matmul_plan(ti: usize, tj: usize, tk: usize) -> KernelPlan {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("i", 64, ti, MapDim::ThreadX),
                IndexBinding::new("j", 64, tj, MapDim::ThreadY),
                IndexBinding::new("k", 64, tk, MapDim::SerialK),
            ],
        )
        .unwrap()
    }

    #[test]
    fn coalesced_matmul_counts() {
        // 16×16 threads; A tile 16×16 elements contiguous along i (extent
        // 64 → runs of 16 doubles = 128 B exactly per 16 lanes).
        let plan = matmul_plan(16, 16, 16);
        let r = trace_transactions(&plan, &v100(), Precision::F64, TraceOptions::exhaustive());
        // A tile: 256 elements / 256 threads = 1 round; each warp covers 2
        // columns of 16 contiguous doubles. A 16-double run = 128 B but can
        // straddle at most one boundary only if misaligned; i-runs start at
        // multiples of 16 elements → aligned. 2 segments per warp, 8 warps
        // = 16 transactions per step; 4 steps per block; 16 blocks.
        assert_eq!(r.load_a, 16 * 4 * 16);
        // B tile: 16(k)×16(j); k is B's FVI with tile 16 → same structure.
        assert_eq!(r.load_b, 16 * 4 * 16);
        // Store: 1 reg slot; 8 warps each covering 2 columns of C → 2
        // segments per warp; 16 blocks.
        assert_eq!(r.store_c, 16 * 8 * 2);
        assert_eq!(r.total(), r.load_a + r.load_b + r.store_c);
    }

    #[test]
    fn uncoalesced_access_costs_more() {
        // Tiny tiles along the FVI → short runs → more transactions for
        // the same data volume.
        let coalesced = trace_transactions(
            &matmul_plan(16, 16, 16),
            &v100(),
            Precision::F64,
            TraceOptions::exhaustive(),
        );
        let scattered = trace_transactions(
            &matmul_plan(4, 4, 16),
            &v100(),
            Precision::F64,
            TraceOptions::exhaustive(),
        );
        // Normalize per useful element: same total data, more transactions.
        assert!(scattered.total() > coalesced.total());
    }

    #[test]
    fn sampling_matches_exhaustive_on_uniform_grid() {
        let plan = matmul_plan(16, 16, 8);
        let exact = trace_transactions(&plan, &v100(), Precision::F64, TraceOptions::exhaustive());
        let sampled = trace_transactions(&plan, &v100(), Precision::F64, TraceOptions::default());
        assert_eq!(exact, sampled);
    }

    #[test]
    fn f32_halves_transactions_for_same_elements() {
        let plan = matmul_plan(16, 16, 16);
        let f64t = trace_transactions(&plan, &v100(), Precision::F64, TraceOptions::exhaustive());
        let f32t = trace_transactions(&plan, &v100(), Precision::F32, TraceOptions::exhaustive());
        assert!(f32t.total() <= f64t.total());
        assert!(f32t.total() >= f64t.total() / 2);
    }

    #[test]
    fn ragged_edges_do_not_overcount() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let plan = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("i", 60, 16, MapDim::ThreadX),
                IndexBinding::new("j", 60, 16, MapDim::ThreadY),
                IndexBinding::new("k", 60, 16, MapDim::SerialK),
            ],
        )
        .unwrap();
        let r = trace_transactions(&plan, &v100(), Precision::F64, TraceOptions::exhaustive());
        // A 60-extent tensor is not 128-byte aligned per run, so each
        // 16-double run may straddle a transaction boundary: the count can
        // exceed the aligned padded 64^3 case, but never by more than 2×.
        let padded = trace_transactions(
            &matmul_plan(16, 16, 16),
            &v100(),
            Precision::F64,
            TraceOptions::exhaustive(),
        );
        assert!(r.total() > 0);
        assert!(r.total() <= 2 * padded.total());
    }

    #[test]
    fn bytes_uses_transaction_size() {
        let plan = matmul_plan(16, 16, 16);
        let r = trace_transactions(&plan, &v100(), Precision::F64, TraceOptions::exhaustive());
        assert_eq!(r.bytes(&v100()), r.total() * 128);
    }

    #[test]
    fn sample_indices_cover_range() {
        assert_eq!(sample_indices(10, 3), vec![0, 3, 6]);
        assert_eq!(sample_indices(2, 8), vec![0, 1]);
        assert_eq!(sample_indices(1, 1), vec![0]);
    }
}
