//! A functional virtual GPU for tensor-contraction kernel plans.
//!
//! The COGENT paper evaluates generated CUDA on real P100/V100 GPUs. This
//! crate is the substitute substrate: it takes a [`KernelPlan`] — the exact
//! mapping/tiling structure a generated kernel embodies (Algorithm 1 of the
//! paper) — and
//!
//! * **executes it functionally** ([`exec`]): grid → thread blocks →
//!   threads, shared-memory staging of input slices, per-thread register
//!   tiles, outer-product accumulation, boundary guards — on host memory,
//!   so the mapping and index arithmetic are verified against the reference
//!   contraction;
//! * **traces its DRAM traffic** ([`trace`]): enumerates the global-memory
//!   addresses each warp touches and counts aligned 128-byte transactions,
//!   the quantity the paper's cost model estimates analytically;
//! * **predicts its wall-clock time** ([`metrics`]): occupancy + traced
//!   traffic + FLOPs through the roofline model of `cogent-gpu-model`.
//!
//! # Examples
//!
//! ```
//! use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
//! use cogent_ir::{Contraction, SizeMap};
//!
//! let tc: Contraction = "ij-ik-kj".parse()?;
//! let plan = KernelPlan::new(
//!     &tc,
//!     vec![
//!         IndexBinding::new("i", 32, 16, MapDim::ThreadX),
//!         IndexBinding::new("j", 32, 16, MapDim::ThreadY),
//!         IndexBinding::new("k", 32, 8, MapDim::SerialK),
//!     ],
//! )?;
//! assert_eq!(plan.threads_per_block(), 256);
//! assert_eq!(plan.num_blocks(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod exec;
pub mod fault;
pub mod metrics;
pub mod plan;
pub mod smem;
pub mod trace;

pub use exec::{execute_plan, try_execute_plan, try_execute_plan_into, ExecError};
pub use fault::{execute_plan_with_faults, ExecFaults, FaultInjector, FaultKind};
pub use metrics::{simulate, SimReport};
pub use plan::{IndexBinding, KernelPlan, MapDim, PlanError, StoreMode};
pub use smem::{analyze_bank_conflicts, BankConflictReport};
pub use trace::{trace_transactions, TraceOptions, TraceReport};
