//! Seeded fault injection for kernel plans and their execution.
//!
//! The guard subsystem (`cogent-core`'s plan validator plus the numeric
//! divergence check against the reference contraction) claims that no
//! broken plan produces a silent wrong answer: *static* faults — plans
//! violating a device or structural invariant — are rejected before any
//! execution, and *dynamic* faults — a kernel whose generated code
//! misbehaves at runtime — change the computed output enough for the
//! divergence check to flag them. This module provides the counterpart
//! that makes the claim testable: a deterministic [`FaultInjector`] that
//! corrupts validated plans in controlled ways, and
//! [`execute_plan_with_faults`], which runs the functional executor with
//! deliberate misbehaviors switched on ([`ExecFaults`]).
//!
//! Every fault class in [`FaultKind`] maps to exactly one detection layer
//! (`FaultKind::is_static`), so a table-driven test can assert the full
//! detection matrix.

use cogent_ir::IndexName;
use cogent_tensor::{DenseTensor, Element};

use crate::exec::{execute_faulted, ExecError, TensorAccess};
use crate::plan::{KernelPlan, MapDim};

/// The classes of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A tile size larger than its index's extent (static).
    OversizedTile,
    /// A tile blown up until the staged slices exceed the device's shared
    /// memory per block (static).
    SmemOverflow,
    /// A thread-dimension tile blown up past the threads-per-block limit
    /// (static).
    ThreadOverflow,
    /// A register-tile size blown up past the per-thread register budget
    /// (static).
    RegisterOverflow,
    /// A binding renamed to an index the contraction does not use, leaving
    /// a contraction index unbound (static).
    ForeignIndex,
    /// The staging bounds guard removed: out-of-bounds tail positions read
    /// clamped boundary data instead of zeros (dynamic).
    DroppedTailGuard,
    /// Shared-memory staging stops halfway through each tile (dynamic).
    TruncatedStaging,
    /// The register-tile accumulation drops the last serial in-tile
    /// iteration (dynamic).
    CorruptedAccumulation,
    /// A missing sync point: every compute phase reads the *previous*
    /// step's shared-memory tiles (dynamic).
    SkippedSync,
}

impl FaultKind {
    /// Every fault class, static kinds first.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::OversizedTile,
        FaultKind::SmemOverflow,
        FaultKind::ThreadOverflow,
        FaultKind::RegisterOverflow,
        FaultKind::ForeignIndex,
        FaultKind::DroppedTailGuard,
        FaultKind::TruncatedStaging,
        FaultKind::CorruptedAccumulation,
        FaultKind::SkippedSync,
    ];

    /// Whether the fault lives in the plan itself (and must be caught by
    /// the static plan validator) rather than in execution behavior (to be
    /// caught by the numeric divergence check).
    pub fn is_static(self) -> bool {
        matches!(
            self,
            FaultKind::OversizedTile
                | FaultKind::SmemOverflow
                | FaultKind::ThreadOverflow
                | FaultKind::RegisterOverflow
                | FaultKind::ForeignIndex
        )
    }

    /// Stable lowercase name (used in test diagnostics and counters).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::OversizedTile => "oversized_tile",
            FaultKind::SmemOverflow => "smem_overflow",
            FaultKind::ThreadOverflow => "thread_overflow",
            FaultKind::RegisterOverflow => "register_overflow",
            FaultKind::ForeignIndex => "foreign_index",
            FaultKind::DroppedTailGuard => "dropped_tail_guard",
            FaultKind::TruncatedStaging => "truncated_staging",
            FaultKind::CorruptedAccumulation => "corrupted_accumulation",
            FaultKind::SkippedSync => "skipped_sync",
        }
    }
}

/// Which execution-level misbehaviors are switched on. All off by default;
/// the executor's hot path is untouched in that case.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecFaults {
    /// Clamp instead of zero-fill out-of-bounds staged positions.
    pub drop_tail_guard: bool,
    /// Stage only the first half of each shared-memory tile.
    pub truncate_staging: bool,
    /// Drop the last serial in-tile iteration of the accumulation.
    pub corrupt_accumulation: bool,
    /// Compute on the previous step's shared-memory tiles.
    pub skip_sync: bool,
}

impl ExecFaults {
    /// No faults: normal execution.
    pub const NONE: ExecFaults = ExecFaults {
        drop_tail_guard: false,
        truncate_staging: false,
        corrupt_accumulation: false,
        skip_sync: false,
    };

    /// The fault set exercising one dynamic [`FaultKind`]. Static kinds
    /// map to [`ExecFaults::NONE`] (they never reach execution).
    pub fn for_kind(kind: FaultKind) -> Self {
        let mut f = ExecFaults::NONE;
        match kind {
            FaultKind::DroppedTailGuard => f.drop_tail_guard = true,
            FaultKind::TruncatedStaging => f.truncate_staging = true,
            FaultKind::CorruptedAccumulation => f.corrupt_accumulation = true,
            FaultKind::SkippedSync => f.skip_sync = true,
            _ => {}
        }
        f
    }
}

/// Deterministic plan corrupter: the same seed and fault kind applied to
/// the same plan always produce the same corrupted plan, so detection
/// failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
}

impl FaultInjector {
    /// Creates an injector from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// SplitMix64 step.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Index of a randomly chosen binding mapped to one of `dims`, falling
    /// back to a uniformly random binding when no group member exists.
    fn pick_binding(&mut self, plan: &KernelPlan, dims: &[MapDim]) -> usize {
        let candidates: Vec<usize> = plan
            .bindings()
            .iter()
            .enumerate()
            .filter(|(_, b)| dims.contains(&b.dim))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            self.pick(plan.bindings().len())
        } else {
            candidates[self.pick(candidates.len())]
        }
    }

    /// Returns a copy of `plan` corrupted according to a *static*
    /// [`FaultKind`], bypassing [`KernelPlan::new`] validation. Dynamic
    /// kinds return the plan unchanged (their fault lives in execution;
    /// see [`ExecFaults::for_kind`]).
    pub fn inject_plan(&mut self, plan: &KernelPlan, kind: FaultKind) -> KernelPlan {
        let mut out = plan.clone();
        match kind {
            FaultKind::OversizedTile => {
                let pos = self.pick(out.bindings().len());
                let extent = out.bindings()[pos].extent;
                out.set_tile_raw(pos, extent + 1 + self.pick(7));
            }
            FaultKind::SmemOverflow => {
                // Any staged index works: one 2^17-element tile dimension
                // alone exceeds every real device's smem per block.
                let pos = self.pick_binding(plan, &[MapDim::SerialK, MapDim::ThreadX]);
                out.set_tile_raw(pos, 1 << 17);
            }
            FaultKind::ThreadOverflow => {
                let pos = self.pick_binding(plan, &[MapDim::ThreadX, MapDim::ThreadY]);
                out.set_tile_raw(pos, 4096);
            }
            FaultKind::RegisterOverflow => {
                let pos = self.pick_binding(plan, &[MapDim::RegX, MapDim::RegY]);
                out.set_tile_raw(pos, 1024);
            }
            FaultKind::ForeignIndex => {
                let pos = self.pick(out.bindings().len());
                out.rename_binding_raw(pos, IndexName::new("zz_fault"));
            }
            _ => {}
        }
        out
    }
}

/// Runs the functional executor with the given misbehaviors enabled and
/// returns the (generally wrong) output tensor. Test harness entry point:
/// the result is meant to be compared against
/// `cogent_tensor::reference::contract_reference` to prove the divergence
/// check catches the fault.
///
/// # Errors
///
/// Same as [`crate::exec::try_execute_plan`].
pub fn execute_plan_with_faults<T: Element>(
    plan: &KernelPlan,
    a: &DenseTensor<T>,
    b: &DenseTensor<T>,
    faults: ExecFaults,
) -> Result<DenseTensor<T>, ExecError> {
    let acc_c = TensorAccess::try_new(plan, plan.contraction().c())?;
    let mut c = DenseTensor::<T>::zeros(&acc_c.extents());
    execute_faulted(plan, a, b, &mut c, faults)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::IndexBinding;
    use cogent_ir::{Contraction, SizeMap};
    use cogent_tensor::reference::{contract_reference, random_inputs};

    fn ragged_plan() -> KernelPlan {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("a", 7, 2, MapDim::ThreadX),
                IndexBinding::new("b", 6, 2, MapDim::RegX),
                IndexBinding::new("c", 7, 2, MapDim::ThreadY),
                IndexBinding::new("d", 5, 2, MapDim::RegY),
                IndexBinding::new("e", 6, 4, MapDim::SerialK),
                IndexBinding::new("f", 5, 2, MapDim::SerialK),
            ],
        )
        .unwrap()
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = ragged_plan();
        for kind in FaultKind::ALL {
            let one = FaultInjector::new(42).inject_plan(&plan, kind);
            let two = FaultInjector::new(42).inject_plan(&plan, kind);
            assert_eq!(one, two, "{}", kind.name());
        }
    }

    #[test]
    fn static_faults_break_a_plan_invariant() {
        let plan = ragged_plan();
        for kind in FaultKind::ALL.into_iter().filter(|k| k.is_static()) {
            let corrupted = FaultInjector::new(7).inject_plan(&plan, kind);
            assert_ne!(corrupted, plan, "{} left the plan intact", kind.name());
            // Re-validating the corrupted bindings through the constructor
            // must fail: the corruption is structural, not cosmetic.
            assert!(
                KernelPlan::new(plan.contraction(), corrupted.bindings().to_vec()).is_err()
                    || corrupted.smem_bytes(8) > 96 * 1024
                    || corrupted.threads_per_block() > 1024,
                "{} produced a still-legal plan",
                kind.name()
            );
        }
    }

    #[test]
    fn dynamic_faults_change_the_answer() {
        let plan = ragged_plan();
        let sizes =
            SizeMap::from_pairs(plan.bindings().iter().map(|b| (b.name.as_str(), b.extent)));
        let (a, b) = random_inputs::<f64>(plan.contraction(), &sizes, 9);
        let want = contract_reference(plan.contraction(), &sizes, &a, &b);
        for kind in FaultKind::ALL.into_iter().filter(|k| !k.is_static()) {
            let got = execute_plan_with_faults(&plan, &a, &b, ExecFaults::for_kind(kind)).unwrap();
            assert!(
                got.max_abs_diff(&want) > 1e-9,
                "{} did not perturb the result",
                kind.name()
            );
        }
    }

    #[test]
    fn no_faults_matches_reference() {
        let plan = ragged_plan();
        let sizes =
            SizeMap::from_pairs(plan.bindings().iter().map(|b| (b.name.as_str(), b.extent)));
        let (a, b) = random_inputs::<f64>(plan.contraction(), &sizes, 9);
        let want = contract_reference(plan.contraction(), &sizes, &a, &b);
        let got = execute_plan_with_faults(&plan, &a, &b, ExecFaults::NONE).unwrap();
        assert!(got.approx_eq(&want, 1e-11));
    }
}
