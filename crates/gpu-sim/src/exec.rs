//! Functional execution of kernel plans.
//!
//! [`execute_plan`] runs a [`KernelPlan`] exactly the way the generated
//! CUDA kernel of Algorithm 1 would, but on host memory:
//!
//! 1. for every thread block, and every serial step, stage the `A` and `B`
//!    tiles from "global" memory into "shared" buffers (zero-filling
//!    out-of-bounds positions, as boundary-guarded kernels do);
//! 2. each thread loads a column vector of `A` and a row vector of `B` from
//!    the shared tiles into "registers";
//! 3. accumulates their outer product into its `REGx×REGy` register tile;
//! 4. after the last step, stores the register tile to the output, guarded
//!    against partial tiles.
//!
//! Because the lowering in `cogent-core` derives both this plan and the
//! emitted CUDA text from the same configuration, executing the plan
//! functionally validates the index arithmetic of the generated kernel.

use std::error::Error;
use std::fmt;

use cogent_ir::TensorRef;
use cogent_tensor::{DenseTensor, Element};

use crate::fault::ExecFaults;
use crate::plan::{KernelPlan, MapDim};

/// Error from the fallible execution entry points
/// ([`try_execute_plan`], [`try_execute_plan_into`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// An operand's shape does not match the plan's binding extents.
    ShapeMismatch {
        /// Which tensor mismatched (`'A'`, `'B'` or `'C'`).
        tensor: char,
        /// The extents the plan expects, in storage order.
        expected: Vec<usize>,
        /// The extents the operand actually has.
        got: Vec<usize>,
    },
    /// A tensor index has no binding in the plan.
    UnboundIndex {
        /// The index that has no binding.
        index: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ShapeMismatch {
                tensor,
                expected,
                got,
            } => write!(
                f,
                "{tensor} shape mismatch: plan expects {expected:?}, operand has {got:?}"
            ),
            ExecError::UnboundIndex { index } => {
                write!(f, "plan has no binding for tensor index {index}")
            }
        }
    }
}

impl Error for ExecError {}

/// How one dimension of a tensor obtains its in-tile coordinate during
/// kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CoordSource {
    /// From the decomposition of a hardware dimension, at this position of
    /// the group (0 = fastest).
    Group(MapDim, usize),
}

/// Per-dimension access description of one tensor under a plan.
#[derive(Debug, Clone)]
pub(crate) struct DimSpec {
    /// Index into `plan.bindings()`.
    pub binding: usize,
    /// Extent of the dimension.
    pub extent: usize,
    /// Tile size of the dimension.
    pub tile: usize,
    /// Stride of this dimension in the tensor's global layout.
    pub global_stride: usize,
    /// Stride of this dimension in the staged tile's linearization.
    pub tile_stride: usize,
    /// Where the in-tile coordinate comes from.
    pub source: CoordSource,
}

/// Access plan for one tensor: dimensions in the tensor's own storage
/// order (fastest first).
#[derive(Debug, Clone)]
pub(crate) struct TensorAccess {
    pub dims: Vec<DimSpec>,
    pub tile_elems: usize,
}

impl TensorAccess {
    pub(crate) fn new(plan: &KernelPlan, tensor: &TensorRef) -> Self {
        Self::try_new(plan, tensor).unwrap_or_else(|e| panic!("{e}"))
    }

    pub(crate) fn try_new(plan: &KernelPlan, tensor: &TensorRef) -> Result<Self, ExecError> {
        let mut dims = Vec::with_capacity(tensor.rank());
        let mut global_stride = 1usize;
        let mut tile_stride = 1usize;
        for idx in tensor.indices() {
            let (b_pos, binding) = plan
                .bindings()
                .iter()
                .enumerate()
                .find(|(_, b)| &b.name == idx)
                .ok_or_else(|| ExecError::UnboundIndex {
                    index: idx.to_string(),
                })?;
            let group_pos = plan
                .group_bindings(binding.dim)
                .position(|b| b.name == binding.name)
                .expect("binding is in its own group");
            dims.push(DimSpec {
                binding: b_pos,
                extent: binding.extent,
                tile: binding.tile,
                global_stride,
                tile_stride,
                source: CoordSource::Group(binding.dim, group_pos),
            });
            global_stride *= binding.extent;
            tile_stride *= binding.tile;
        }
        Ok(Self {
            dims,
            tile_elems: tile_stride,
        })
    }

    /// The extents of the tensor in storage order.
    pub(crate) fn extents(&self) -> Vec<usize> {
        self.dims.iter().map(|d| d.extent).collect()
    }

    /// Contribution of hardware dimension `dim` to the tile-linear offset,
    /// tabulated for every linear position of that dimension.
    ///
    /// `decomp[pos]` must give the in-tile coordinate of the group's
    /// `pos`-th binding.
    pub(crate) fn tile_offset_table(&self, plan: &KernelPlan, dim: MapDim) -> Vec<usize> {
        let size = plan.group_size(dim);
        (0..size)
            .map(|lin| {
                let coords = plan.decompose_in_group(dim, lin);
                self.dims
                    .iter()
                    .filter_map(|d| match d.source {
                        CoordSource::Group(g, pos) if g == dim => Some(d.tile_stride * coords[pos]),
                        _ => None,
                    })
                    .sum()
            })
            .collect()
    }
}

/// Executes `plan` on concrete operands, producing the output tensor.
///
/// # Panics
///
/// Panics when the operand shapes do not match the plan's binding extents.
///
/// # Examples
///
/// ```
/// use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
/// use cogent_gpu_sim::execute_plan;
/// use cogent_ir::{Contraction, SizeMap};
/// use cogent_tensor::reference::{contract_reference, random_inputs};
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let plan = KernelPlan::new(&tc, vec![
///     IndexBinding::new("i", 20, 8, MapDim::ThreadX),
///     IndexBinding::new("j", 12, 4, MapDim::ThreadY),
///     IndexBinding::new("k", 9, 4, MapDim::SerialK),
/// ])?;
/// let sizes = SizeMap::from_pairs([("i", 20), ("j", 12), ("k", 9)]);
/// let (a, b) = random_inputs::<f64>(&tc, &sizes, 0);
/// let got = execute_plan(&plan, &a, &b);
/// let want = contract_reference(&tc, &sizes, &a, &b);
/// assert!(got.approx_eq(&want, 1e-12));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn execute_plan<T: Element>(
    plan: &KernelPlan,
    a: &DenseTensor<T>,
    b: &DenseTensor<T>,
) -> DenseTensor<T> {
    try_execute_plan(plan, a, b).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`execute_plan`]: shape and binding problems come
/// back as an [`ExecError`] instead of a panic.
///
/// # Errors
///
/// Returns [`ExecError::ShapeMismatch`] when an operand's extents differ
/// from the plan's binding extents and [`ExecError::UnboundIndex`] when a
/// tensor index has no binding (only possible for plans corrupted past
/// [`KernelPlan::new`] validation).
pub fn try_execute_plan<T: Element>(
    plan: &KernelPlan,
    a: &DenseTensor<T>,
    b: &DenseTensor<T>,
) -> Result<DenseTensor<T>, ExecError> {
    let acc_c = TensorAccess::try_new(plan, plan.contraction().c())?;
    let mut c = DenseTensor::<T>::zeros(&acc_c.extents());
    try_execute_plan_into(plan, a, b, &mut c)?;
    Ok(c)
}

/// Executes `plan` writing into an existing output tensor. With
/// [`StoreMode::Accumulate`](crate::plan::StoreMode) the kernel's
/// contributions are added to `c`'s current contents.
///
/// # Panics
///
/// Panics when any operand shape does not match the plan's binding extents.
pub fn execute_plan_into<T: Element>(
    plan: &KernelPlan,
    a: &DenseTensor<T>,
    b: &DenseTensor<T>,
    c: &mut DenseTensor<T>,
) {
    try_execute_plan_into(plan, a, b, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`execute_plan_into`].
///
/// # Errors
///
/// Same as [`try_execute_plan`].
pub fn try_execute_plan_into<T: Element>(
    plan: &KernelPlan,
    a: &DenseTensor<T>,
    b: &DenseTensor<T>,
    c: &mut DenseTensor<T>,
) -> Result<(), ExecError> {
    execute_faulted(plan, a, b, c, ExecFaults::NONE)
}

/// The executor core. `faults` selects deliberate misbehaviors for the
/// fault-injection harness ([`crate::fault`]); normal execution passes
/// [`ExecFaults::NONE`] and takes the unperturbed path everywhere.
pub(crate) fn execute_faulted<T: Element>(
    plan: &KernelPlan,
    a: &DenseTensor<T>,
    b: &DenseTensor<T>,
    c: &mut DenseTensor<T>,
    faults: ExecFaults,
) -> Result<(), ExecError> {
    let _span = cogent_obs::span("exec");
    // Phase timing is only collected while tracing is enabled so the hot
    // loops stay branch-cheap in normal runs.
    let timing = cogent_obs::enabled();
    let mut stage_ns = 0u128;
    let mut compute_ns = 0u128;
    let mut store_ns = 0u128;
    let mut stage_oob = 0u128;
    let mut store_oob = 0u128;
    let tc = plan.contraction();
    let acc_a = TensorAccess::try_new(plan, tc.a())?;
    let acc_b = TensorAccess::try_new(plan, tc.b())?;
    let acc_c = TensorAccess::try_new(plan, tc.c())?;

    let check_shape = |tensor: char, got: &[usize], expected: Vec<usize>| {
        if got == expected {
            Ok(())
        } else {
            Err(ExecError::ShapeMismatch {
                tensor,
                expected,
                got: got.to_vec(),
            })
        }
    };
    check_shape('A', a.layout().extents(), acc_a.extents())?;
    check_shape('B', b.layout().extents(), acc_b.extents())?;

    let tbx = plan.group_size(MapDim::ThreadX);
    let tby = plan.group_size(MapDim::ThreadY);
    let regx = plan.group_size(MapDim::RegX);
    let regy = plan.group_size(MapDim::RegY);
    let ktile = plan.group_size(MapDim::SerialK);
    let threads = tbx * tby;
    let steps = plan.steps();

    // Tabulated smem-offset contributions per hardware dimension.
    let a_tx = acc_a.tile_offset_table(plan, MapDim::ThreadX);
    let a_rx = acc_a.tile_offset_table(plan, MapDim::RegX);
    let a_k = acc_a.tile_offset_table(plan, MapDim::SerialK);
    let b_ty = acc_b.tile_offset_table(plan, MapDim::ThreadY);
    let b_ry = acc_b.tile_offset_table(plan, MapDim::RegY);
    let b_k = acc_b.tile_offset_table(plan, MapDim::SerialK);

    check_shape('C', c.layout().extents(), acc_c.extents())?;

    let mut smem_a = vec![T::ZERO; acc_a.tile_elems];
    let mut smem_b = vec![T::ZERO; acc_b.tile_elems];
    // With the skipped-sync fault, tiles are staged into these side
    // buffers and published only *after* the compute phase, so every step
    // computes on the previous step's tiles (step 0 sees zeros) — the
    // data hazard a missing `__syncthreads()` creates.
    let mut incoming_a = vec![
        T::ZERO;
        if faults.skip_sync {
            acc_a.tile_elems
        } else {
            0
        }
    ];
    let mut incoming_b = vec![
        T::ZERO;
        if faults.skip_sync {
            acc_b.tile_elems
        } else {
            0
        }
    ];
    // The truncated-staging fault stops the cooperative copy halfway, as
    // if half the threads never ran their staging loop iterations.
    let a_limit = if faults.truncate_staging {
        acc_a.tile_elems / 2
    } else {
        acc_a.tile_elems
    };
    let b_limit = if faults.truncate_staging {
        acc_b.tile_elems / 2
    } else {
        acc_b.tile_elems
    };
    let mut reg_c = vec![T::ZERO; threads * regx * regy];
    let mut reg_a = vec![T::ZERO; regx];
    let mut reg_b = vec![T::ZERO; regy];
    // Per-binding global base offsets of the current tile.
    let num_bindings = plan.bindings().len();
    let mut base = vec![0usize; num_bindings];

    for block in 0..plan.num_blocks() {
        // (0) Establish the block's output tile origin.
        let tiles = plan.block_tile_coords(block);
        for (bind, t) in plan
            .external_bindings_c_order()
            .zip(&tiles)
            .map(|(bb, &t)| (bb, t))
        {
            let pos = plan
                .bindings()
                .iter()
                .position(|x| x.name == bind.name)
                .expect("binding exists");
            base[pos] = t * bind.tile;
        }

        reg_c.iter_mut().for_each(|v| *v = T::ZERO);

        #[allow(clippy::needless_range_loop)] // tx/ty are thread coordinates
        for step in 0..steps {
            // Internal tile origins for this step (mixed radix over the
            // SerialK group's tile counts, fastest first).
            let mut rem = step;
            for bind in plan.group_bindings(MapDim::SerialK) {
                let n = bind.num_tiles();
                let t = rem % n;
                rem /= n;
                let pos = plan
                    .bindings()
                    .iter()
                    .position(|x| x.name == bind.name)
                    .expect("binding exists");
                base[pos] = t * bind.tile;
            }

            // (1) Stage tiles of A and B into shared memory (guarded).
            let stage_start = timing.then(std::time::Instant::now);
            {
                let (dest_a, dest_b) = if faults.skip_sync {
                    (&mut incoming_a, &mut incoming_b)
                } else {
                    (&mut smem_a, &mut smem_b)
                };
                stage_oob += stage_tile(
                    &acc_a,
                    &base,
                    a.as_slice(),
                    &mut dest_a[..a_limit],
                    faults.drop_tail_guard,
                );
                stage_oob += stage_tile(
                    &acc_b,
                    &base,
                    b.as_slice(),
                    &mut dest_b[..b_limit],
                    faults.drop_tail_guard,
                );
            }
            if let Some(t) = stage_start {
                stage_ns += t.elapsed().as_nanos();
            }

            // (2)+(3) Each thread: SMEM→REG vectors, outer product. The
            // corrupted-accumulation fault drops the last serial in-tile
            // iteration, losing that slice's contribution.
            let ktile_eff = if faults.corrupt_accumulation {
                ktile.saturating_sub(1)
            } else {
                ktile
            };
            let compute_start = timing.then(std::time::Instant::now);
            for ty in 0..tby {
                for tx in 0..tbx {
                    let thread = tx + tbx * ty;
                    let rc = &mut reg_c[thread * regx * regy..(thread + 1) * regx * regy];
                    for j in 0..ktile_eff {
                        let a_base = a_tx[tx] + a_k[j];
                        let b_base = b_ty[ty] + b_k[j];
                        for (rx, ra) in reg_a.iter_mut().enumerate() {
                            *ra = smem_a[a_base + a_rx[rx]];
                        }
                        for (ry, rb) in reg_b.iter_mut().enumerate() {
                            *rb = smem_b[b_base + b_ry[ry]];
                        }
                        for ry in 0..regy {
                            let rb = reg_b[ry];
                            for rx in 0..regx {
                                rc[rx + regx * ry] = reg_a[rx].mul_add_(rb, rc[rx + regx * ry]);
                            }
                        }
                    }
                }
            }
            if let Some(t) = compute_start {
                compute_ns += t.elapsed().as_nanos();
            }
            if faults.skip_sync {
                std::mem::swap(&mut smem_a, &mut incoming_a);
                std::mem::swap(&mut smem_b, &mut incoming_b);
            }
        }

        // (4) Store register tiles to global memory (guarded).
        let store_start = timing.then(std::time::Instant::now);
        store_oob += store_output(plan, &acc_c, &base, c, &reg_c, tbx, tby, regx, regy);
        if let Some(t) = store_start {
            store_ns += t.elapsed().as_nanos();
        }
    }

    if timing {
        // SMEM staging vs compute vs store host-time breakdown, plus how
        // often the tail guards fired (zero-filled loads / skipped stores).
        cogent_obs::counter("exec.stage_ns", stage_ns.max(1));
        cogent_obs::counter("exec.compute_ns", compute_ns.max(1));
        cogent_obs::counter("exec.store_ns", store_ns.max(1));
        cogent_obs::counter("exec.blocks", plan.num_blocks() as u128);
        cogent_obs::counter("exec.steps_per_block", plan.steps() as u128);
        cogent_obs::counter("exec.tail_guard.stage_zero_fills", stage_oob);
        cogent_obs::counter("exec.tail_guard.store_skips", store_oob);
    }
    Ok(())
}

/// Stages one tile into a shared buffer, zero-filling out-of-bounds
/// positions. Returns how many positions the bounds guard zero-filled.
///
/// With `drop_tail_guard` (a fault-injection mode) the bounds check is
/// disabled: out-of-bounds coordinates are clamped to the last valid
/// position, so the tail reads duplicated boundary data instead of zeros —
/// the wrong-answer mode an unguarded generated kernel would exhibit.
fn stage_tile<T: Element>(
    acc: &TensorAccess,
    base: &[usize],
    global: &[T],
    smem: &mut [T],
    drop_tail_guard: bool,
) -> u128 {
    let rank = acc.dims.len();
    let mut coords = vec![0usize; rank];
    let mut zero_fills = 0u128;
    for slot in smem.iter_mut() {
        let mut off = 0usize;
        let mut in_bounds = true;
        for (d, &cd) in acc.dims.iter().zip(&coords) {
            let mut g = base[d.binding] + cd;
            if g >= d.extent {
                if drop_tail_guard {
                    g = d.extent - 1;
                } else {
                    in_bounds = false;
                    break;
                }
            }
            off += g * d.global_stride;
        }
        *slot = if in_bounds {
            global[off]
        } else {
            zero_fills += 1;
            T::ZERO
        };
        // Advance in-tile coords (mixed radix over tile sizes).
        for (d, c) in acc.dims.iter().zip(coords.iter_mut()) {
            *c += 1;
            if *c < d.tile {
                break;
            }
            *c = 0;
        }
    }
    zero_fills
}

/// Per-dimension output coordinate tables: `tables[d][lin]` is the
/// in-tile coordinate of C's `d`-th dimension at linear position `lin` of
/// its source hardware dimension. Computed once per plan, used per store.
pub(crate) fn output_coord_tables(plan: &KernelPlan, acc_c: &TensorAccess) -> Vec<Vec<usize>> {
    acc_c
        .dims
        .iter()
        .map(|d| {
            let CoordSource::Group(dim, pos) = d.source;
            (0..plan.group_size(dim))
                .map(|lin| plan.decompose_in_group(dim, lin)[pos])
                .collect()
        })
        .collect()
}

/// Stores every thread's register tile, skipping out-of-bounds elements.
/// Returns how many stores the bounds guard skipped.
#[allow(clippy::too_many_arguments)]
fn store_output<T: Element>(
    plan: &KernelPlan,
    acc_c: &TensorAccess,
    base: &[usize],
    c: &mut DenseTensor<T>,
    reg_c: &[T],
    tbx: usize,
    tby: usize,
    regx: usize,
    regy: usize,
) -> u128 {
    let mut skips = 0u128;
    let out = c.as_mut_slice();
    let tables = output_coord_tables(plan, acc_c);
    for ty in 0..tby {
        for tx in 0..tbx {
            let thread = tx + tbx * ty;
            let rc = &reg_c[thread * regx * regy..(thread + 1) * regx * regy];
            for ry in 0..regy {
                for rx in 0..regx {
                    let mut off = 0usize;
                    let mut in_bounds = true;
                    for (d, table) in acc_c.dims.iter().zip(&tables) {
                        let CoordSource::Group(dim, _) = d.source;
                        let lin = match dim {
                            MapDim::ThreadX => tx,
                            MapDim::ThreadY => ty,
                            MapDim::RegX => rx,
                            MapDim::RegY => ry,
                            MapDim::Grid => 0,
                            MapDim::SerialK => unreachable!("C has no internal index"),
                        };
                        let g = base[d.binding] + table[lin];
                        if g >= d.extent {
                            in_bounds = false;
                            break;
                        }
                        off += g * d.global_stride;
                    }
                    if in_bounds {
                        match plan.store_mode() {
                            crate::plan::StoreMode::Assign => {
                                out[off] = rc[rx + regx * ry];
                            }
                            crate::plan::StoreMode::Accumulate => {
                                out[off] += rc[rx + regx * ry];
                            }
                        }
                    } else {
                        skips += 1;
                    }
                }
            }
        }
    }
    skips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::IndexBinding;
    use cogent_ir::{Contraction, SizeMap};
    use cogent_tensor::reference::{contract_reference, random_inputs};

    fn check(plan: &KernelPlan) {
        let tc = plan.contraction();
        let sizes =
            SizeMap::from_pairs(plan.bindings().iter().map(|b| (b.name.as_str(), b.extent)));
        let (a, b) = random_inputs::<f64>(tc, &sizes, 7);
        let got = execute_plan(plan, &a, &b);
        let want = contract_reference(tc, &sizes, &a, &b);
        assert!(
            got.approx_eq(&want, 1e-11),
            "{plan}: max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn matmul_exact_tiling() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        check(
            &KernelPlan::new(
                &tc,
                vec![
                    IndexBinding::new("i", 32, 8, MapDim::ThreadX),
                    IndexBinding::new("j", 16, 4, MapDim::ThreadY),
                    IndexBinding::new("k", 24, 6, MapDim::SerialK),
                ],
            )
            .unwrap(),
        );
    }

    #[test]
    fn matmul_ragged_tiling() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        check(
            &KernelPlan::new(
                &tc,
                vec![
                    IndexBinding::new("i", 30, 8, MapDim::ThreadX),
                    IndexBinding::new("j", 17, 4, MapDim::ThreadY),
                    IndexBinding::new("k", 23, 6, MapDim::SerialK),
                ],
            )
            .unwrap(),
        );
    }

    #[test]
    fn matmul_with_register_tiles() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        // i split?? No — one index per dimension here: i→Tx only. Use a 4D
        // case below for multi-index groups; this covers reg tiling via a
        // second pair of externals.
        let tc4: Contraction = "ijpq-ipk-kqj".parse().unwrap();
        check(
            &KernelPlan::new(
                &tc4,
                vec![
                    IndexBinding::new("i", 13, 4, MapDim::ThreadX),
                    IndexBinding::new("p", 7, 3, MapDim::RegX),
                    IndexBinding::new("j", 11, 4, MapDim::ThreadY),
                    IndexBinding::new("q", 5, 2, MapDim::RegY),
                    IndexBinding::new("k", 9, 4, MapDim::SerialK),
                ],
            )
            .unwrap(),
        );
        let _ = tc;
    }

    #[test]
    fn fig2_mapping_of_eq1() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        check(
            &KernelPlan::new(
                &tc,
                vec![
                    IndexBinding::new("a", 8, 2, MapDim::ThreadX),
                    IndexBinding::new("b", 8, 2, MapDim::RegX),
                    IndexBinding::new("c", 8, 2, MapDim::ThreadY),
                    IndexBinding::new("d", 8, 2, MapDim::RegY),
                    IndexBinding::new("e", 8, 4, MapDim::SerialK),
                    IndexBinding::new("f", 8, 2, MapDim::SerialK),
                ],
            )
            .unwrap(),
        );
    }

    #[test]
    fn eq1_with_grid_mapped_externals() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        check(
            &KernelPlan::new(
                &tc,
                vec![
                    IndexBinding::new("a", 9, 4, MapDim::ThreadX),
                    IndexBinding::new("b", 6, 1, MapDim::Grid),
                    IndexBinding::new("c", 7, 4, MapDim::ThreadY),
                    IndexBinding::new("d", 5, 1, MapDim::Grid),
                    IndexBinding::new("e", 6, 3, MapDim::SerialK),
                    IndexBinding::new("f", 4, 4, MapDim::SerialK),
                ],
            )
            .unwrap(),
        );
    }

    #[test]
    fn multiple_indices_per_thread_dimension() {
        // Both a and b on ThreadX (composed), c and d on ThreadY.
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        check(
            &KernelPlan::new(
                &tc,
                vec![
                    IndexBinding::new("a", 6, 3, MapDim::ThreadX),
                    IndexBinding::new("b", 6, 2, MapDim::ThreadX),
                    IndexBinding::new("c", 6, 2, MapDim::ThreadY),
                    IndexBinding::new("d", 6, 3, MapDim::ThreadY),
                    IndexBinding::new("e", 5, 5, MapDim::SerialK),
                    IndexBinding::new("f", 7, 2, MapDim::SerialK),
                ],
            )
            .unwrap(),
        );
    }

    #[test]
    fn sd2_1_six_dimensional() {
        let tc: Contraction = "abcdef-gdab-efgc".parse().unwrap();
        check(
            &KernelPlan::new(
                &tc,
                vec![
                    IndexBinding::new("a", 5, 2, MapDim::ThreadX),
                    IndexBinding::new("b", 4, 2, MapDim::RegX),
                    IndexBinding::new("d", 4, 2, MapDim::ThreadX),
                    IndexBinding::new("c", 5, 2, MapDim::ThreadY),
                    IndexBinding::new("e", 4, 2, MapDim::RegY),
                    IndexBinding::new("f", 3, 1, MapDim::Grid),
                    IndexBinding::new("g", 6, 3, MapDim::SerialK),
                ],
            )
            .unwrap(),
        );
    }

    #[test]
    fn outer_product_no_internals() {
        let tc: Contraction = "ij-i-j".parse().unwrap();
        check(
            &KernelPlan::new(
                &tc,
                vec![
                    IndexBinding::new("i", 10, 4, MapDim::ThreadX),
                    IndexBinding::new("j", 6, 2, MapDim::ThreadY),
                ],
            )
            .unwrap(),
        );
    }

    #[test]
    fn tile_size_one_everywhere() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        check(
            &KernelPlan::new(
                &tc,
                vec![
                    IndexBinding::new("i", 5, 1, MapDim::ThreadX),
                    IndexBinding::new("j", 4, 1, MapDim::ThreadY),
                    IndexBinding::new("k", 3, 1, MapDim::SerialK),
                ],
            )
            .unwrap(),
        );
    }

    #[test]
    fn full_extent_tiles_single_block() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let plan = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("i", 8, 8, MapDim::ThreadX),
                IndexBinding::new("j", 8, 8, MapDim::ThreadY),
                IndexBinding::new("k", 8, 8, MapDim::SerialK),
            ],
        )
        .unwrap();
        assert_eq!(plan.num_blocks(), 1);
        assert_eq!(plan.steps(), 1);
        check(&plan);
    }

    #[test]
    fn f32_execution_matches() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let plan = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("a", 6, 2, MapDim::ThreadX),
                IndexBinding::new("b", 6, 3, MapDim::RegX),
                IndexBinding::new("c", 6, 2, MapDim::ThreadY),
                IndexBinding::new("d", 6, 3, MapDim::RegY),
                IndexBinding::new("e", 6, 2, MapDim::SerialK),
                IndexBinding::new("f", 6, 3, MapDim::SerialK),
            ],
        )
        .unwrap();
        let sizes = SizeMap::uniform(&tc, 6);
        let (a, b) = random_inputs::<f32>(&tc, &sizes, 3);
        let got = execute_plan(&plan, &a, &b);
        let want = contract_reference(&tc, &sizes, &a, &b);
        assert!(got.approx_eq(&want, 1e-4));
    }

    #[test]
    fn accumulate_mode_adds_to_existing_output() {
        use crate::exec::execute_plan_into;
        use crate::plan::StoreMode;
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let bindings = vec![
            IndexBinding::new("i", 10, 4, MapDim::ThreadX),
            IndexBinding::new("j", 9, 4, MapDim::ThreadY),
            IndexBinding::new("k", 7, 3, MapDim::SerialK),
        ];
        let plan = KernelPlan::new(&tc, bindings.clone())
            .unwrap()
            .with_store_mode(StoreMode::Accumulate);
        assert_eq!(plan.store_mode(), StoreMode::Accumulate);
        let sizes = SizeMap::from_pairs([("i", 10), ("j", 9), ("k", 7)]);
        let (a, b) = random_inputs::<f64>(&tc, &sizes, 5);
        let want_once = contract_reference(&tc, &sizes, &a, &b);

        // Accumulating twice into a zero tensor doubles the result.
        let mut c = cogent_tensor::DenseTensor::<f64>::zeros(&[10, 9]);
        execute_plan_into(&plan, &a, &b, &mut c);
        execute_plan_into(&plan, &a, &b, &mut c);
        for (got, want) in c.as_slice().iter().zip(want_once.as_slice()) {
            assert!((got - 2.0 * want).abs() < 1e-11);
        }

        // Assign mode overwrites instead.
        let assign = KernelPlan::new(&tc, bindings).unwrap();
        let mut c2 = cogent_tensor::DenseTensor::<f64>::zeros(&[10, 9]);
        execute_plan_into(&assign, &a, &b, &mut c2);
        execute_plan_into(&assign, &a, &b, &mut c2);
        assert!(c2.approx_eq(&want_once, 1e-11));
    }

    #[test]
    #[should_panic(expected = "A shape mismatch")]
    fn validates_operand_shapes() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let plan = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("i", 8, 4, MapDim::ThreadX),
                IndexBinding::new("j", 8, 4, MapDim::ThreadY),
                IndexBinding::new("k", 8, 4, MapDim::SerialK),
            ],
        )
        .unwrap();
        let a = DenseTensor::<f64>::zeros(&[4, 8]);
        let b = DenseTensor::<f64>::zeros(&[8, 8]);
        let _ = execute_plan(&plan, &a, &b);
    }
}
