//! Shared-memory bank-conflict analysis.
//!
//! The paper's cost model only prices DRAM traffic; shared-memory bank
//! conflicts are a second-order effect the generated kernels can still
//! suffer from (e.g. when the register-tile stride hits a multiple of the
//! bank count). This module measures them so a user can diagnose a
//! configuration: for every warp-wide shared-memory read in the compute
//! phase (the `r_A`/`r_B` loads of Algorithm 1), it computes the conflict
//! degree — the maximum number of lanes addressing *different* words in
//! the same bank, i.e. the serialization factor of that access.
//!
//! The result is diagnostic: it is reported alongside the simulation but
//! deliberately not folded into the calibrated time model.

use cogent_gpu_model::{GpuDevice, Precision};

use crate::exec::TensorAccess;
use crate::plan::{KernelPlan, MapDim};

/// Number of shared-memory banks on all modeled devices.
const BANKS: usize = 32;

/// Bank-conflict statistics for one kernel plan.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BankConflictReport {
    /// Average serialization factor of the `r_A` loads (1.0 = conflict
    /// free; 2.0 = every access replays once; ...).
    pub a_load_factor: f64,
    /// Average serialization factor of the `r_B` loads.
    pub b_load_factor: f64,
}

impl BankConflictReport {
    /// Worst of the two factors.
    pub fn worst(&self) -> f64 {
        self.a_load_factor.max(self.b_load_factor)
    }

    /// Whether the plan is conflict-free (broadcasts do not count as
    /// conflicts).
    pub fn is_conflict_free(&self) -> bool {
        self.worst() <= 1.0 + 1e-9
    }
}

/// Serialization factor of one warp access given each active lane's word
/// address: lanes reading the *same* word broadcast (no conflict); lanes
/// reading different words in the same bank serialize.
fn conflict_degree(addresses: &[usize]) -> usize {
    let mut per_bank: [Vec<usize>; BANKS] = std::array::from_fn(|_| Vec::new());
    for &w in addresses {
        let bank = w % BANKS;
        if !per_bank[bank].contains(&w) {
            per_bank[bank].push(w);
        }
    }
    per_bank.iter().map(Vec::len).max().unwrap_or(1).max(1)
}

/// Analyzes the shared-memory access pattern of the compute phase.
///
/// # Examples
///
/// ```
/// use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
/// use cogent_gpu_sim::smem::analyze_bank_conflicts;
/// use cogent_gpu_model::{GpuDevice, Precision};
/// use cogent_ir::Contraction;
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let plan = KernelPlan::new(&tc, vec![
///     IndexBinding::new("i", 64, 16, MapDim::ThreadX),
///     IndexBinding::new("j", 64, 16, MapDim::ThreadY),
///     IndexBinding::new("k", 64, 8, MapDim::SerialK),
/// ])?;
/// let r = analyze_bank_conflicts(&plan, &GpuDevice::v100(), Precision::F64);
/// assert!(r.a_load_factor >= 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze_bank_conflicts(
    plan: &KernelPlan,
    device: &GpuDevice,
    precision: Precision,
) -> BankConflictReport {
    let tc = plan.contraction();
    let acc_a = TensorAccess::new(plan, tc.a());
    let acc_b = TensorAccess::new(plan, tc.b());

    let tbx = plan.group_size(MapDim::ThreadX);
    let tby = plan.group_size(MapDim::ThreadY);
    let threads = tbx * tby;
    let warp = device.warp_size;
    // Bank position is computed at *element* granularity: for f32 an
    // element is one 4-byte bank word; for f64 the hardware splits each
    // 8-byte access into two half-warp phases, which makes consecutive
    // doubles span all banks exactly once — equivalent to 8-byte banks.
    let _ = precision;

    let a_tx = acc_a.tile_offset_table(plan, MapDim::ThreadX);
    let a_rx = acc_a.tile_offset_table(plan, MapDim::RegX);
    let a_k = acc_a.tile_offset_table(plan, MapDim::SerialK);
    let b_ty = acc_b.tile_offset_table(plan, MapDim::ThreadY);
    let b_ry = acc_b.tile_offset_table(plan, MapDim::RegY);
    let b_k = acc_b.tile_offset_table(plan, MapDim::SerialK);

    // Sample the first k iteration and the first register slot: the bank
    // pattern repeats across j/rx with constant offsets, so the conflict
    // structure is representative.
    let mut a_total = 0usize;
    let mut b_total = 0usize;
    let mut accesses = 0usize;
    let mut addrs = Vec::with_capacity(warp);
    for warp_start in (0..threads).step_by(warp) {
        let lanes = warp.min(threads - warp_start);
        // r_A load: offset depends on tx (and rx, j fixed at 0).
        addrs.clear();
        for lane in 0..lanes {
            let t = warp_start + lane;
            let (tx, _ty) = (t % tbx.max(1), t / tbx.max(1));
            addrs.push(a_tx[tx] + a_rx[0] + a_k[0]);
        }
        a_total += conflict_degree(&addrs);
        // r_B load: offset depends on ty.
        addrs.clear();
        for lane in 0..lanes {
            let t = warp_start + lane;
            let ty = t / tbx.max(1);
            addrs.push(b_ty[ty] + b_ry[0] + b_k[0]);
        }
        b_total += conflict_degree(&addrs);
        accesses += 1;
    }

    let n = accesses.max(1) as f64;
    BankConflictReport {
        a_load_factor: a_total as f64 / n,
        b_load_factor: b_total as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::IndexBinding;
    use cogent_ir::Contraction;

    fn matmul_plan(ti: usize, tj: usize) -> KernelPlan {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("i", 64, ti, MapDim::ThreadX),
                IndexBinding::new("j", 64, tj, MapDim::ThreadY),
                IndexBinding::new("k", 64, 8, MapDim::SerialK),
            ],
        )
        .unwrap()
    }

    #[test]
    fn contiguous_tx_access_is_conflict_free() {
        // r_A[tx] walks consecutive smem elements within a warp's tx span:
        // conflict-free for f64 too (two-phase 64-bit access).
        let r = analyze_bank_conflicts(&matmul_plan(16, 16), &GpuDevice::v100(), Precision::F64);
        assert!(r.is_conflict_free(), "{r:?}");
        let r32 = analyze_bank_conflicts(&matmul_plan(32, 8), &GpuDevice::v100(), Precision::F64);
        assert!(r32.is_conflict_free(), "{r32:?}");
    }

    #[test]
    fn broadcast_access_has_no_conflict() {
        // r_B depends only on ty: all lanes of a warp with the same ty
        // read the SAME word → broadcast.
        let r = analyze_bank_conflicts(&matmul_plan(32, 8), &GpuDevice::v100(), Precision::F64);
        assert!((r.b_load_factor - 1.0).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn strided_access_conflicts() {
        // tx span of 2 with f32: within a warp, ty varies 16 times, each
        // mapping to the same two words → heavy broadcast, no conflict;
        // compare against a pattern engineered to stride by 32 words:
        // a 4D case where the A-tile stride of the tx index is 32 elems.
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let plan = KernelPlan::new(
            &tc,
            vec![
                // A = [a,e,b,f]: tx index b has tile-stride T_a*T_e = 32
                // f32 words × ... engineered conflict.
                IndexBinding::new("a", 64, 8, MapDim::RegX),
                IndexBinding::new("b", 64, 32, MapDim::ThreadX),
                IndexBinding::new("c", 64, 8, MapDim::ThreadY),
                IndexBinding::new("d", 64, 1, MapDim::Grid),
                IndexBinding::new("e", 64, 4, MapDim::SerialK),
                IndexBinding::new("f", 64, 1, MapDim::SerialK),
            ],
        )
        .unwrap();
        // b's tile stride in A's tile = T_a * T_e = 32 elements → every
        // tx lane hits bank (32*tx)%32 = 0: 32-way conflict.
        let r = analyze_bank_conflicts(&plan, &GpuDevice::v100(), Precision::F32);
        assert!(r.a_load_factor > 8.0, "{r:?}");
    }

    #[test]
    fn report_helpers() {
        let r = BankConflictReport {
            a_load_factor: 1.0,
            b_load_factor: 1.0,
        };
        assert!(r.is_conflict_free());
        assert_eq!(r.worst(), 1.0);
        let r2 = BankConflictReport {
            a_load_factor: 4.0,
            b_load_factor: 1.0,
        };
        assert!(!r2.is_conflict_free());
        assert_eq!(r2.worst(), 4.0);
    }

    #[test]
    fn conflict_degree_counts_distinct_words_per_bank() {
        // Same word twice = broadcast.
        assert_eq!(conflict_degree(&[0, 0, 0]), 1);
        // 0 and 32 share bank 0 but are different words.
        assert_eq!(conflict_degree(&[0, 32]), 2);
        // Fully spread.
        let spread: Vec<usize> = (0..32).collect();
        assert_eq!(conflict_degree(&spread), 1);
        assert_eq!(conflict_degree(&[]), 1);
    }
}
