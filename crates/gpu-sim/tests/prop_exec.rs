//! Property test: for random contractions, random legal mappings and
//! random (often non-dividing) tile sizes, executing the kernel plan must
//! reproduce the reference contraction exactly.

use cogent_gpu_sim::execute_plan;
use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
use cogent_ir::{Contraction, SizeMap, TensorRef};
use cogent_tensor::reference::{contract_reference, random_inputs};
use proptest::prelude::*;

/// Builds a random-but-legal plan: A-externals distributed over
/// ThreadX/RegX/Grid, B-externals over ThreadY/RegY/Grid, internals on
/// SerialK, with tile sizes in `1..=extent`.
fn plan_strategy() -> impl Strategy<Value = KernelPlan> {
    (
        1usize..=2,                          // externals in A
        1usize..=2,                          // externals in B
        1usize..=2,                          // internals
        prop::collection::vec(2usize..7, 6), // extents
        prop::collection::vec(0usize..3, 6), // dim choice per index
        prop::collection::vec(1usize..7, 6), // tile seed per index
        0usize..4,                           // rotation of A's layout
        0usize..4,                           // rotation of B's layout
    )
        .prop_map(|(na, nb, ni, extents, dims, tiles, rot_a, rot_b)| {
            let total = na + nb + ni;
            let letters: Vec<String> = (0..total)
                .map(|i| ((b'a' + i as u8) as char).to_string())
                .collect();
            let ext_a = &letters[..na];
            let ext_b = &letters[na..na + nb];
            let ints = &letters[na + nb..];
            let c_idx: Vec<&str> = ext_a
                .iter()
                .chain(ext_b.iter())
                .map(String::as_str)
                .collect();
            let mut a_idx: Vec<&str> = ext_a
                .iter()
                .chain(ints.iter())
                .map(String::as_str)
                .collect();
            let mut b_idx: Vec<&str> = ext_b
                .iter()
                .chain(ints.iter())
                .map(String::as_str)
                .collect();
            let (la, lb) = (a_idx.len(), b_idx.len());
            a_idx.rotate_left(rot_a % la);
            b_idx.rotate_left(rot_b % lb);
            let tc = Contraction::new(
                TensorRef::new("C", c_idx),
                TensorRef::new("A", a_idx),
                TensorRef::new("B", b_idx),
            )
            .expect("valid contraction");

            let mut bindings = Vec::new();
            // Ensure at least one ThreadX/ThreadY index: force the first
            // A-external to ThreadX and first B-external to ThreadY.
            for (i, name) in letters.iter().enumerate() {
                let extent = extents[i % extents.len()];
                let tile = 1 + tiles[i % tiles.len()] % extent;
                let dim = if i < na {
                    if i == 0 {
                        MapDim::ThreadX
                    } else {
                        match dims[i % dims.len()] {
                            0 => MapDim::ThreadX,
                            1 => MapDim::RegX,
                            _ => MapDim::Grid,
                        }
                    }
                } else if i < na + nb {
                    if i == na {
                        MapDim::ThreadY
                    } else {
                        match dims[i % dims.len()] {
                            0 => MapDim::ThreadY,
                            1 => MapDim::RegY,
                            _ => MapDim::Grid,
                        }
                    }
                } else {
                    MapDim::SerialK
                };
                let tile = if dim == MapDim::Grid { 1 } else { tile };
                bindings.push(IndexBinding::new(name.as_str(), extent, tile, dim));
            }
            KernelPlan::new(&tc, bindings).expect("legal plan")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_execution_matches_reference(plan in plan_strategy(), seed in 0u64..100) {
        let tc = plan.contraction();
        let sizes = SizeMap::from_pairs(
            plan.bindings().iter().map(|b| (b.name.as_str(), b.extent)),
        );
        let (a, b) = random_inputs::<f64>(tc, &sizes, seed);
        let got = execute_plan(&plan, &a, &b);
        let want = contract_reference(tc, &sizes, &a, &b);
        prop_assert!(
            got.approx_eq(&want, 1e-11),
            "plan {} diverged: max diff {}",
            plan,
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn plan_structure_invariants(plan in plan_strategy()) {
        // Thread and register sizes multiply out to the block's data space.
        let tbx = plan.group_size(MapDim::ThreadX);
        let tby = plan.group_size(MapDim::ThreadY);
        let rx = plan.group_size(MapDim::RegX);
        let ry = plan.group_size(MapDim::RegY);
        prop_assert_eq!(plan.threads_per_block(), tbx * tby);
        prop_assert_eq!(plan.outputs_per_thread(), rx * ry);
        // Shared memory holds exactly the two staged tiles.
        prop_assert_eq!(
            plan.smem_bytes(8),
            (plan.a_tile_elements() + plan.b_tile_elements()) * 8
        );
        // Padded flops never undercount true flops.
        prop_assert!(plan.padded_flops() >= plan.true_flops());
    }
}
