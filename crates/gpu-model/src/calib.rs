//! Calibration constants for the performance models.
//!
//! Every empirical constant used by the timing models lives here so the
//! whole stack can be tuned coherently. Values were chosen so that the
//! simulated GFLOPS of the reproduced frameworks land in the bands the
//! paper reports (e.g. COGENT ≈ 1800–2100 GFLOPS and TAL_SH ≈ 390 GFLOPS
//! for CCSD(T) contractions on the V100); the comparative *shapes* in
//! Figs. 4–8 are what the reproduction targets.

/// Kernel launch overhead, seconds. Each kernel (including every transpose
/// in a TTGT pipeline) pays this once.
pub const KERNEL_LAUNCH_OVERHEAD_S: f64 = 4.0e-6;

/// Fraction of peak DRAM bandwidth achievable by a perfectly coalesced
/// stream (ECC and refresh overheads keep real kernels below the headline
/// number).
pub const STREAM_BANDWIDTH_EFFICIENCY: f64 = 0.82;

/// Occupancy (fraction of max resident warps) needed to saturate DRAM
/// bandwidth. Below this, achievable bandwidth degrades roughly linearly —
/// there is not enough memory-level parallelism in flight.
pub const OCCUPANCY_FOR_PEAK_BANDWIDTH: f64 = 0.25;

/// Occupancy needed to saturate the floating-point pipelines given the
/// instruction-level parallelism of an unrolled register-tiled kernel.
pub const OCCUPANCY_FOR_PEAK_COMPUTE: f64 = 0.50;

/// Fraction of peak FLOPS reachable by the best register-tiled direct
/// contraction kernel (issue limits, address arithmetic, sync overhead).
/// Large register tiles with full ILP get close to what cuBLAS reaches.
pub const DIRECT_KERNEL_COMPUTE_EFFICIENCY: f64 = 0.75;

/// Fraction of peak FLOPS cuBLAS reaches on large square GEMMs (the
/// flattened matrices TTGT produces are typically transposed-layout
/// kernels, a notch below the absolute DGEMM peak).
pub const CUBLAS_PEAK_EFFICIENCY: f64 = 0.75;

/// GEMM dimension (elements) above which cuBLAS tiles are fully utilized
/// along that dimension; smaller extents waste a fraction of each tile.
pub const CUBLAS_TILE_MN: f64 = 128.0;

/// The contracted dimension k saturates more quickly than m/n.
pub const CUBLAS_TILE_K: f64 = 16.0;

/// Additional small-k pipeline penalty scale for cuBLAS: efficiency factor
/// `k / (k + CUBLAS_SMALL_K)`.
pub const CUBLAS_SMALL_K: f64 = 64.0;

/// Bandwidth efficiency of a cuTT-style transpose whose fastest varying
/// dimension is preserved (pure coalesced copy with index remap).
pub const TRANSPOSE_EFF_FVI_PRESERVED: f64 = 0.75;

/// Bandwidth efficiency of a cuTT-style transpose that changes the fastest
/// varying dimension (tiled through shared memory).
pub const TRANSPOSE_EFF_FVI_CHANGED: f64 = 0.45;

/// Penalty applied to the achievable bandwidth when the innermost
/// contiguous run of a transpose is shorter than a transaction: efficiency
/// is scaled by `run_bytes / transaction_bytes` down to this floor.
pub const TRANSPOSE_MIN_EFFICIENCY: f64 = 0.08;

/// Per-element cost (relative to one FLOP) of the index arithmetic in a
/// *naive* one-thread-per-element kernel with no staging. Used only by the
/// sanity-floor baseline.
pub const NAIVE_KERNEL_ADDRESS_OVERHEAD: f64 = 6.0;

/// Efficiency loss applied per `__syncthreads()`-separated stage relative
/// to an ideal pipeline; multiplies compute efficiency as
/// `1 / (1 + SYNC_OVERHEAD * stages_per_element)`.
pub const SYNC_OVERHEAD: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_sane_fractions() {
        for &f in &[
            STREAM_BANDWIDTH_EFFICIENCY,
            OCCUPANCY_FOR_PEAK_BANDWIDTH,
            OCCUPANCY_FOR_PEAK_COMPUTE,
            DIRECT_KERNEL_COMPUTE_EFFICIENCY,
            CUBLAS_PEAK_EFFICIENCY,
            TRANSPOSE_EFF_FVI_PRESERVED,
            TRANSPOSE_EFF_FVI_CHANGED,
            TRANSPOSE_MIN_EFFICIENCY,
        ] {
            assert!(f > 0.0 && f <= 1.0);
        }
        let overhead = KERNEL_LAUNCH_OVERHEAD_S;
        assert!(overhead > 0.0);
        let (kept, changed) = (TRANSPOSE_EFF_FVI_PRESERVED, TRANSPOSE_EFF_FVI_CHANGED);
        assert!(kept > changed);
    }
}
