//! GPU device descriptions.

use std::fmt;

/// Floating-point precision of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// IEEE binary32 (`float`). Used for the Tensor Comprehensions
    /// comparison (Figs. 6–8).
    F32,
    /// IEEE binary64 (`double`). Used for the main evaluation (Figs. 4–5).
    F64,
}

impl Precision {
    /// Element size in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::F32 => f.write_str("f32"),
            Precision::F64 => f.write_str("f64"),
        }
    }
}

/// Static description of a GPU, sufficient for occupancy calculation and
/// roofline-style performance prediction.
///
/// Fields are public: this is a passive, C-style data record describing
/// hardware; presets are provided for the paper's two evaluation platforms.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GpuDevice {
    /// Marketing name, e.g. `"Tesla V100"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Peak double-precision throughput in GFLOP/s.
    pub peak_gflops_f64: f64,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops_f32: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbs: f64,
    /// Shared memory available per thread block, in bytes (the default
    /// 48 KiB CUDA limit on both evaluation platforms).
    pub smem_per_block_bytes: usize,
    /// Shared memory per SM, in bytes (bounds how many blocks co-reside).
    pub smem_per_sm_bytes: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Maximum 32-bit registers per thread.
    pub max_registers_per_thread: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Size of one global-memory transaction, in bytes. The paper's cost
    /// model assumes 128-byte transactions (16 doubles) aligned to 128-byte
    /// boundaries.
    pub transaction_bytes: usize,
}

impl GpuDevice {
    /// The Nvidia Tesla P100 (Pascal, 56 SMs) used for Figs. 4 and 6.
    pub fn p100() -> Self {
        Self {
            name: "Tesla P100".to_owned(),
            sm_count: 56,
            peak_gflops_f64: 4_700.0,
            peak_gflops_f32: 9_300.0,
            dram_bandwidth_gbs: 732.0,
            smem_per_block_bytes: 48 * 1024,
            smem_per_sm_bytes: 64 * 1024,
            registers_per_sm: 64 * 1024,
            max_registers_per_thread: 255,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            warp_size: 32,
            transaction_bytes: 128,
        }
    }

    /// The Nvidia Tesla V100 (Volta, 80 SMs) used for Figs. 5, 7 and 8.
    pub fn v100() -> Self {
        Self {
            name: "Tesla V100".to_owned(),
            sm_count: 80,
            peak_gflops_f64: 7_000.0,
            peak_gflops_f32: 14_000.0,
            dram_bandwidth_gbs: 900.0,
            smem_per_block_bytes: 48 * 1024,
            smem_per_sm_bytes: 96 * 1024,
            registers_per_sm: 64 * 1024,
            max_registers_per_thread: 255,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            warp_size: 32,
            transaction_bytes: 128,
        }
    }

    /// The Nvidia A100 (Ampere, 108 SMs) — not part of the paper's
    /// evaluation, provided to show the models generalize to newer parts.
    pub fn a100() -> Self {
        Self {
            name: "A100".to_owned(),
            sm_count: 108,
            peak_gflops_f64: 9_700.0,
            peak_gflops_f32: 19_500.0,
            dram_bandwidth_gbs: 1_555.0,
            smem_per_block_bytes: 48 * 1024,
            smem_per_sm_bytes: 164 * 1024,
            registers_per_sm: 64 * 1024,
            max_registers_per_thread: 255,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            warp_size: 32,
            transaction_bytes: 128,
        }
    }

    /// Peak throughput for the given precision, GFLOP/s.
    pub fn peak_gflops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::F32 => self.peak_gflops_f32,
            Precision::F64 => self.peak_gflops_f64,
        }
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> usize {
        self.max_threads_per_sm / self.warp_size
    }

    /// Elements of the given precision per memory transaction.
    pub fn elements_per_transaction(&self, precision: Precision) -> usize {
        self.transaction_bytes / precision.bytes()
    }
}

impl fmt::Display for GpuDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} SMs, {:.0} GB/s, {:.0}/{:.0} GFLOPS f64/f32)",
            self.name,
            self.sm_count,
            self.dram_bandwidth_gbs,
            self.peak_gflops_f64,
            self.peak_gflops_f32
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_platforms() {
        let p = GpuDevice::p100();
        let v = GpuDevice::v100();
        assert_eq!(p.sm_count, 56);
        assert_eq!(v.sm_count, 80);
        assert!(v.dram_bandwidth_gbs > p.dram_bandwidth_gbs);
        assert!(v.peak_gflops_f64 > p.peak_gflops_f64);
    }

    #[test]
    fn transaction_granularity() {
        let v = GpuDevice::v100();
        // The paper: 128 bytes = 16 double-precision elements.
        assert_eq!(v.elements_per_transaction(Precision::F64), 16);
        assert_eq!(v.elements_per_transaction(Precision::F32), 32);
    }

    #[test]
    fn warps_per_sm() {
        assert_eq!(GpuDevice::v100().max_warps_per_sm(), 64);
    }

    #[test]
    fn a100_extends_the_lineup() {
        let a = GpuDevice::a100();
        assert!(a.dram_bandwidth_gbs > GpuDevice::v100().dram_bandwidth_gbs);
        assert!(a.peak_gflops_f64 > GpuDevice::v100().peak_gflops_f64);
        assert_eq!(a.sm_count, 108);
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::F32.bytes(), 4);
        assert_eq!(Precision::F64.bytes(), 8);
        assert_eq!(Precision::F64.to_string(), "f64");
    }

    #[test]
    fn peak_selector() {
        let v = GpuDevice::v100();
        assert_eq!(v.peak_gflops(Precision::F32), v.peak_gflops_f32);
        assert_eq!(v.peak_gflops(Precision::F64), v.peak_gflops_f64);
    }

    #[test]
    fn display_contains_name() {
        assert!(GpuDevice::p100().to_string().contains("P100"));
    }
}
