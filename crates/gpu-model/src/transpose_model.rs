//! A cuTT-like tensor transpose performance model.
//!
//! TAL_SH delegates its index permutations to cuTT. A transpose is
//! bandwidth bound — every element is read once and written once — with
//! efficiency determined by how coalesced both streams can be made:
//!
//! * identity permutations are free (skipped);
//! * permutations preserving the fastest varying dimension are remapped
//!   copies and run near streaming bandwidth;
//! * permutations replacing the FVI go through shared-memory tiles at
//!   lower efficiency, degraded further when the innermost contiguous run
//!   is shorter than one 128-byte transaction.

use crate::calib;
use crate::device::{GpuDevice, Precision};

/// Predicted seconds for permuting a tensor with the given extents by
/// `perm` (output dim `d` = input dim `perm[d]`).
///
/// # Panics
///
/// Panics when `perm` is not a permutation of the dimensions.
///
/// # Examples
///
/// ```
/// use cogent_gpu_model::{transpose_model::transpose_time_s, GpuDevice, Precision};
///
/// let d = GpuDevice::v100();
/// let identity = transpose_time_s(&d, &[64, 64, 64], &[0, 1, 2], Precision::F64);
/// let fvi_change = transpose_time_s(&d, &[64, 64, 64], &[2, 1, 0], Precision::F64);
/// assert!(identity < fvi_change);
/// ```
pub fn transpose_time_s(
    device: &GpuDevice,
    extents: &[usize],
    perm: &[usize],
    precision: Precision,
) -> f64 {
    assert_eq!(extents.len(), perm.len(), "rank mismatch");
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        assert!(p < perm.len() && !seen[p], "not a permutation: {perm:?}");
        seen[p] = true;
    }

    if perm.iter().enumerate().all(|(i, &p)| i == p) {
        return 0.0; // identity: TAL_SH skips the copy entirely
    }

    let elements: f64 = extents.iter().map(|&e| e as f64).product();
    let bytes = 2.0 * elements * precision.bytes() as f64; // read + write

    let eff = if perm[0] == 0 {
        calib::TRANSPOSE_EFF_FVI_PRESERVED
    } else {
        // Innermost contiguous run on the read side is the input FVI
        // extent; on the write side it is the extent of the dim that
        // becomes the output FVI. The worse of the two limits coalescing.
        let read_run = extents[0] * precision.bytes();
        let write_run = extents[perm[0]] * precision.bytes();
        let worst_run = read_run.min(write_run) as f64;
        let coalesce = (worst_run / device.transaction_bytes as f64).min(1.0);
        (calib::TRANSPOSE_EFF_FVI_CHANGED * coalesce).max(calib::TRANSPOSE_MIN_EFFICIENCY)
    };

    let bw = device.dram_bandwidth_gbs * calib::STREAM_BANDWIDTH_EFFICIENCY * eff;
    bytes / (bw * 1e9) + calib::KERNEL_LAUNCH_OVERHEAD_S
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuDevice {
        GpuDevice::v100()
    }

    #[test]
    fn identity_is_free() {
        assert_eq!(
            transpose_time_s(&v100(), &[128, 128], &[0, 1], Precision::F64),
            0.0
        );
    }

    #[test]
    fn fvi_preserving_faster_than_fvi_changing() {
        let d = v100();
        let keep = transpose_time_s(&d, &[128, 64, 32], &[0, 2, 1], Precision::F64);
        let change = transpose_time_s(&d, &[128, 64, 32], &[2, 1, 0], Precision::F64);
        assert!(keep < change);
        assert!(keep > 0.0);
    }

    #[test]
    fn short_inner_runs_degrade_bandwidth() {
        let d = v100();
        // Same element count, FVI extent 4 vs 128.
        let short = transpose_time_s(&d, &[4, 32, 128], &[2, 1, 0], Precision::F64);
        let long = transpose_time_s(&d, &[128, 32, 4], &[2, 1, 0], Precision::F64);
        // In the second case the read run is long but the write run (dim 2,
        // extent 4) is short — both suffer; compare against an equal-volume
        // case where both runs span at least a transaction.
        let good = transpose_time_s(&d, &[128, 8, 16], &[2, 1, 0], Precision::F64);
        assert!(good < short);
        assert!(good < long);
    }

    #[test]
    fn time_scales_with_volume() {
        let d = v100();
        let t1 = transpose_time_s(&d, &[64, 64, 64], &[2, 1, 0], Precision::F64);
        let t2 = transpose_time_s(&d, &[128, 64, 64], &[2, 1, 0], Precision::F64);
        assert!(t2 > 1.5 * t1);
    }

    #[test]
    fn f32_moves_fewer_bytes() {
        let d = v100();
        let t64 = transpose_time_s(&d, &[256, 256], &[1, 0], Precision::F64);
        let t32 = transpose_time_s(&d, &[256, 256], &[1, 0], Precision::F32);
        assert!(t32 < t64);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_bad_perm() {
        let _ = transpose_time_s(&v100(), &[4, 4], &[0, 0], Precision::F64);
    }

    #[test]
    fn includes_launch_overhead() {
        let t = transpose_time_s(&v100(), &[2, 2], &[1, 0], Precision::F64);
        assert!(t >= calib::KERNEL_LAUNCH_OVERHEAD_S);
    }
}
