//! CUDA occupancy calculation.

use crate::device::GpuDevice;

/// Per-block resource usage of a kernel, the inputs to the occupancy
/// calculation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BlockResources {
    /// Threads per block.
    pub threads: usize,
    /// Static + dynamic shared memory per block, bytes.
    pub smem_bytes: usize,
    /// 32-bit registers per thread.
    pub registers_per_thread: usize,
}

/// Result of the occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: usize,
    /// Warps resident per SM.
    pub warps_per_sm: usize,
    /// Fraction of the SM's maximum resident warps, in `[0, 1]`.
    pub fraction: f64,
    /// Which resource limited the block count.
    pub limiter: Limiter,
}

/// The resource that bounds how many blocks fit on an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Limiter {
    /// Thread capacity (or the per-SM block cap).
    Threads,
    /// Shared memory capacity.
    SharedMemory,
    /// Register file capacity.
    Registers,
    /// The block is infeasible (exceeds a hard per-block limit).
    Infeasible,
}

/// Computes achievable occupancy of a kernel on `device`.
///
/// Returns [`Limiter::Infeasible`] with zero occupancy when the block
/// exceeds a hard limit (threads per block, shared memory per block, or
/// registers per thread).
///
/// # Examples
///
/// ```
/// use cogent_gpu_model::{occupancy, BlockResources, GpuDevice};
///
/// let occ = occupancy(
///     &GpuDevice::v100(),
///     BlockResources { threads: 256, smem_bytes: 16 * 1024, registers_per_thread: 64 },
/// );
/// assert!(occ.blocks_per_sm >= 4);
/// assert!(occ.fraction > 0.4);
/// ```
pub fn occupancy(device: &GpuDevice, block: BlockResources) -> Occupancy {
    let infeasible = Occupancy {
        blocks_per_sm: 0,
        warps_per_sm: 0,
        fraction: 0.0,
        limiter: Limiter::Infeasible,
    };
    if block.threads == 0
        || block.threads > device.max_threads_per_block
        || block.smem_bytes > device.smem_per_block_bytes
        || block.registers_per_thread > device.max_registers_per_thread
    {
        return infeasible;
    }

    // Warp-granular thread allocation.
    let warps_per_block = block.threads.div_ceil(device.warp_size);
    let by_threads = (device.max_threads_per_sm / (warps_per_block * device.warp_size))
        .min(device.max_blocks_per_sm);

    // Shared memory allocation granularity: 256 bytes.
    let smem_alloc = block.smem_bytes.div_ceil(256) * 256;
    let by_smem = device
        .smem_per_sm_bytes
        .checked_div(smem_alloc)
        .unwrap_or(device.max_blocks_per_sm);

    // Register allocation granularity: 8 registers per thread, allocated
    // per warp.
    let regs_per_thread = block.registers_per_thread.max(16).div_ceil(8) * 8;
    let regs_per_block = regs_per_thread * warps_per_block * device.warp_size;
    let by_regs = device
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(device.max_blocks_per_sm);

    let blocks = by_threads.min(by_smem).min(by_regs);
    if blocks == 0 {
        return infeasible;
    }
    let limiter = if blocks == by_threads {
        Limiter::Threads
    } else if blocks == by_smem {
        Limiter::SharedMemory
    } else {
        Limiter::Registers
    };

    let warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        fraction: warps as f64 / device.max_warps_per_sm() as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuDevice {
        GpuDevice::v100()
    }

    #[test]
    fn small_block_is_thread_limited() {
        let occ = occupancy(
            &v100(),
            BlockResources {
                threads: 64,
                smem_bytes: 0,
                registers_per_thread: 32,
            },
        );
        // 64-thread blocks: capped at 32 blocks/SM → 64 warps... but
        // register file: 32→32 regs * 64 thr = 2048/block * 32 = 65536: fits.
        assert_eq!(occ.blocks_per_sm, 32);
        assert_eq!(occ.warps_per_sm, 64);
        assert!((occ.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smem_limits_blocks() {
        let occ = occupancy(
            &v100(),
            BlockResources {
                threads: 128,
                smem_bytes: 40 * 1024,
                registers_per_thread: 32,
            },
        );
        // 96 KiB / 40 KiB = 2 blocks per SM.
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn registers_limit_blocks() {
        let occ = occupancy(
            &v100(),
            BlockResources {
                threads: 1024,
                smem_bytes: 0,
                registers_per_thread: 128,
            },
        );
        // 128 regs * 1024 threads = 131072 > 65536 per SM → 0 blocks →
        // infeasible at that size? No: by_regs = 65536/131072 = 0.
        assert_eq!(occ.limiter, Limiter::Infeasible);
        assert_eq!(occ.fraction, 0.0);
    }

    #[test]
    fn register_limited_but_feasible() {
        let occ = occupancy(
            &v100(),
            BlockResources {
                threads: 256,
                smem_bytes: 0,
                registers_per_thread: 255,
            },
        );
        // 256 regs/thread (rounded) * 256 threads = 65536 → exactly 1 block.
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limiter, Limiter::Registers);
    }

    #[test]
    fn oversized_block_is_infeasible() {
        for block in [
            BlockResources {
                threads: 2048,
                smem_bytes: 0,
                registers_per_thread: 32,
            },
            BlockResources {
                threads: 256,
                smem_bytes: 100 * 1024,
                registers_per_thread: 32,
            },
            BlockResources {
                threads: 256,
                smem_bytes: 0,
                registers_per_thread: 300,
            },
            BlockResources {
                threads: 0,
                smem_bytes: 0,
                registers_per_thread: 32,
            },
        ] {
            assert_eq!(occupancy(&v100(), block).limiter, Limiter::Infeasible);
        }
    }

    #[test]
    fn fraction_monotone_in_register_pressure() {
        let mk = |r| {
            occupancy(
                &v100(),
                BlockResources {
                    threads: 256,
                    smem_bytes: 8 * 1024,
                    registers_per_thread: r,
                },
            )
            .fraction
        };
        assert!(mk(32) >= mk(64));
        assert!(mk(64) >= mk(128));
    }

    #[test]
    fn p100_smem_capacity_differs() {
        let occ_p = occupancy(
            &GpuDevice::p100(),
            BlockResources {
                threads: 128,
                smem_bytes: 30 * 1024,
                registers_per_thread: 32,
            },
        );
        let occ_v = occupancy(
            &v100(),
            BlockResources {
                threads: 128,
                smem_bytes: 30 * 1024,
                registers_per_thread: 32,
            },
        );
        // P100 has 64 KiB/SM → 2 blocks; V100 has 96 KiB/SM → 3 blocks.
        assert_eq!(occ_p.blocks_per_sm, 2);
        assert_eq!(occ_v.blocks_per_sm, 3);
    }

    #[test]
    fn non_warp_multiple_threads_round_up() {
        let occ = occupancy(
            &v100(),
            BlockResources {
                threads: 33,
                smem_bytes: 0,
                registers_per_thread: 32,
            },
        );
        // 33 threads occupy 2 warps.
        assert_eq!(occ.warps_per_sm, occ.blocks_per_sm * 2);
    }
}
