//! A cuBLAS-like GEMM performance model.
//!
//! TAL_SH's TTGT pipeline spends its compute phase in cuBLAS. cuBLAS is
//! close to peak on large, square matrices but loses efficiency on the
//! highly rectangular shapes that flattened tensor contractions often
//! produce — one of the paper's motivations for direct contraction. This
//! model captures exactly those effects: tile-quantization waste along
//! m/n, a small-k pipeline penalty, and a memory-bandwidth bound.

use crate::calib;
use crate::device::{GpuDevice, Precision};

/// Predicted GEMM efficiency (fraction of peak FLOPS) for an `m×n×k`
/// product, before the bandwidth bound is applied.
pub fn gemm_efficiency(m: usize, n: usize, k: usize) -> f64 {
    if m == 0 || n == 0 || k == 0 {
        return 0.0;
    }
    // Tile quantization: an m×n output is covered by 128×128 tiles; partial
    // tiles do full work for partial output.
    let util = |d: usize, tile: f64| -> f64 {
        let d = d as f64;
        let tiles = (d / tile).ceil();
        (d / (tiles * tile)).min(1.0)
    };
    let m_util = util(m, calib::CUBLAS_TILE_MN);
    let n_util = util(n, calib::CUBLAS_TILE_MN);
    let k_util = util(k, calib::CUBLAS_TILE_K);
    // Small-k penalty: short dot products cannot hide pipeline latency.
    let k_pipeline = k as f64 / (k as f64 + calib::CUBLAS_SMALL_K);
    calib::CUBLAS_PEAK_EFFICIENCY * m_util * n_util * k_util * k_pipeline
}

/// Predicted wall-clock seconds for one `m×n×k` GEMM of the given
/// precision, including the launch overhead and the DRAM roofline.
///
/// # Examples
///
/// ```
/// use cogent_gpu_model::{gemm_model::gemm_time_s, GpuDevice, Precision};
///
/// let d = GpuDevice::v100();
/// let square = gemm_time_s(&d, 4096, 4096, 4096, Precision::F64);
/// let skinny = gemm_time_s(&d, 4096 * 64, 64, 4096, Precision::F64);
/// // Same FLOPs, but the skinny shape must be slower per FLOP.
/// assert!(skinny > square);
/// ```
pub fn gemm_time_s(device: &GpuDevice, m: usize, n: usize, k: usize, precision: Precision) -> f64 {
    if m == 0 || n == 0 || k == 0 {
        return calib::KERNEL_LAUNCH_OVERHEAD_S;
    }
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let eff = gemm_efficiency(m, n, k).max(1e-4);
    let compute = flops / (device.peak_gflops(precision) * 1e9 * eff);

    // Memory bound: each operand streamed at least once (cuBLAS re-reads
    // A/B per output tile column/row; approximate with tile reuse factor).
    let elem = precision.bytes() as f64;
    let tiles_n = (n as f64 / calib::CUBLAS_TILE_MN).ceil();
    let tiles_m = (m as f64 / calib::CUBLAS_TILE_MN).ceil();
    let bytes = elem
        * ((m * k) as f64 * tiles_n.min(8.0) // A read per column-panel, capped by L2 reuse
            + (k * n) as f64 * tiles_m.min(8.0)
            + (m * n) as f64);
    let mem = bytes / (device.dram_bandwidth_gbs * calib::STREAM_BANDWIDTH_EFFICIENCY * 1e9);

    compute.max(mem) + calib::KERNEL_LAUNCH_OVERHEAD_S
}

/// Effective GFLOP/s of the modelled GEMM.
pub fn gemm_gflops(device: &GpuDevice, m: usize, n: usize, k: usize, precision: Precision) -> f64 {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    flops / gemm_time_s(device, m, n, k, precision) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuDevice {
        GpuDevice::v100()
    }

    #[test]
    fn large_square_gemm_near_peak() {
        let g = gemm_gflops(&v100(), 8192, 8192, 8192, Precision::F64);
        assert!(g > 0.7 * v100().peak_gflops_f64, "got {g}");
        assert!(g <= v100().peak_gflops_f64);
    }

    #[test]
    fn rectangular_gemm_is_slower_per_flop() {
        let d = v100();
        let sq = gemm_gflops(&d, 2048, 2048, 2048, Precision::F64);
        let skinny = gemm_gflops(&d, 2048 * 2048 / 16, 16, 2048, Precision::F64);
        assert!(skinny < sq);
    }

    #[test]
    fn small_k_hurts() {
        let d = v100();
        let big_k = gemm_gflops(&d, 4096, 4096, 1024, Precision::F64);
        let small_k = gemm_gflops(&d, 4096, 4096, 8, Precision::F64);
        assert!(small_k < 0.5 * big_k);
    }

    #[test]
    fn f32_faster_than_f64() {
        let d = v100();
        let t64 = gemm_time_s(&d, 4096, 4096, 4096, Precision::F64);
        let t32 = gemm_time_s(&d, 4096, 4096, 4096, Precision::F32);
        assert!(t32 < t64);
    }

    #[test]
    fn efficiency_bounds() {
        assert_eq!(gemm_efficiency(0, 4, 4), 0.0);
        for &(m, n, k) in &[(1, 1, 1), (100, 3, 7), (4096, 4096, 4096)] {
            let e = gemm_efficiency(m, n, k);
            assert!((0.0..=1.0).contains(&e), "({m},{n},{k}) -> {e}");
        }
    }

    #[test]
    fn tiny_gemm_dominated_by_launch_overhead() {
        let t = gemm_time_s(&v100(), 4, 4, 4, Precision::F64);
        assert!(t >= calib::KERNEL_LAUNCH_OVERHEAD_S);
        assert!(t < 10.0 * calib::KERNEL_LAUNCH_OVERHEAD_S);
    }

    #[test]
    fn degenerate_dims() {
        let t = gemm_time_s(&v100(), 0, 4, 4, Precision::F64);
        assert_eq!(t, calib::KERNEL_LAUNCH_OVERHEAD_S);
    }

    #[test]
    fn time_monotone_in_size() {
        let d = v100();
        let t1 = gemm_time_s(&d, 512, 512, 512, Precision::F64);
        let t2 = gemm_time_s(&d, 1024, 1024, 1024, Precision::F64);
        assert!(t2 > t1);
    }
}
