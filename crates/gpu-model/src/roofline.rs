//! Roofline-style kernel time prediction.
//!
//! Combines the DRAM traffic measured (or analytically estimated) for a
//! kernel with its FLOP count, occupancy, and grid size into a predicted
//! wall-clock time: `max(compute time, memory time) + launch overhead`,
//! with both components degraded at low occupancy and by partial-wave
//! (tail) effects when the grid does not fill the machine.

use crate::calib;
use crate::device::{GpuDevice, Precision};
use crate::memory;
use crate::occupancy::Occupancy;

/// Everything the roofline needs to know about one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelProfile {
    /// Total floating-point operations.
    pub flops: u128,
    /// Total 128-byte DRAM transactions (loads + stores).
    pub transactions: u128,
    /// Achieved occupancy of the launch.
    pub occupancy: Occupancy,
    /// Total thread blocks in the grid.
    pub total_blocks: usize,
    /// `__syncthreads()`-separated staging steps per block (the k-loop trip
    /// count in Algorithm 1); adds a small serialization overhead.
    pub steps_per_block: usize,
    /// Independent accumulators per thread (`REGx × REGy`): register tiling
    /// creates instruction-level parallelism that hides pipeline latency,
    /// letting low-occupancy kernels still saturate the FP units.
    pub outputs_per_thread: usize,
    /// Precision of the arithmetic.
    pub precision: Precision,
}

/// Predicted execution time and its components.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimeBreakdown {
    /// Time the FP pipelines need, seconds.
    pub compute_s: f64,
    /// Time the DRAM traffic needs, seconds.
    pub memory_s: f64,
    /// Total predicted time (max of the above, plus overheads), seconds.
    pub total_s: f64,
    /// Achieved GFLOP/s implied by `total_s`.
    pub gflops: f64,
    /// Fraction of the machine kept busy after wave quantization.
    pub wave_efficiency: f64,
}

/// Fraction of the machine busy across all waves of the grid: a grid of
/// `total_blocks` runs in `ceil(total / capacity)` waves of
/// `capacity = sm_count * blocks_per_sm` blocks; the last partial wave
/// leaves SMs idle.
pub fn wave_efficiency(device: &GpuDevice, total_blocks: usize, blocks_per_sm: usize) -> f64 {
    if total_blocks == 0 || blocks_per_sm == 0 {
        return 0.0;
    }
    let capacity = device.sm_count * blocks_per_sm;
    let waves = total_blocks.div_ceil(capacity);
    total_blocks as f64 / (waves * capacity) as f64
}

/// Predicts the execution time of a kernel launch.
///
/// # Examples
///
/// ```
/// use cogent_gpu_model::*;
///
/// let device = GpuDevice::v100();
/// let occ = occupancy(
///     &device,
///     BlockResources { threads: 256, smem_bytes: 16 * 1024, registers_per_thread: 64 },
/// );
/// let profile = KernelProfile {
///     flops: 1 << 30,
///     transactions: 1 << 20,
///     occupancy: occ,
///     total_blocks: 4096,
///     steps_per_block: 64,
///     outputs_per_thread: 16,
///     precision: Precision::F64,
/// };
/// let t = predict_time_s(&device, &profile);
/// assert!(t.total_s > 0.0);
/// assert!(t.gflops > 0.0);
/// ```
pub fn predict_time_s(device: &GpuDevice, profile: &KernelProfile) -> TimeBreakdown {
    let occ = profile.occupancy.fraction.clamp(0.0, 1.0);
    let wave_eff = wave_efficiency(
        device,
        profile.total_blocks,
        profile.occupancy.blocks_per_sm.max(1),
    );

    if occ == 0.0 || wave_eff == 0.0 {
        // Infeasible launch: report an effectively infinite time.
        return TimeBreakdown {
            compute_s: f64::INFINITY,
            memory_s: f64::INFINITY,
            total_s: f64::INFINITY,
            gflops: 0.0,
            wave_efficiency: 0.0,
        };
    }

    // Compute throughput: a register-tiled kernel reaches a fixed fraction
    // of peak, further reduced when too few warps hide pipeline latency and
    // by per-step synchronization. Latency hiding comes from warps (occ)
    // AND in-thread ILP (independent accumulators), so the occupancy needed
    // for peak shrinks with the register-tile size.
    let ilp = (profile.outputs_per_thread.max(1) as f64).sqrt();
    let occ_factor = (occ * ilp / calib::OCCUPANCY_FOR_PEAK_COMPUTE).min(1.0);
    let sync_factor = 1.0 / (1.0 + calib::SYNC_OVERHEAD);
    let eff_flops = device.peak_gflops(profile.precision)
        * 1e9
        * calib::DIRECT_KERNEL_COMPUTE_EFFICIENCY
        * occ_factor
        * sync_factor
        * wave_eff;
    let compute_s = profile.flops as f64 / eff_flops.max(1.0);

    // Memory: traffic at occupancy-limited bandwidth; a partial wave also
    // leaves memory controllers idle.
    let memory_s = memory::transfer_time_s(device, profile.transactions, occ) / wave_eff;

    let total_s = compute_s.max(memory_s) + calib::KERNEL_LAUNCH_OVERHEAD_S;
    TimeBreakdown {
        compute_s,
        memory_s,
        total_s,
        gflops: profile.flops as f64 / total_s / 1e9,
        wave_efficiency: wave_eff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::{occupancy, BlockResources};

    fn profile(flops: u128, transactions: u128) -> KernelProfile {
        let device = GpuDevice::v100();
        let occ = occupancy(
            &device,
            BlockResources {
                threads: 256,
                smem_bytes: 16 * 1024,
                registers_per_thread: 64,
            },
        );
        KernelProfile {
            flops,
            transactions,
            occupancy: occ,
            total_blocks: 8192,
            steps_per_block: 32,
            outputs_per_thread: 16,
            precision: Precision::F64,
        }
    }

    #[test]
    fn compute_bound_kernel() {
        let d = GpuDevice::v100();
        let p = profile(1 << 36, 1 << 10);
        let t = predict_time_s(&d, &p);
        assert!(t.compute_s > t.memory_s);
        assert!(t.total_s >= t.compute_s);
    }

    #[test]
    fn memory_bound_kernel() {
        let d = GpuDevice::v100();
        let p = profile(1 << 10, 1 << 30);
        let t = predict_time_s(&d, &p);
        assert!(t.memory_s > t.compute_s);
    }

    #[test]
    fn gflops_below_peak() {
        let d = GpuDevice::v100();
        let p = profile(1 << 34, 1 << 20);
        let t = predict_time_s(&d, &p);
        assert!(t.gflops < d.peak_gflops_f64);
        assert!(t.gflops > 0.0);
    }

    #[test]
    fn infeasible_occupancy_is_infinite() {
        let d = GpuDevice::v100();
        let mut p = profile(1 << 20, 1 << 10);
        p.occupancy = occupancy(
            &d,
            BlockResources {
                threads: 2048,
                smem_bytes: 0,
                registers_per_thread: 32,
            },
        );
        let t = predict_time_s(&d, &p);
        assert!(t.total_s.is_infinite());
        assert_eq!(t.gflops, 0.0);
    }

    #[test]
    fn wave_quantization() {
        let d = GpuDevice::v100();
        // Capacity with 4 blocks/SM on 80 SMs = 320.
        assert!((wave_efficiency(&d, 320, 4) - 1.0).abs() < 1e-12);
        assert!((wave_efficiency(&d, 321, 4) - 321.0 / 640.0).abs() < 1e-12);
        assert!(wave_efficiency(&d, 16, 4) < 0.1);
        assert_eq!(wave_efficiency(&d, 0, 4), 0.0);
    }

    #[test]
    fn small_grid_is_slower() {
        let d = GpuDevice::v100();
        let mut big = profile(1 << 32, 1 << 24);
        let mut small = big;
        big.total_blocks = 10_000;
        small.total_blocks = 16;
        let tb = predict_time_s(&d, &big);
        let ts = predict_time_s(&d, &small);
        assert!(ts.total_s > tb.total_s);
    }

    #[test]
    fn more_traffic_never_faster() {
        let d = GpuDevice::v100();
        let t1 = predict_time_s(&d, &profile(1 << 30, 1 << 20));
        let t2 = predict_time_s(&d, &profile(1 << 30, 1 << 26));
        assert!(t2.total_s >= t1.total_s);
    }
}
