//! Global-memory transaction and bandwidth models.

use crate::calib;
use crate::device::GpuDevice;

/// Number of aligned 128-byte transactions needed by one warp-wide access
/// in which `threads` consecutive threads read `elem_bytes`-byte elements
/// whose addresses are grouped into contiguous runs of `run_len` elements,
/// with consecutive runs separated by `stride_bytes`.
///
/// This is the primitive the address tracer and the analytic cost model
/// both reduce to: fully coalesced access (`run_len * elem_bytes >= 128`)
/// costs one transaction per 128 bytes; scattered access costs one
/// transaction per run (at least).
pub fn transactions_for_strided_access(
    device: &GpuDevice,
    threads: usize,
    run_len: usize,
    elem_bytes: usize,
) -> usize {
    if threads == 0 || run_len == 0 {
        return 0;
    }
    let run_len = run_len.min(threads);
    let runs = threads.div_ceil(run_len);
    let bytes_per_run = run_len * elem_bytes;
    runs * bytes_per_run.div_ceil(device.transaction_bytes)
}

/// Achievable DRAM bandwidth (GB/s) at a given occupancy fraction.
///
/// Bandwidth saturates once enough warps are in flight
/// ([`calib::OCCUPANCY_FOR_PEAK_BANDWIDTH`]); below that it degrades
/// linearly (little memory-level parallelism hides DRAM latency).
pub fn achievable_bandwidth_gbs(device: &GpuDevice, occupancy_fraction: f64) -> f64 {
    let occ = occupancy_fraction.clamp(0.0, 1.0);
    let mlp = (occ / calib::OCCUPANCY_FOR_PEAK_BANDWIDTH).min(1.0);
    device.dram_bandwidth_gbs * calib::STREAM_BANDWIDTH_EFFICIENCY * mlp
}

/// Time in seconds to move `transactions` 128-byte transactions at the
/// bandwidth achievable under `occupancy_fraction`.
pub fn transfer_time_s(device: &GpuDevice, transactions: u128, occupancy_fraction: f64) -> f64 {
    let bytes = transactions as f64 * device.transaction_bytes as f64;
    let bw = achievable_bandwidth_gbs(device, occupancy_fraction).max(1e-9);
    bytes / (bw * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuDevice {
        GpuDevice::v100()
    }

    #[test]
    fn fully_coalesced_f64() {
        // 32 threads × 8 bytes contiguous = 256 bytes = 2 transactions.
        assert_eq!(transactions_for_strided_access(&v100(), 32, 32, 8), 2);
    }

    #[test]
    fn fully_coalesced_f32() {
        // 32 threads × 4 bytes contiguous = 128 bytes = 1 transaction.
        assert_eq!(transactions_for_strided_access(&v100(), 32, 32, 4), 1);
    }

    #[test]
    fn short_runs_cost_one_transaction_each() {
        // Runs of 4 doubles (32 B): 8 runs → 8 transactions.
        assert_eq!(transactions_for_strided_access(&v100(), 32, 4, 8), 8);
    }

    #[test]
    fn fully_scattered() {
        // Run length 1: every thread its own transaction.
        assert_eq!(transactions_for_strided_access(&v100(), 32, 1, 8), 32);
    }

    #[test]
    fn run_longer_than_warp_is_clamped() {
        assert_eq!(
            transactions_for_strided_access(&v100(), 16, 64, 8),
            transactions_for_strided_access(&v100(), 16, 16, 8)
        );
    }

    #[test]
    fn zero_cases() {
        assert_eq!(transactions_for_strided_access(&v100(), 0, 4, 8), 0);
        assert_eq!(transactions_for_strided_access(&v100(), 4, 0, 8), 0);
    }

    #[test]
    fn bandwidth_saturates() {
        let d = v100();
        let at_peak = achievable_bandwidth_gbs(&d, 1.0);
        let at_knee = achievable_bandwidth_gbs(&d, calib::OCCUPANCY_FOR_PEAK_BANDWIDTH);
        assert!((at_peak - at_knee).abs() < 1e-9);
        assert!(at_peak <= d.dram_bandwidth_gbs);
        assert!(at_peak > 0.7 * d.dram_bandwidth_gbs);
    }

    #[test]
    fn bandwidth_degrades_at_low_occupancy() {
        let d = v100();
        let low = achievable_bandwidth_gbs(&d, 0.05);
        let high = achievable_bandwidth_gbs(&d, 0.5);
        assert!(low < high);
        assert!(low > 0.0);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let d = v100();
        let t1 = transfer_time_s(&d, 1_000, 1.0);
        let t2 = transfer_time_s(&d, 2_000, 1.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
