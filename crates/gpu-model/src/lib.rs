//! Analytical GPU architecture and performance models.
//!
//! The paper evaluates generated CUDA kernels on Nvidia P100 (Pascal) and
//! V100 (Volta) GPUs. This reproduction has no GPU, so the crate provides
//! the synthetic equivalent: device descriptions ([`GpuDevice`]), a CUDA
//! occupancy calculator ([`occupancy()`]), a 128-byte DRAM transaction model
//! ([`memory`]), cuBLAS-like and cuTT-like timing models used by the TTGT
//! baseline ([`gemm_model`], [`transpose_model`]), and a roofline-style
//! kernel time predictor ([`roofline`]).
//!
//! All timing constants are collected in [`calib`] so the whole performance
//! stack can be calibrated in one place.
//!
//! # Examples
//!
//! ```
//! use cogent_gpu_model::GpuDevice;
//!
//! let v100 = GpuDevice::v100();
//! assert_eq!(v100.sm_count, 80);
//! assert!(v100.peak_gflops_f64 > 6000.0);
//! ```

pub mod calib;
pub mod device;
pub mod gemm_model;
pub mod memory;
pub mod occupancy;
pub mod roofline;
pub mod transpose_model;

pub use device::{GpuDevice, Precision};
pub use occupancy::{occupancy, BlockResources, Occupancy};
pub use roofline::{predict_time_s, wave_efficiency, KernelProfile, TimeBreakdown};
