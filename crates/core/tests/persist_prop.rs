//! Property tests for the crash-safe cache persistence layer: for random
//! cache populations, access orders, and file corruptions,
//!
//! 1. save → load → save is byte-stable (a restarted daemon re-persists
//!    exactly the files it read);
//! 2. truncated or bit-flipped shard files are quarantined, never fatal,
//!    and every intact shard still loads;
//! 3. the LRU eviction order survives a reload.

use cogent_core::{CacheKey, CachePersister, Cogent, GeneratedKernel, KernelCache};
use cogent_gpu_model::{GpuDevice, Precision};
use cogent_ir::{Contraction, SizeMap};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A unique, self-cleaning temp directory (no tempfile crate here).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cogent-persist-prop-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Kernel generation dominates the cost of each case, so a fixed pool is
/// generated once and the properties fuzz over subsets and orders of it.
fn pool() -> &'static Vec<(CacheKey, GeneratedKernel)> {
    static POOL: OnceLock<Vec<(CacheKey, GeneratedKernel)>> = OnceLock::new();
    POOL.get_or_init(|| {
        let specs = [
            ("ij-ik-kj", 8),
            ("ij-ik-kj", 16),
            ("ij-ik-kj", 24),
            ("abc-bda-dc", 8),
            ("abc-bda-dc", 12),
        ];
        let gen = Cogent::new();
        specs
            .iter()
            .map(|&(spec, n)| {
                let tc: Contraction = spec.parse().unwrap();
                let sizes = SizeMap::uniform(&tc, n);
                let kernel = gen.generate(&tc, &sizes).unwrap();
                let key = CacheKey::new(
                    &tc,
                    &sizes,
                    &GpuDevice::v100(),
                    Precision::F64,
                    &gen.options_fingerprint(),
                );
                (key, kernel)
            })
            .collect()
    })
}

fn shard_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    files
}

/// Builds a cache holding `order`-permuted pool entries, then replays the
/// touch sequence so the recency order is arbitrary.
fn populate(shards: usize, order: &[usize], touches: &[usize]) -> KernelCache {
    let cache = KernelCache::with_shards(pool().len() * 4, shards);
    for &i in order {
        let (key, kernel) = &pool()[i];
        cache.insert(key.clone(), kernel.clone());
    }
    for &i in touches {
        let (key, _) = &pool()[i];
        let _ = cache.get(key);
    }
    cache
}

/// Keys of one shard, coldest first — the order eviction will take them.
fn recency_order(cache: &KernelCache, shard: usize) -> Vec<CacheKey> {
    let mut entries = cache.snapshot_shard(shard);
    entries.sort_by_key(|(_, _, last_used)| *last_used);
    entries.into_iter().map(|(key, _, _)| key).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn save_load_save_is_byte_stable(
        order in Just((0..5usize).collect::<Vec<_>>()).prop_shuffle(),
        touches in prop::collection::vec(0usize..5, 0..8),
        shards in 1usize..=2,
    ) {
        let cache = populate(shards, &order, &touches);
        let dir1 = TempDir::new("stable-a");
        CachePersister::new(dir1.path()).unwrap().save_all(&cache).unwrap();

        let reloaded = KernelCache::with_shards(pool().len() * 4, shards);
        let report = CachePersister::new(dir1.path())
            .unwrap()
            .load(&reloaded)
            .unwrap();
        prop_assert_eq!(report.entries_loaded, pool().len());
        prop_assert!(report.quarantined.is_empty());

        let dir2 = TempDir::new("stable-b");
        CachePersister::new(dir2.path()).unwrap().save_all(&reloaded).unwrap();

        let first = shard_files(dir1.path());
        let second = shard_files(dir2.path());
        prop_assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            prop_assert_eq!(a.file_name(), b.file_name());
            prop_assert_eq!(
                fs::read(a).unwrap(),
                fs::read(b).unwrap(),
                "shard {:?} must survive save → load → save byte-identically",
                a.file_name()
            );
        }
    }

    #[test]
    fn corrupted_shards_are_quarantined_never_fatal(
        order in Just((0..5usize).collect::<Vec<_>>()).prop_shuffle(),
        victim in 0usize..8,
        mode in 0usize..2,
        raw_offset in 0u32..1_000_000,
    ) {
        let cache = populate(2, &order, &[]);
        let dir = TempDir::new("corrupt");
        CachePersister::new(dir.path()).unwrap().save_all(&cache).unwrap();

        // The header line carries the payload checksum; hex parsing is
        // case-insensitive, so a bit flip there could be a no-op. Corrupt
        // the payload instead, where any changed byte breaks the checksum
        // — so only files with a non-empty payload are candidates.
        let candidates: Vec<(PathBuf, Vec<u8>, usize)> = shard_files(dir.path())
            .into_iter()
            .map(|path| {
                let bytes = fs::read(&path).unwrap();
                let start = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
                (path, bytes, start)
            })
            .filter(|(_, bytes, start)| *start < bytes.len())
            .collect();
        prop_assert!(!candidates.is_empty());
        let total_files = shard_files(dir.path()).len();
        let (target, bytes, payload_start) = &candidates[victim % candidates.len()];
        let offset = payload_start + raw_offset as usize % (bytes.len() - payload_start);
        let mutated = if mode == 0 {
            bytes[..offset].to_vec()
        } else {
            let mut m = bytes.clone();
            m[offset] ^= 1 << (raw_offset % 8);
            m
        };
        fs::write(target, mutated).unwrap();

        let reloaded = KernelCache::with_shards(pool().len() * 4, 2);
        let report = CachePersister::new(dir.path())
            .unwrap()
            .load(&reloaded)
            .unwrap();
        prop_assert_eq!(report.quarantined.len(), 1, "{:?}", report.quarantined);
        prop_assert!(report.entries_loaded < pool().len());
        // The bad file was renamed aside: a second boot sees only clean
        // shards and loads without complaint.
        let report = CachePersister::new(dir.path())
            .unwrap()
            .load(&KernelCache::with_shards(pool().len() * 4, 2))
            .unwrap();
        prop_assert!(report.quarantined.is_empty());
        prop_assert_eq!(report.files_seen, total_files - 1);
    }

    #[test]
    fn eviction_order_survives_reload(
        order in Just((0..5usize).collect::<Vec<_>>()).prop_shuffle(),
        touches in prop::collection::vec(0usize..5, 0..10),
    ) {
        let cache = populate(1, &order, &touches);
        let dir = TempDir::new("lru");
        CachePersister::new(dir.path()).unwrap().save_all(&cache).unwrap();

        let reloaded = KernelCache::with_shards(pool().len() * 4, 1);
        CachePersister::new(dir.path()).unwrap().load(&reloaded).unwrap();
        prop_assert_eq!(
            recency_order(&cache, 0),
            recency_order(&reloaded, 0),
            "coldest-first order must survive the round trip"
        );
    }
}
