//! Service-level chaos suite for `cogent serve`.
//!
//! Each test throws one class of hostility at a real (loopback) server —
//! malformed bytes, slowloris dribble, mid-request disconnects, injected
//! worker panics, corrupted cache shards, overload bursts, abrupt kills —
//! and asserts the contract: typed degradation codes, bounded queues, no
//! process death, and byte-identical warm results across a kill/restart.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cogent_core::serve::{ReadLimits, ServeConfig, Server};

/// A scratch directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cogent-chaos-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("creating temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn chaos_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_depth: 4,
        limits: ReadLimits {
            max_head_bytes: 2 * 1024,
            max_body_bytes: 16 * 1024,
            head_timeout: Duration::from_millis(400),
            body_timeout: Duration::from_millis(600),
            read_timeout: Duration::from_millis(100),
        },
        drain_timeout: Duration::from_secs(5),
        allow_fault_injection: true,
        ..ServeConfig::default()
    }
}

/// Sends raw bytes, reads the whole response, returns (status, body).
/// Write and read errors are tolerated: a server that rejects early
/// (431, 413) closes the socket while the client is still writing, and
/// that reset is part of what the suite exercises.
fn raw(addr: SocketAddr, bytes: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.write_all(bytes);
    let mut buffer = Vec::new();
    let _ = stream.read_to_end(&mut buffer);
    parse_response(&String::from_utf8_lossy(&buffer))
}

fn parse_response(response: &str) -> (u16, String) {
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

/// The server is alive and admitting work.
fn assert_healthy(addr: SocketAddr) {
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "healthz after chaos: {body}");
    let (status, body) = post(
        addr,
        "/v1/generate",
        r#"{"contraction":"ij-ik-kj","uniform":8}"#,
    );
    assert_eq!(status, 200, "generate after chaos: {body}");
}

#[test]
fn malformed_and_hostile_requests_get_typed_errors() {
    let server = Server::spawn(chaos_config()).expect("spawn");
    let addr = server.addr();

    // Garbage request line.
    let (status, body) = raw(addr, b"U\x00TTERGARBAGE\r\n\r\n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("malformed_request"), "{body}");

    // Valid HTTP, body is not JSON.
    let (status, body) = post(addr, "/v1/generate", "{not json");
    assert_eq!(status, 400);
    assert!(body.contains("malformed_request"), "{body}");

    // Valid JSON, invalid contraction.
    let (status, body) = post(addr, "/v1/generate", r#"{"contraction":"!!!","uniform":8}"#);
    assert_eq!(status, 400);
    assert!(body.contains("invalid_contraction"), "{body}");

    // Oversized declared body.
    let (status, body) = raw(
        addr,
        b"POST /v1/generate HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999\r\n\r\n",
    );
    assert_eq!(status, 413, "{body}");

    // Oversized head.
    let huge_header = format!(
        "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Pad: {}\r\n\r\n",
        "x".repeat(64 * 1024)
    );
    let (status, _) = raw(addr, huge_header.as_bytes());
    assert_eq!(status, 431);

    // Chunked transfer encoding is refused, not mis-read.
    let (status, body) = raw(
        addr,
        b"POST /v1/generate HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert_eq!(status, 400);
    assert!(body.contains("malformed_request"), "{body}");

    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn slowloris_and_truncated_requests_time_out() {
    let server = Server::spawn(chaos_config()).expect("spawn");
    let addr = server.addr();

    // Slowloris: dribble a byte, then stall past the head deadline.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /he").expect("write");
    std::thread::sleep(Duration::from_millis(600));
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (status, _) = parse_response(&response);
    assert_eq!(status, 408, "slowloris must 408, got: {response}");

    // Truncated body: declare more bytes than are ever sent.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /v1/generate HTTP/1.1\r\nHost: t\r\nContent-Length: 500\r\n\r\n{\"con")
        .expect("write");
    std::thread::sleep(Duration::from_millis(800));
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (status, _) = parse_response(&response);
    assert_eq!(status, 408, "truncated body must 408, got: {response}");

    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn mid_request_disconnects_never_kill_the_server() {
    let server = Server::spawn(chaos_config()).expect("spawn");
    let addr = server.addr();

    for fragment in [
        &b""[..],
        b"GET",
        b"POST /v1/generate HTTP/1.1\r\n",
        b"POST /v1/generate HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"half",
    ] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        if !fragment.is_empty() {
            stream.write_all(fragment).expect("write");
        }
        drop(stream); // hang up mid-request
    }
    // Give the connection threads a moment to observe the disconnects.
    std::thread::sleep(Duration::from_millis(300));
    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn injected_worker_panic_is_a_typed_500_not_a_crash() {
    let server = Server::spawn(chaos_config()).expect("spawn");
    let addr = server.addr();

    for _ in 0..3 {
        let (status, body) = post(
            addr,
            "/v1/generate",
            r#"{"contraction":"ij-ik-kj","uniform":8,"inject":"panic"}"#,
        );
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("worker_panic"), "{body}");
    }
    // All workers have panicked at least once; the pool must still serve.
    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn fault_injection_is_rejected_on_production_servers() {
    let server = Server::spawn(ServeConfig {
        allow_fault_injection: false,
        ..chaos_config()
    })
    .expect("spawn");
    let addr = server.addr();
    let (status, body) = post(
        addr,
        "/v1/generate",
        r#"{"contraction":"ij-ik-kj","uniform":8,"inject":"panic"}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("fault_injection_disabled"), "{body}");
    server.shutdown();
}

#[test]
fn overload_burst_gets_429_with_retry_after_and_bounded_queue() {
    let server = Server::spawn(ServeConfig {
        workers: 1,
        queue_depth: 2,
        ..chaos_config()
    })
    .expect("spawn");
    let addr = server.addr();

    // Stall the lone worker, then burst past the queue depth.
    let stall = std::thread::spawn(move || {
        post(
            addr,
            "/v1/generate",
            r#"{"contraction":"ij-ik-kj","uniform":8,"inject":{"stall_ms":1200}}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(200));

    let burst: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let body = r#"{"contraction":"abc-bda-dc","uniform":8}"#;
                stream
                    .write_all(
                        format!(
                        "POST /v1/generate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    )
                        .as_bytes(),
                    )
                    .expect("write");
                let mut response = String::new();
                stream.read_to_string(&mut response).expect("read");
                (parse_response(&response), response)
            })
        })
        .collect();

    let mut rejected = 0;
    for handle in burst {
        let ((status, body), full) = handle.join().expect("burst thread");
        match status {
            200 | 504 => {}
            429 => {
                rejected += 1;
                assert!(body.contains("overloaded"), "{body}");
                assert!(
                    full.to_ascii_lowercase().contains("retry-after:"),
                    "429 must carry Retry-After:\n{full}"
                );
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(
        rejected >= 2,
        "queue depth 2 + 1 worker must shed most of an 8-request burst, shed {rejected}"
    );

    let (_, _) = stall.join().expect("stalled request");
    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn corrupted_cache_files_are_quarantined_not_fatal() {
    let dir = TempDir::new("quarantine");

    // Warm a cache and shut down cleanly so shards exist on disk.
    let server = Server::spawn(ServeConfig {
        cache_dir: Some(dir.path().to_path_buf()),
        ..chaos_config()
    })
    .expect("spawn");
    let addr = server.addr();
    let (status, _) = post(
        addr,
        "/v1/generate",
        r#"{"contraction":"ij-ik-kj","uniform":8}"#,
    );
    assert_eq!(status, 200);
    server.shutdown();

    // Corrupt every shard file: flip bytes in some, truncate others.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(dir.path()).expect("read_dir") {
        let path = entry.expect("entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("shard-") || !name.ends_with(".json") {
            continue;
        }
        let mut bytes = std::fs::read(&path).expect("read shard");
        if bytes.is_empty() {
            continue;
        }
        if corrupted % 2 == 0 {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, &bytes).expect("write corrupt shard");
        } else {
            std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate shard");
        }
        corrupted += 1;
    }
    assert!(corrupted > 0, "warm shutdown must have written shards");

    // Restart over the corrupted directory: must start, quarantine, serve.
    let server = Server::spawn(ServeConfig {
        cache_dir: Some(dir.path().to_path_buf()),
        ..chaos_config()
    })
    .expect("restart over corrupted cache");
    let addr = server.addr();
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"quarantined_files\":"),
        "healthz reports quarantine: {body}"
    );
    let quarantined = std::fs::read_dir(dir.path())
        .expect("read_dir")
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.path()
                .to_str()
                .is_some_and(|p| p.ends_with(".quarantined"))
        })
        .count();
    assert!(quarantined > 0, "corrupt shards must be quarantined aside");
    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn kill_and_restart_preserves_warm_results_byte_for_byte() {
    let dir = TempDir::new("restart");
    let body = r#"{"contraction":"abcd-aebf-dfce","uniform":16}"#;

    // Server A: cold generate, then abrupt kill (no final persist — the
    // incremental checkpoint written at insert time must be enough).
    let server_a = Server::spawn(ServeConfig {
        cache_dir: Some(dir.path().to_path_buf()),
        ..chaos_config()
    })
    .expect("spawn A");
    let (status, cold) = post(server_a.addr(), "/v1/generate", body);
    assert_eq!(status, 200, "{cold}");
    assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
    server_a.kill();

    // Server B over the same directory: the same request must be a warm
    // hit, byte-identical modulo the hit/miss marker.
    let server_b = Server::spawn(ServeConfig {
        cache_dir: Some(dir.path().to_path_buf()),
        ..chaos_config()
    })
    .expect("spawn B");
    let (status, warm) = post(server_b.addr(), "/v1/generate", body);
    assert_eq!(status, 200, "{warm}");
    assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
    assert_eq!(
        warm.replace("\"cache\":\"hit\"", "\"cache\":\"miss\""),
        cold,
        "warm restart response must be byte-identical to the cold one"
    );
    server_b.shutdown();
}

#[test]
fn deadline_exceeded_is_a_typed_504() {
    let server = Server::spawn(chaos_config()).expect("spawn");
    let addr = server.addr();
    // Deterministic expiry: the injected stall outlives the deadline, so
    // by the time the worker reaches the search the budget is gone.
    let (status, body) = post(
        addr,
        "/v1/generate",
        r#"{"contraction":"ij-ik-kj","uniform":8,"deadline_ms":100,"inject":{"stall_ms":400}}"#,
    );
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline_exceeded"), "{body}");
    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn tight_deadline_degrades_to_a_truncated_search_not_an_error() {
    let server = Server::spawn(chaos_config()).expect("spawn");
    let addr = server.addr();
    // A 1 ms budget is enough to start but not finish the search: the
    // server answers with a best-effort truncated kernel (200) or, if
    // the deadline lapses before the worker picks the job up, a 504 —
    // never a 5xx crash.
    let (status, body) = post(
        addr,
        "/v1/generate",
        r#"{"contraction":"abcdef-dega-gfbc","uniform":24,"deadline_ms":1}"#,
    );
    match status {
        200 => assert!(body.contains("\"truncated\":true"), "{body}"),
        504 => assert!(body.contains("deadline_exceeded"), "{body}"),
        other => panic!("unexpected status {other}: {body}"),
    }
    // Truncated results must NOT poison the cache: a patient caller
    // later gets the complete search, not the rushed one.
    let (status, body) = post(
        addr,
        "/v1/generate",
        r#"{"contraction":"abcdef-dega-gfbc","uniform":24}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cache\":\"miss\""), "{body}");
    assert!(body.contains("\"truncated\":false"), "{body}");
    assert_healthy(addr);
    server.shutdown();
}

/// Like [`post`], but with a client-chosen `X-Request-Id`; returns
/// (status, body, full response text) so headers are assertable.
fn post_with_id(addr: SocketAddr, path: &str, id: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.write_all(
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nX-Request-Id: {id}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    let mut buffer = Vec::new();
    let _ = stream.read_to_end(&mut buffer);
    let full = String::from_utf8_lossy(&buffer).to_string();
    let (status, body) = parse_response(&full);
    (status, body, full)
}

#[test]
fn worker_panic_dumps_a_flight_recording_with_the_failing_request() {
    if cogent_obs::STRIPPED {
        return;
    }
    let dir = TempDir::new("flight-panic");
    let server = Server::spawn(ServeConfig {
        flight_dir: Some(dir.path().to_path_buf()),
        ..chaos_config()
    })
    .expect("spawn");
    let addr = server.addr();

    let (status, body, full) = post_with_id(
        addr,
        "/v1/generate",
        "chaos-panic-7",
        r#"{"contraction":"ij-ik-kj","uniform":8,"inject":"panic"}"#,
    );
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("worker_panic"), "{body}");
    assert!(
        body.contains("\"request_id\":\"chaos-panic-7\""),
        "the 500 envelope must carry the request id: {body}"
    );
    assert!(full.contains("X-Request-Id: chaos-panic-7"), "{full}");

    // The dump is written on the worker thread right after the reply;
    // give it a moment to land.
    std::thread::sleep(Duration::from_millis(300));
    let dump_path = std::fs::read_dir(dir.path())
        .expect("read_dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-panic-") && n.ends_with(".json"))
        })
        .expect("a panic must produce a flight dump");
    let text = std::fs::read_to_string(&dump_path).expect("read dump");
    let records = cogent_obs::flight::parse_dump(&text).expect("valid cogent.flight.v1 dump");
    let record = records
        .iter()
        .find(|r| r.id == "chaos-panic-7")
        .expect("the failing request is in the dump");
    assert_eq!(record.status, 500);
    assert_eq!(record.endpoint, "generate");
    for label in ["accepted", "queued", "started", "panic", "responded"] {
        assert!(
            record.events.iter().any(|e| e.label == label),
            "panic timeline missing {label:?}: {:?}",
            record.events
        );
    }

    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn request_ids_echo_through_429_504_and_500() {
    let server = Server::spawn(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..chaos_config()
    })
    .expect("spawn");
    let addr = server.addr();

    // 500: injected panic.
    let (status, body, full) = post_with_id(
        addr,
        "/v1/generate",
        "chaos-id-500",
        r#"{"contraction":"ij-ik-kj","uniform":8,"inject":"panic"}"#,
    );
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("\"request_id\":\"chaos-id-500\""), "{body}");
    assert!(full.contains("X-Request-Id: chaos-id-500"), "{full}");

    // 504: the injected stall outlives the deadline.
    let (status, body, full) = post_with_id(
        addr,
        "/v1/generate",
        "chaos-id-504",
        r#"{"contraction":"ij-ik-kj","uniform":8,"deadline_ms":100,"inject":{"stall_ms":400}}"#,
    );
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("\"request_id\":\"chaos-id-504\""), "{body}");
    assert!(full.contains("X-Request-Id: chaos-id-504"), "{full}");

    // 429: stall the lone worker, fill the one queue slot, then knock.
    let stall = std::thread::spawn(move || {
        post(
            addr,
            "/v1/generate",
            r#"{"contraction":"ij-ik-kj","uniform":8,"inject":{"stall_ms":1500}}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(200));
    let filler = std::thread::spawn(move || {
        post(
            addr,
            "/v1/generate",
            r#"{"contraction":"ij-ik-kj","uniform":8,"inject":{"stall_ms":100}}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(200));
    let (status, body, full) = post_with_id(
        addr,
        "/v1/generate",
        "chaos-id-429",
        r#"{"contraction":"abc-bda-dc","uniform":8}"#,
    );
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("\"request_id\":\"chaos-id-429\""), "{body}");
    assert!(full.contains("X-Request-Id: chaos-id-429"), "{full}");
    let _ = stall.join();
    let _ = filler.join();

    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_then_refuses() {
    let server = Server::spawn(chaos_config()).expect("spawn");
    let addr = server.addr();
    let (status, _) = post(
        addr,
        "/v1/generate",
        r#"{"contraction":"ij-ik-kj","uniform":8}"#,
    );
    assert_eq!(status, 200);
    server.shutdown();
    // The listener is gone (or at least no longer answering) after drain.
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err();
    assert!(refused, "a drained server must not accept new connections");
}
