//! Pipeline-trace integration tests: a traced `generate` must produce a
//! span for every phase, the per-rule prune counters must agree with
//! `SearchOutcome::prune_histogram`, and the trace must survive a JSON
//! round trip.

use cogent_core::Cogent;
use cogent_gpu_model::{GpuDevice, Precision};
use cogent_ir::{Contraction, SizeMap};
use cogent_obs::PipelineTrace;

/// One traced generation; the global flag is restored so this file's
/// tests compose regardless of execution order.
fn traced_generate(tccg: &str, n: usize) -> (cogent_core::GeneratedKernel, PipelineTrace) {
    let tc: Contraction = tccg.parse().unwrap();
    let sizes = SizeMap::uniform(&tc, n);
    cogent_obs::set_enabled(true);
    let kernel = Cogent::new()
        .device(GpuDevice::v100())
        .precision(Precision::F64)
        .generate(&tc, &sizes)
        .unwrap();
    let trace = kernel
        .trace
        .clone()
        .expect("tracing enabled: trace attached");
    (kernel, trace)
}

#[test]
fn every_phase_has_a_span_with_counters() {
    let (_, trace) = traced_generate("abcd-aebf-dfce", 16);
    for phase in ["enumerate", "prune", "rank", "lower", "codegen", "simulate"] {
        let span = trace
            .find(phase)
            .unwrap_or_else(|| panic!("no span for phase {phase}"));
        assert!(span.duration_ns > 0, "{phase} has zero duration");
        assert!(!span.counters.is_empty(), "{phase} recorded no counters");
    }
}

#[test]
fn prune_reject_counters_sum_to_histogram() {
    let (kernel, trace) = traced_generate("abcd-aebf-dfce", 48);
    // This case needs no relaxation, so the histogram holds only
    // strict-pass keys and must agree exactly with the `prune.reject.*`
    // counters; `prune.checked` is exactly one pass over the enumeration.
    assert!(!kernel.search.rules_relaxed);
    let histogram_total: usize = kernel.search.prune_histogram.values().sum();
    assert_eq!(
        trace.counter_sum_prefix("prune.reject."),
        histogram_total as u128,
        "per-rule counters disagree with prune_histogram"
    );
    let prune = trace.find("prune").unwrap();
    assert_eq!(
        prune.counter("prune.checked"),
        Some(kernel.search.enumerated as u128)
    );
}

#[test]
fn relaxed_pruning_accounts_every_check() {
    // An 8^3 matmul on a V100 forces progressive relaxation: the strict
    // pass rejects everything, then one or two relaxed passes re-check
    // the full enumeration. `prune.checked` must count every
    // `check_config` invocation across all passes, and relaxed rejections
    // must reach both the histogram (under `relaxed(...)` keys) and their
    // own `prune.relaxed.reject.*` counters.
    let (kernel, trace) = traced_generate("ij-ik-kj", 8);
    assert!(kernel.search.rules_relaxed, "8^3 must relax on a V100");
    let enumerated = kernel.search.enumerated as u128;
    assert!(enumerated > 0);

    let prune = trace.find("prune").unwrap();
    let checked = prune.counter("prune.checked").unwrap();
    assert!(
        checked > enumerated,
        "checked ({checked}) must exceed one pass ({enumerated})"
    );
    // Each pass covers the whole enumeration, no more, no less.
    assert_eq!(
        checked % enumerated,
        0,
        "checked is not a whole number of passes"
    );

    // The strict pass rejected everything (that is what triggered
    // relaxation), and its counters say so.
    assert_eq!(trace.counter_sum_prefix("prune.reject."), enumerated);

    // Relaxed-pass rejections agree between counters and histogram.
    let relaxed_hist: usize = kernel
        .search
        .prune_histogram
        .iter()
        .filter(|(key, _)| key.starts_with("relaxed("))
        .map(|(_, count)| count)
        .sum();
    assert!(relaxed_hist > 0, "no relaxed keys in the histogram");
    assert_eq!(
        trace.counter_sum_prefix("prune.relaxed.reject."),
        relaxed_hist as u128,
        "relaxed counters disagree with the relaxed histogram keys"
    );

    // Full accounting: every check is either a survivor or a histogram
    // entry (strict and relaxed passes alike).
    let histogram_total: usize = kernel.search.prune_histogram.values().sum();
    let survivors_across_passes = checked as usize - histogram_total;
    assert!(
        survivors_across_passes >= kernel.search.survivors,
        "survivors unaccounted for"
    );
}

#[test]
fn parallel_workers_relay_spans_with_distinct_thread_ids() {
    let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
    let sizes = SizeMap::uniform(&tc, 16);
    cogent_obs::set_enabled(true);
    let kernel = Cogent::new()
        .device(GpuDevice::v100())
        .precision(Precision::F64)
        .search_options(cogent_core::SearchOptions {
            threads: 4,
            ..cogent_core::SearchOptions::default()
        })
        .generate(&tc, &sizes)
        .unwrap();
    let trace = kernel
        .trace
        .clone()
        .expect("tracing enabled: trace attached");

    // Chunk workers relay their spans back into the capture: the prune
    // span owns one `prune.worker` child per chunk, and at least two of
    // them ran on threads other than the capture thread.
    let workers = trace.find_all("prune.worker");
    assert!(
        workers.len() >= 2,
        "expected >= 2 prune.worker spans, got {}",
        workers.len()
    );
    let tids: std::collections::BTreeSet<u32> = workers.iter().map(|w| w.thread).collect();
    assert!(
        tids.len() >= 2,
        "worker spans share one thread id: {tids:?}"
    );
    assert!(
        !tids.contains(&trace.root.thread),
        "worker spans claim the capture thread's id"
    );

    // Worker-side counters reached the relayed spans: summed across the
    // whole tree they account for exactly one pass over the enumeration.
    assert_eq!(
        trace.counter_sum_prefix("prune.checked"),
        kernel.search.enumerated as u128,
        "worker-side prune.checked lost in the relay"
    );
}

#[test]
fn trace_round_trips_through_json() {
    let (_, trace) = traced_generate("abcd-aebf-dfce", 16);
    let json = trace.to_json_string();
    let back = PipelineTrace::from_json_str(&json).unwrap();
    assert_eq!(back, trace);
    assert!(json.contains("\"schema\":\"cogent.trace.v3\""));
    // v3 documents embed a derived per-phase profile section.
    assert!(json.contains("\"profile\":"));
}

#[test]
fn simulate_spans_nest_under_lower() {
    let (_, trace) = traced_generate("abcd-aebf-dfce", 16);
    let lower = trace.find("lower").unwrap();
    // The refinement loop simulates each top-k candidate, so the lower
    // span owns at least one simulate child with traced transactions.
    let mut sims = Vec::new();
    lower.find_all("simulate", &mut sims);
    assert!(!sims.is_empty(), "no simulate spans under lower");
    assert!(sims
        .iter()
        .any(|s| s.counter("sim.transactions.load_a").unwrap_or(0) > 0));
}
