//! The fault-detection matrix: every [`FaultKind`] crossed with the
//! detection layer that must flag it. Static faults (illegal plans) are
//! rejected by the plan validator before anything executes; dynamic faults
//! (misbehaving execution) produce answers that measurably diverge from
//! the reference contraction — at the plan level (`execute_plan_with_faults`)
//! *and* at the IR level, where each fault is a rewrite of the lowered
//! kernel tree caught by the KIR interpreter and/or the structural lint.
//! The invariant under test is *no silent wrong answers*: for each fault
//! class at least one layer fires, and it is exactly the layer the
//! taxonomy assigns.

use cogent_core::guard::validate_plan;
use cogent_gpu_model::{GpuDevice, Precision};
use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
use cogent_gpu_sim::{execute_plan_with_faults, ExecFaults, FaultInjector, FaultKind};
use cogent_ir::{Contraction, SizeMap};
use cogent_tensor::reference::{contract_reference, random_inputs};

/// Eq. 1 of the paper with ragged extents so every mapping dimension has
/// a tail (the regime where dropped guards and truncated staging bite).
fn ragged_plan() -> (KernelPlan, SizeMap) {
    let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
    let plan = KernelPlan::new(
        &tc,
        vec![
            IndexBinding::new("a", 7, 2, MapDim::ThreadX),
            IndexBinding::new("b", 6, 2, MapDim::RegX),
            IndexBinding::new("c", 7, 2, MapDim::ThreadY),
            IndexBinding::new("d", 5, 2, MapDim::RegY),
            IndexBinding::new("e", 6, 4, MapDim::SerialK),
            IndexBinding::new("f", 5, 2, MapDim::SerialK),
        ],
    )
    .unwrap();
    let sizes = SizeMap::from_pairs([("a", 7), ("b", 6), ("c", 7), ("d", 5), ("e", 6), ("f", 5)]);
    (plan, sizes)
}

#[test]
fn clean_plan_passes_both_detection_layers() {
    let (plan, sizes) = ragged_plan();
    let device = GpuDevice::v100();
    validate_plan(&plan, &device, Precision::F64).expect("clean plan validates");
    let (a, b) = random_inputs::<f64>(plan.contraction(), &sizes, 11);
    let got = execute_plan_with_faults(&plan, &a, &b, ExecFaults::NONE).unwrap();
    let want = contract_reference(plan.contraction(), &sizes, &a, &b);
    assert!(got.approx_eq(&want, 1e-11));
}

/// The matrix itself. Each fault kind is injected with several seeds; the
/// assigned layer must flag every instance.
#[test]
fn every_fault_kind_is_caught_by_its_assigned_layer() {
    let (plan, sizes) = ragged_plan();
    let device = GpuDevice::v100();
    let (a, b) = random_inputs::<f64>(plan.contraction(), &sizes, 7);
    let want = contract_reference(plan.contraction(), &sizes, &a, &b);

    for kind in FaultKind::ALL {
        for seed in 0..5u64 {
            if kind.is_static() {
                // Layer 1: the plan validator. The corrupted plan must be
                // rejected with at least one violation.
                let bad = FaultInjector::new(seed).inject_plan(&plan, kind);
                let violations = validate_plan(&bad, &device, Precision::F64)
                    .expect_err(&format!("{} (seed {seed}) must be rejected", kind.name()));
                assert!(
                    !violations.is_empty(),
                    "{}: rejection carries no violations",
                    kind.name()
                );
            } else {
                // Layer 2: numeric divergence. A static-layer pass is
                // expected (the plan is untouched)...
                let untouched = FaultInjector::new(seed).inject_plan(&plan, kind);
                validate_plan(&untouched, &device, Precision::F64)
                    .expect("dynamic faults leave the plan statically valid");
                // ...but the faulted execution must measurably diverge.
                let got =
                    execute_plan_with_faults(&plan, &a, &b, ExecFaults::for_kind(kind)).unwrap();
                let diff = got.max_abs_diff(&want);
                assert!(
                    diff > 1e-9,
                    "{}: silent wrong answer (diff {diff:e} below threshold)",
                    kind.name()
                );
            }
        }
    }
}

/// The IR-level detection layer: each dynamic fault, applied as a rewrite
/// of the lowered kernel tree, is caught by the KIR interpreter (the
/// faulted program computes a measurably wrong answer) and — for the two
/// faults that break a *structural* invariant rather than just the
/// numerics — by the structural lint as well.
#[test]
fn dynamic_faults_are_caught_at_the_ir_level() {
    use cogent_kir::{apply_exec_faults, interpret, lint_kernel_program, lower_to_kir};

    let (plan, sizes) = ragged_plan();
    let prog = lower_to_kir(&plan).expect("ragged plan lowers");
    let (a, b) = random_inputs::<f64>(plan.contraction(), &sizes, 13);
    let want = contract_reference(plan.contraction(), &sizes, &a, &b);

    let clean = interpret(&prog, &sizes, &a, &b).expect("clean program interprets");
    assert!(
        clean.approx_eq(&want, 1e-11),
        "clean interpreter run diverges"
    );
    assert!(lint_kernel_program(&prog).is_clean());

    for kind in FaultKind::ALL {
        if kind.is_static() {
            continue;
        }
        let faulted = apply_exec_faults(&prog, &ExecFaults::for_kind(kind));
        let got = interpret(&faulted, &sizes, &a, &b)
            .unwrap_or_else(|e| panic!("{}: faulted interpretation failed: {e}", kind.name()));
        let diff = got.max_abs_diff(&want);
        assert!(
            diff > 1e-9,
            "{}: IR-level silent wrong answer (diff {diff:e})",
            kind.name()
        );
        // Guard-coverage and barrier-placement faults also violate the
        // tree's structural invariants, so the lint fires before any
        // execution happens at all.
        if matches!(kind, FaultKind::DroppedTailGuard | FaultKind::SkippedSync) {
            let report = lint_kernel_program(&faulted);
            assert!(
                !report.is_clean(),
                "{}: structural lint missed the faulted tree",
                kind.name()
            );
        }
    }
}

/// Static faults never reach execution in the real pipeline, but even if
/// they did, the validator firing first is what the ladder relies on:
/// check the validator rejects them *for the right resource*.
#[test]
fn static_fault_violations_name_the_exhausted_resource() {
    use cogent_core::PlanViolation;
    type Matcher = fn(&PlanViolation) -> bool;
    let (plan, _) = ragged_plan();
    let device = GpuDevice::v100();
    let cases: [(FaultKind, Matcher); 4] = [
        (FaultKind::SmemOverflow, |v| {
            matches!(v, PlanViolation::SharedMemoryExceeded { .. })
        }),
        (FaultKind::ThreadOverflow, |v| {
            matches!(v, PlanViolation::ThreadsExceeded { .. })
        }),
        (FaultKind::RegisterOverflow, |v| {
            matches!(v, PlanViolation::RegistersExceeded { .. })
        }),
        (FaultKind::ForeignIndex, |v| {
            matches!(
                v,
                PlanViolation::UnboundIndex { .. } | PlanViolation::ForeignIndex { .. }
            )
        }),
    ];
    for (kind, matches_resource) in cases {
        let bad = FaultInjector::new(3).inject_plan(&plan, kind);
        let violations = validate_plan(&bad, &device, Precision::F64).unwrap_err();
        assert!(
            violations.iter().any(matches_resource),
            "{}: violations {violations:?} do not name the exhausted resource",
            kind.name()
        );
    }
}
