//! Disabled-by-default tracing must be inert: no span nodes allocated,
//! no trace attached. Kept in its own test binary so no concurrently
//! running test can flip the global flag mid-measurement.

use cogent_core::Cogent;
use cogent_ir::{Contraction, SizeMap};

#[test]
fn disabled_trace_allocates_no_span_nodes() {
    assert!(!cogent_obs::enabled(), "tracing must default to off");
    let before = cogent_obs::nodes_allocated();

    let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
    let sizes = SizeMap::uniform(&tc, 16);
    let kernel = Cogent::new().generate(&tc, &sizes).unwrap();

    assert!(
        kernel.trace.is_none(),
        "disabled run must not attach a trace"
    );
    assert_eq!(
        cogent_obs::nodes_allocated(),
        before,
        "disabled tracing allocated span nodes"
    );
}
