//! Property test over the whole generator: for random valid contractions
//! and random (small) extents, `Cogent::generate` must succeed, the chosen
//! plan must compute the reference answer, and the emitted sources must
//! lint clean.

use cogent_core::codegen::lint_kernel_source;
use cogent_core::Cogent;
use cogent_gpu_sim::execute_plan;
use cogent_ir::{Contraction, SizeMap, TensorRef};
use cogent_tensor::reference::{contract_reference, random_inputs};
use proptest::prelude::*;

/// Random contraction with 1–2 externals per input, 1–2 internals, rotated
/// input layouts, extents 2..8.
fn case_strategy() -> impl Strategy<Value = (Contraction, SizeMap)> {
    (
        1usize..=2,
        1usize..=2,
        1usize..=2,
        0usize..4,
        0usize..4,
        prop::collection::vec(2usize..8, 6),
    )
        .prop_map(|(na, nb, ni, rot_a, rot_b, extents)| {
            let total = na + nb + ni;
            let letters: Vec<String> = (0..total)
                .map(|i| ((b'a' + i as u8) as char).to_string())
                .collect();
            let ext_a = &letters[..na];
            let ext_b = &letters[na..na + nb];
            let ints = &letters[na + nb..];
            let c_idx: Vec<&str> = ext_a
                .iter()
                .chain(ext_b.iter())
                .map(String::as_str)
                .collect();
            let mut a_idx: Vec<&str> = ext_a
                .iter()
                .chain(ints.iter())
                .map(String::as_str)
                .collect();
            let mut b_idx: Vec<&str> = ext_b
                .iter()
                .chain(ints.iter())
                .map(String::as_str)
                .collect();
            let (la, lb) = (a_idx.len(), b_idx.len());
            a_idx.rotate_left(rot_a % la);
            b_idx.rotate_left(rot_b % lb);
            let tc = Contraction::new(
                TensorRef::new("C", c_idx),
                TensorRef::new("A", a_idx),
                TensorRef::new("B", b_idx),
            )
            .expect("valid");
            let sizes = SizeMap::from_pairs(
                letters
                    .iter()
                    .enumerate()
                    .map(|(i, l)| (l.as_str(), extents[i % extents.len()])),
            );
            (tc, sizes)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generate_execute_verify((tc, sizes) in case_strategy(), seed in 0u64..50) {
        let generated = Cogent::new().generate(&tc, &sizes).expect("generates");
        let (a, b) = random_inputs::<f64>(&generated.contraction, &sizes, seed);
        let got = execute_plan(&generated.plan, &a, &b);
        let want = contract_reference(&generated.contraction, &sizes, &a, &b);
        prop_assert!(
            got.approx_eq(&want, 1e-10),
            "{}: diverged by {}",
            generated.contraction,
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn emitted_sources_lint_clean((tc, sizes) in case_strategy()) {
        let generated = Cogent::new().generate(&tc, &sizes).expect("generates");
        let cuda = lint_kernel_source(&generated.cuda_source);
        prop_assert!(cuda.is_empty(), "CUDA: {cuda:?}");
        let ocl = lint_kernel_source(&generated.opencl_source);
        prop_assert!(ocl.is_empty(), "OpenCL: {ocl:?}");
    }

    /// The no-panic guarantee: whatever `generate` thinks of the input —
    /// including size maps with missing entries — it must return a typed
    /// `CogentError`, never unwind.
    #[test]
    fn generate_never_panics((tc, sizes) in case_strategy(), drop in 0usize..4, verify in 0usize..2) {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let verify = verify == 1;
        // Sometimes drop an index to exercise the incomplete-sizes path.
        let sizes = if drop == 0 {
            let mut pruned = cogent_ir::SizeMap::new();
            for (i, name) in tc.all_indices().enumerate() {
                if i != 0 {
                    pruned.set(name.clone(), sizes.extent_of(name));
                }
            }
            pruned
        } else {
            sizes
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Cogent::new()
                .verify_numeric(verify)
                .generate(&tc, &sizes)
                .map(|g| g.provenance.degraded())
        }));
        prop_assert!(outcome.is_ok(), "{tc}: generate panicked");
        if drop == 0 {
            prop_assert!(
                matches!(outcome.unwrap(), Err(cogent_core::CogentError::IncompleteSizes { .. })),
                "{tc}: missing extents must surface as IncompleteSizes"
            );
        }
    }

    #[test]
    fn search_statistics_are_consistent((tc, sizes) in case_strategy()) {
        let generated = Cogent::new().generate(&tc, &sizes).expect("generates");
        let s = &generated.search;
        prop_assert!(s.survivors <= s.enumerated);
        prop_assert!((s.enumerated as u128) <= s.raw_space.max(s.enumerated as u128));
        if !s.rules_relaxed {
            let pruned: usize = s.prune_histogram.values().sum();
            prop_assert_eq!(pruned + s.survivors, s.enumerated);
        }
    }
}
