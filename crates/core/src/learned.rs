//! A learning-based selector over the model's top candidates.
//!
//! §VI of the paper: *"our model-driven approach could be enhanced by
//! using a learning-based approach to perform the selection among the top
//! set of candidate configurations based on our analytical modeling."*
//! This module implements that enhancement: a ridge-regression model over
//! cheap analytic features of a configuration (the cost-model terms,
//! occupancy, parallelism and footprint statistics) is fitted to simulated
//! execution times of a training sample and then re-ranks candidate
//! configurations without simulating them.
//!
//! Everything is self-contained: feature extraction, a hand-rolled
//! symmetric linear solver for the normal equations, and the re-ranking
//! entry point.

use cogent_gpu_model::{occupancy, wave_efficiency, BlockResources, GpuDevice, Precision};
use cogent_gpu_sim::simulate;
use cogent_ir::{Contraction, SizeMap};

use crate::config::KernelConfig;
use crate::cost::{num_steps, num_thread_blocks, transaction_cost};
use crate::select::SearchOutcome;

/// Number of features (including the bias term).
pub const NUM_FEATURES: usize = 11;

/// Extracts the analytic feature vector of one configuration.
///
/// All features are cheap to compute (no simulation): log-scaled
/// cost-model terms, occupancy, wave efficiency, thread/register/shared
/// memory statistics, and a bias term.
pub fn features(
    tc: &Contraction,
    cfg: &KernelConfig,
    sizes: &SizeMap,
    device: &GpuDevice,
    precision: Precision,
) -> [f64; NUM_FEATURES] {
    let cost = transaction_cost(tc, cfg, sizes, device, precision);
    let threads = cfg.threads_per_block();
    let smem = cfg.smem_elements() * precision.bytes();
    let rx = cfg.regx_size();
    let ry = cfg.regy_size();
    let words = precision.bytes().div_ceil(4);
    let regs = (rx * ry + rx + ry) * words + 24;
    let occ = occupancy(
        device,
        BlockResources {
            threads,
            smem_bytes: smem,
            registers_per_thread: regs,
        },
    );
    let blocks = num_thread_blocks(tc, cfg, sizes) as f64;
    let steps = num_steps(tc, cfg, sizes) as f64;
    let wave = wave_efficiency(device, blocks as usize, occ.blocks_per_sm.max(1));
    let ln = |v: f64| (v + 1.0).ln();
    [
        1.0, // bias
        ln(cost.load_a as f64),
        ln(cost.load_b as f64),
        ln(cost.store_c as f64),
        occ.fraction,
        wave,
        ln(threads as f64),
        ln((rx * ry) as f64),
        ln(smem as f64),
        ln(blocks),
        ln(steps),
    ]
}

/// A fitted linear model predicting `ln(simulated time)` from
/// [`features`].
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedRanker {
    weights: [f64; NUM_FEATURES],
}

/// Solves the symmetric positive-definite system `A·x = b` by Gaussian
/// elimination with partial pivoting (small, dense, no dependencies).
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (x, &p) in rest[0].iter_mut().zip(pivot_row).skip(col) {
                *x -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

impl LearnedRanker {
    /// Fits ridge regression (`(XᵀX + λI)w = Xᵀy`) on
    /// `(features, ln_time)` samples.
    ///
    /// Returns `None` when the system is singular (e.g. fewer samples than
    /// features and a zero ridge).
    pub fn fit(samples: &[([f64; NUM_FEATURES], f64)], ridge: f64) -> Option<Self> {
        let n = NUM_FEATURES;
        let mut xtx = vec![vec![0.0; n]; n];
        let mut xty = vec![0.0; n];
        for (x, y) in samples {
            for i in 0..n {
                xty[i] += x[i] * y;
                for j in 0..n {
                    xtx[i][j] += x[i] * x[j];
                }
            }
        }
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += ridge;
        }
        let w = solve(xtx, xty)?;
        let mut weights = [0.0; NUM_FEATURES];
        weights.copy_from_slice(&w);
        Some(Self { weights })
    }

    /// Predicted `ln(time)` for a feature vector.
    pub fn predict(&self, x: &[f64; NUM_FEATURES]) -> f64 {
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum()
    }

    /// Trains on the top `train_k` candidates of a search outcome by
    /// simulating them, then re-ranks *all* ranked candidates by predicted
    /// time (no further simulation). Returns the re-ranked indices into
    /// `outcome.ranked`, best first.
    ///
    /// # Panics
    ///
    /// Panics when the outcome has no ranked candidates.
    pub fn train_and_rerank(
        outcome: &SearchOutcome,
        sizes: &SizeMap,
        device: &GpuDevice,
        precision: Precision,
        train_k: usize,
    ) -> (Self, Vec<usize>) {
        assert!(!outcome.ranked.is_empty(), "nothing to rerank");
        let tc = &outcome.contraction;
        let mut samples = Vec::new();
        for r in outcome.ranked.iter().take(train_k.max(NUM_FEATURES + 2)) {
            let plan = r
                .config
                .lower(tc, sizes)
                .expect("ranked configurations lower cleanly");
            let report = simulate(&plan, device, precision);
            if report.time.total_s.is_finite() {
                samples.push((
                    features(tc, &r.config, sizes, device, precision),
                    report.time.total_s.ln(),
                ));
            }
        }
        let ranker = Self::fit(&samples, 1e-3).expect("ridge keeps the system regular");
        let mut order: Vec<usize> = (0..outcome.ranked.len()).collect();
        order.sort_by(|&i, &j| {
            let fi = ranker.predict(&features(
                tc,
                &outcome.ranked[i].config,
                sizes,
                device,
                precision,
            ));
            let fj = ranker.predict(&features(
                tc,
                &outcome.ranked[j].config,
                sizes,
                device,
                precision,
            ));
            fi.partial_cmp(&fj).expect("predictions are finite")
        });
        (ranker, order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{search, SearchOptions};
    use cogent_gpu_model::GpuDevice;

    #[test]
    fn solver_inverts_a_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solver_rejects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn fit_recovers_synthetic_linear_relation() {
        // y = 2*x1 - 0.5*x8 + 3 (bias).
        let mut samples = Vec::new();
        for i in 0..64 {
            let mut x = [0.0; NUM_FEATURES];
            x[0] = 1.0;
            x[1] = (i % 7) as f64;
            x[8] = (i % 5) as f64;
            // Small independent variation in other features.
            x[4] = ((i * 13) % 11) as f64 / 11.0;
            let y = 3.0 + 2.0 * x[1] - 0.5 * x[8];
            samples.push((x, y));
        }
        let model = LearnedRanker::fit(&samples, 1e-9).unwrap();
        let mut probe = [0.0; NUM_FEATURES];
        probe[0] = 1.0;
        probe[1] = 4.0;
        probe[8] = 2.0;
        assert!((model.predict(&probe) - (3.0 + 8.0 - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn rerank_recovers_the_simulated_winner() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 32);
        let device = GpuDevice::v100();
        let outcome = search(
            &tc,
            &sizes,
            &device,
            Precision::F64,
            &SearchOptions::default(),
        );
        let (_, order) =
            LearnedRanker::train_and_rerank(&outcome, &sizes, &device, Precision::F64, 16);
        assert_eq!(order.len(), outcome.ranked.len());
        // The learned top-1 must be at least as fast (simulated) as the
        // cost model's top-1: the training set contains both, and the
        // model interpolates its own training data closely.
        let time_of = |rank: usize| {
            let plan = outcome.ranked[rank]
                .config
                .lower(&outcome.contraction, &sizes)
                .unwrap();
            simulate(&plan, &device, Precision::F64).time.total_s
        };
        let learned_best = time_of(order[0]);
        let model_best = time_of(0);
        assert!(
            learned_best <= model_best * 1.05,
            "learned {learned_best} vs model {model_best}"
        );
    }

    #[test]
    fn features_are_finite_and_sized() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 256);
        let cfg = KernelConfig {
            tbx: vec![("i".into(), 16)],
            regx: vec![],
            tby: vec![("j".into(), 16)],
            regy: vec![],
            tbk: vec![("k".into(), 8)],
        };
        let f = features(&tc, &cfg, &sizes, &GpuDevice::v100(), Precision::F64);
        assert_eq!(f.len(), NUM_FEATURES);
        assert!(f.iter().all(|v| v.is_finite()));
        assert_eq!(f[0], 1.0);
    }
}
