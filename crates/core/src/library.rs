//! Multi-version kernel libraries with runtime selection.
//!
//! §IV-B of the paper: *"When the code generator receives a set of
//! representative problem sizes, it can generate different code versions
//! targeted at each representative problem size. ... the kernel is
//! selected at runtime based on the closest representative"* — every
//! generated kernel is correct for any extents, so selection only affects
//! performance.
//!
//! [`KernelLibrary`] packages that workflow: build one kernel per
//! representative, then [`KernelLibrary::select`] the version whose
//! representative is nearest (in log-space, so a 2× difference counts the
//! same whether the extent is 8 or 800).

use cogent_ir::{Contraction, SizeMap};

use crate::api::{Cogent, GeneratedKernel};
use crate::guard::CogentError;

/// A set of generated kernel versions for one contraction, each targeted
/// at a different representative problem size.
///
/// # Examples
///
/// ```
/// use cogent_core::{library::KernelLibrary, Cogent};
/// use cogent_ir::{Contraction, SizeMap};
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let library = KernelLibrary::build(
///     &Cogent::new(),
///     &tc,
///     &[SizeMap::uniform(&tc, 64), SizeMap::uniform(&tc, 2048)],
/// )?;
/// assert_eq!(library.len(), 2);
/// // An 80^3 problem selects the version tuned for 64^3.
/// let chosen = library.select(&SizeMap::uniform(&tc, 80));
/// assert_eq!(chosen.representative.extent("i"), Some(64));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct KernelLibrary {
    contraction: Contraction,
    versions: Vec<KernelVersion>,
}

/// One version of the library: the representative it was tuned for plus
/// the generated kernel.
#[derive(Debug, Clone)]
pub struct KernelVersion {
    /// The representative problem size this version was generated for.
    pub representative: SizeMap,
    /// The generated kernel.
    pub kernel: GeneratedKernel,
}

/// Squared log-space distance between two size maps over the contraction's
/// indices.
fn log_distance(tc: &Contraction, x: &SizeMap, y: &SizeMap) -> f64 {
    tc.all_indices()
        .map(|i| {
            let a = x.extent_of(i) as f64;
            let b = y.extent_of(i) as f64;
            let d = (a / b).ln();
            d * d
        })
        .sum()
}

impl KernelLibrary {
    /// Generates one kernel version per representative size.
    ///
    /// # Errors
    ///
    /// Returns the first generation error; `representatives` must be
    /// non-empty and each must cover the contraction.
    ///
    /// # Panics
    ///
    /// Panics when `representatives` is empty.
    pub fn build(
        generator: &Cogent,
        tc: &Contraction,
        representatives: &[SizeMap],
    ) -> Result<Self, CogentError> {
        assert!(
            !representatives.is_empty(),
            "at least one representative size is required"
        );
        let versions = representatives
            .iter()
            .map(|sizes| {
                generator.generate(tc, sizes).map(|kernel| KernelVersion {
                    representative: sizes.clone(),
                    kernel,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            contraction: tc.normalized(),
            versions,
        })
    }

    /// The contraction the library serves (normalized).
    pub fn contraction(&self) -> &Contraction {
        &self.contraction
    }

    /// Number of versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the library is empty (never true: `build` requires at least
    /// one representative).
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Iterates over the versions in build order.
    pub fn iter(&self) -> impl Iterator<Item = &KernelVersion> {
        self.versions.iter()
    }

    /// Selects the version whose representative is closest to `actual`
    /// (log-space Euclidean distance over all index extents).
    ///
    /// # Panics
    ///
    /// Panics when `actual` does not cover the contraction.
    pub fn select(&self, actual: &SizeMap) -> &KernelVersion {
        assert!(
            actual.covers(&self.contraction),
            "actual sizes must cover every index"
        );
        self.versions
            .iter()
            .min_by(|x, y| {
                let dx = log_distance(&self.contraction, actual, &x.representative);
                let dy = log_distance(&self.contraction, actual, &y.representative);
                dx.partial_cmp(&dy).expect("distances are not NaN")
            })
            .expect("library is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogent_gpu_sim::execute_plan;
    use cogent_tensor::reference::{contract_reference, random_inputs};

    fn matmul_library() -> (Contraction, KernelLibrary) {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let lib = KernelLibrary::build(
            &Cogent::new(),
            &tc,
            &[SizeMap::uniform(&tc, 64), SizeMap::uniform(&tc, 1024)],
        )
        .unwrap();
        (tc, lib)
    }

    #[test]
    fn selects_nearest_representative() {
        let (tc, lib) = matmul_library();
        assert_eq!(lib.len(), 2);
        assert!(!lib.is_empty());
        let small = lib.select(&SizeMap::uniform(&tc, 96));
        assert_eq!(small.representative.extent("i"), Some(64));
        let large = lib.select(&SizeMap::uniform(&tc, 700));
        assert_eq!(large.representative.extent("i"), Some(1024));
    }

    #[test]
    fn selection_can_differ_per_index() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let skinny = SizeMap::from_pairs([("i", 4096), ("j", 16), ("k", 256)]);
        let square = SizeMap::uniform(&tc, 256);
        let lib = KernelLibrary::build(&Cogent::new(), &tc, &[skinny.clone(), square]).unwrap();
        let chosen = lib.select(&SizeMap::from_pairs([("i", 2048), ("j", 24), ("k", 128)]));
        assert_eq!(chosen.representative, skinny);
    }

    #[test]
    fn selected_version_is_correct_at_the_actual_size() {
        // The kernel is generated for the representative but must be
        // correct at the actual size (lower its configuration there).
        let (tc, lib) = matmul_library();
        let actual = SizeMap::uniform(&tc, 50);
        let version = lib.select(&actual);
        let plan = version
            .kernel
            .config
            .lower(&version.kernel.contraction, &actual)
            .unwrap();
        let (a, b) = random_inputs::<f64>(&version.kernel.contraction, &actual, 2);
        let got = execute_plan(&plan, &a, &b);
        let want = contract_reference(&version.kernel.contraction, &actual, &a, &b);
        assert!(got.approx_eq(&want, 1e-11));
    }

    #[test]
    fn versions_differ_when_sizes_demand_it() {
        // A tiny and a huge representative should not pick identical
        // configurations (tile sizes adapt to the problem).
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let lib = KernelLibrary::build(
            &Cogent::new(),
            &tc,
            &[SizeMap::uniform(&tc, 8), SizeMap::uniform(&tc, 64)],
        )
        .unwrap();
        let v: Vec<_> = lib.iter().collect();
        assert_ne!(v[0].kernel.config, v[1].kernel.config);
    }

    #[test]
    #[should_panic(expected = "at least one representative")]
    fn empty_representatives_panic() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let _ = KernelLibrary::build(&Cogent::new(), &tc, &[]);
    }
}
