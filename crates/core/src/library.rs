//! Multi-version kernel libraries with runtime selection.
//!
//! §IV-B of the paper: *"When the code generator receives a set of
//! representative problem sizes, it can generate different code versions
//! targeted at each representative problem size. ... the kernel is
//! selected at runtime based on the closest representative"* — every
//! generated kernel is correct for any extents, so selection only affects
//! performance.
//!
//! [`KernelLibrary`] packages that workflow: build one kernel per
//! representative, then [`KernelLibrary::select`] the version whose
//! representative is nearest (in log-space, so a 2× difference counts the
//! same whether the extent is 8 or 800).

use cogent_ir::{Contraction, SizeMap};

use crate::api::{Cogent, GeneratedKernel};
use crate::guard::CogentError;

/// A set of generated kernel versions for one contraction, each targeted
/// at a different representative problem size.
///
/// # Examples
///
/// ```
/// use cogent_core::{library::KernelLibrary, Cogent};
/// use cogent_ir::{Contraction, SizeMap};
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let library = KernelLibrary::build(
///     &Cogent::new(),
///     &tc,
///     &[SizeMap::uniform(&tc, 64), SizeMap::uniform(&tc, 2048)],
/// )?;
/// assert_eq!(library.len(), 2);
/// // An 80^3 problem selects the version tuned for 64^3.
/// let chosen = library.select(&SizeMap::uniform(&tc, 80));
/// assert_eq!(chosen.representative.extent("i"), Some(64));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct KernelLibrary {
    contraction: Contraction,
    versions: Vec<KernelVersion>,
}

/// One version of the library: the representative it was tuned for plus
/// the generated kernel.
#[derive(Debug, Clone)]
pub struct KernelVersion {
    /// The representative problem size this version was generated for.
    pub representative: SizeMap,
    /// The generated kernel.
    pub kernel: GeneratedKernel,
}

/// Squared log-space distance between two size maps over the contraction's
/// indices. Extents are clamped to ≥ 1 — a missing or zero extent (a
/// deserialized `SizeMap` can hold zeros even though `set` rejects them)
/// must not poison the ordering with `ln(0)` = −∞ or a NaN ratio.
fn log_distance(tc: &Contraction, x: &SizeMap, y: &SizeMap) -> f64 {
    let xs: Vec<usize> = tc.all_indices().map(|i| x.extent(i).unwrap_or(1)).collect();
    let ys: Vec<usize> = tc.all_indices().map(|i| y.extent(i).unwrap_or(1)).collect();
    log_distance_slices(&xs, &ys)
}

/// Slice form of [`log_distance`] for callers that already hold positional
/// extent vectors (the enumeration's warm-start menu cache keys on them);
/// `x` and `y` must be in the same index order.
pub(crate) fn log_distance_slices(x: &[usize], y: &[usize]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(&a, &b)| {
            let d = ((a.max(1) as f64) / (b.max(1) as f64)).ln();
            d * d
        })
        .sum()
}

impl KernelLibrary {
    /// Generates one kernel version per representative size. The versions
    /// are built through [`Cogent::generate_many`], so a generator with
    /// [`SearchOptions::threads`](crate::select::SearchOptions) > 1
    /// searches the representatives concurrently, and an attached
    /// [`KernelCache`](crate::cache::KernelCache) deduplicates repeated
    /// representatives.
    ///
    /// # Errors
    ///
    /// Returns [`CogentError::NoRepresentatives`] when `representatives`
    /// is empty, otherwise the first generation error in representative
    /// order (each representative must cover the contraction).
    pub fn build(
        generator: &Cogent,
        tc: &Contraction,
        representatives: &[SizeMap],
    ) -> Result<Self, CogentError> {
        if representatives.is_empty() {
            return Err(CogentError::NoRepresentatives);
        }
        let jobs: Vec<(Contraction, SizeMap)> = representatives
            .iter()
            .map(|sizes| (tc.clone(), sizes.clone()))
            .collect();
        let versions = generator
            .generate_many(&jobs)
            .into_iter()
            .zip(representatives)
            .map(|(result, sizes)| {
                result.map(|kernel| KernelVersion {
                    representative: sizes.clone(),
                    kernel,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            contraction: tc.normalized(),
            versions,
        })
    }

    /// The contraction the library serves (normalized).
    pub fn contraction(&self) -> &Contraction {
        &self.contraction
    }

    /// Number of versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the library is empty (never true: `build` requires at least
    /// one representative).
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Iterates over the versions in build order.
    pub fn iter(&self) -> impl Iterator<Item = &KernelVersion> {
        self.versions.iter()
    }

    /// Selects the version whose representative is closest to `actual`
    /// (log-space Euclidean distance over all index extents). Equidistant
    /// representatives tie-break to the earliest in build order, so
    /// selection is deterministic whatever the distance landscape.
    ///
    /// # Panics
    ///
    /// Panics when `actual` does not cover the contraction.
    pub fn select(&self, actual: &SizeMap) -> &KernelVersion {
        assert!(
            actual.covers(&self.contraction),
            "actual sizes must cover every index"
        );
        self.versions
            .iter()
            .enumerate()
            .min_by(|(ix, x), (iy, y)| {
                let dx = log_distance(&self.contraction, actual, &x.representative);
                let dy = log_distance(&self.contraction, actual, &y.representative);
                dx.total_cmp(&dy).then(ix.cmp(iy))
            })
            .map(|(_, version)| version)
            .expect("library is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogent_gpu_sim::execute_plan;
    use cogent_tensor::reference::{contract_reference, random_inputs};

    fn matmul_library() -> (Contraction, KernelLibrary) {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let lib = KernelLibrary::build(
            &Cogent::new(),
            &tc,
            &[SizeMap::uniform(&tc, 64), SizeMap::uniform(&tc, 1024)],
        )
        .unwrap();
        (tc, lib)
    }

    #[test]
    fn selects_nearest_representative() {
        let (tc, lib) = matmul_library();
        assert_eq!(lib.len(), 2);
        assert!(!lib.is_empty());
        let small = lib.select(&SizeMap::uniform(&tc, 96));
        assert_eq!(small.representative.extent("i"), Some(64));
        let large = lib.select(&SizeMap::uniform(&tc, 700));
        assert_eq!(large.representative.extent("i"), Some(1024));
    }

    #[test]
    fn selection_can_differ_per_index() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let skinny = SizeMap::from_pairs([("i", 4096), ("j", 16), ("k", 256)]);
        let square = SizeMap::uniform(&tc, 256);
        let lib = KernelLibrary::build(&Cogent::new(), &tc, &[skinny.clone(), square]).unwrap();
        let chosen = lib.select(&SizeMap::from_pairs([("i", 2048), ("j", 24), ("k", 128)]));
        assert_eq!(chosen.representative, skinny);
    }

    #[test]
    fn selected_version_is_correct_at_the_actual_size() {
        // The kernel is generated for the representative but must be
        // correct at the actual size (lower its configuration there).
        let (tc, lib) = matmul_library();
        let actual = SizeMap::uniform(&tc, 50);
        let version = lib.select(&actual);
        let plan = version
            .kernel
            .config
            .lower(&version.kernel.contraction, &actual)
            .unwrap();
        let (a, b) = random_inputs::<f64>(&version.kernel.contraction, &actual, 2);
        let got = execute_plan(&plan, &a, &b);
        let want = contract_reference(&version.kernel.contraction, &actual, &a, &b);
        assert!(got.approx_eq(&want, 1e-11));
    }

    #[test]
    fn versions_differ_when_sizes_demand_it() {
        // A tiny and a huge representative should not pick identical
        // configurations (tile sizes adapt to the problem).
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let lib = KernelLibrary::build(
            &Cogent::new(),
            &tc,
            &[SizeMap::uniform(&tc, 8), SizeMap::uniform(&tc, 64)],
        )
        .unwrap();
        let v: Vec<_> = lib.iter().collect();
        assert_ne!(v[0].kernel.config, v[1].kernel.config);
    }

    #[test]
    fn empty_representatives_is_a_typed_error() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let err = KernelLibrary::build(&Cogent::new(), &tc, &[]).unwrap_err();
        assert!(matches!(err, CogentError::NoRepresentatives));
        assert!(err.to_string().contains("representative"));
    }

    #[test]
    fn log_distance_guards_missing_and_zero_extents() {
        // A representative that misses an index (or, via deserialization,
        // carries a zero) must yield a finite distance, not NaN/∞.
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let full = SizeMap::uniform(&tc, 64);
        let missing = SizeMap::from_pairs([("i", 64), ("j", 64)]);
        let d = log_distance(&tc, &missing, &full);
        assert!(d.is_finite(), "distance is {d}");
        // The guard treats the missing extent as 1.
        let ones = SizeMap::from_pairs([("i", 64), ("j", 64), ("k", 1)]);
        assert_eq!(d, log_distance(&tc, &ones, &full));
    }

    #[test]
    fn equidistant_representatives_select_the_earliest() {
        // Two representatives with identical extents on the contraction's
        // indices (distinguished only by an extent the contraction never
        // reads) are exactly equidistant from any query: the tie-break
        // must deterministically pick the earlier one in build order.
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let mut first = SizeMap::uniform(&tc, 64);
        first.set("z", 7);
        let mut second = SizeMap::uniform(&tc, 64);
        second.set("z", 9);
        let lib =
            KernelLibrary::build(&Cogent::new(), &tc, &[first.clone(), second.clone()]).unwrap();
        let chosen = lib.select(&SizeMap::uniform(&tc, 96));
        assert_eq!(chosen.representative, first);
        // Reversed build order flips the winner.
        let lib = KernelLibrary::build(&Cogent::new(), &tc, &[second.clone(), first]).unwrap();
        let chosen = lib.select(&SizeMap::uniform(&tc, 96));
        assert_eq!(chosen.representative, second);
    }

    #[test]
    fn build_uses_generate_many_with_threads_and_cache() {
        use crate::cache::KernelCache;
        use crate::select::SearchOptions;
        use std::sync::Arc;

        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let opts = SearchOptions {
            threads: 2,
            ..SearchOptions::default()
        };
        let cache = Arc::new(KernelCache::new(8));
        let gen = Cogent::new().search_options(opts).cache(Arc::clone(&cache));
        // A duplicated representative is served from the cache.
        let rep = SizeMap::uniform(&tc, 64);
        let lib = KernelLibrary::build(&gen, &tc, &[rep.clone(), rep.clone(), rep]).unwrap();
        assert_eq!(lib.len(), 3);
        let v: Vec<_> = lib.iter().collect();
        assert_eq!(v[0].kernel.cuda_source, v[1].kernel.cuda_source);
        assert_eq!(v[1].kernel.cuda_source, v[2].kernel.cuda_source);
        assert!(cache.stats().hits >= 1, "{:?}", cache.stats());
    }
}
