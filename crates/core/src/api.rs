//! The COGENT front door.

use std::error::Error;
use std::fmt;

use cogent_gpu_model::{GpuDevice, Precision};
use cogent_gpu_sim::plan::StoreMode;
use cogent_gpu_sim::{KernelPlan, SimReport};
use cogent_ir::transform::merge_all;
use cogent_ir::{Contraction, SizeMap};

use crate::codegen::{emit_opencl_kernel, emit_source};
use crate::config::KernelConfig;
use crate::lower::refine_with_simulator;
use crate::select::{search, SearchOptions, SearchOutcome};

/// Error from [`Cogent::generate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenerateError {
    /// The size map is missing an extent for some index.
    IncompleteSizes,
    /// No configuration survived enumeration (degenerate contraction).
    NoConfiguration,
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::IncompleteSizes => {
                write!(f, "size map does not cover every contraction index")
            }
            GenerateError::NoConfiguration => {
                write!(f, "no kernel configuration could be enumerated")
            }
        }
    }
}

impl Error for GenerateError {}

/// Everything produced for one contraction: the chosen configuration, the
/// executable plan, the CUDA source, the simulated performance report and
/// the search statistics.
#[derive(Debug, Clone)]
pub struct GeneratedKernel {
    /// The normalized contraction the kernel implements.
    pub contraction: Contraction,
    /// The selected configuration.
    pub config: KernelConfig,
    /// The lowered, executable plan (run it with
    /// [`execute_plan`](cogent_gpu_sim::execute_plan)).
    pub plan: KernelPlan,
    /// Complete CUDA translation unit (kernel + host driver).
    pub cuda_source: String,
    /// The same kernel emitted as OpenCL C (kernel only).
    pub opencl_source: String,
    /// Simulated performance on the target device.
    pub report: SimReport,
    /// Search statistics (enumerated/pruned/ranked).
    pub search: SearchOutcome,
    /// Pipeline trace of this generation run. Populated whenever tracing
    /// is enabled (see [`cogent_obs::set_enabled`]), `None` otherwise.
    pub trace: Option<cogent_obs::PipelineTrace>,
}

/// The model-driven code generator: device + precision + search settings.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Cogent {
    device: GpuDevice,
    precision: Precision,
    options: SearchOptions,
    refine_top: usize,
    store_mode: StoreMode,
}

impl Default for Cogent {
    fn default() -> Self {
        Self::new()
    }
}

impl Cogent {
    /// A generator targeting the V100 at double precision with default
    /// search settings (the paper's primary evaluation platform).
    pub fn new() -> Self {
        Self {
            device: GpuDevice::v100(),
            precision: Precision::F64,
            options: SearchOptions::default(),
            refine_top: 4,
            store_mode: StoreMode::Assign,
        }
    }

    /// Sets the target device.
    pub fn device(mut self, device: GpuDevice) -> Self {
        self.device = device;
        self
    }

    /// Sets the arithmetic precision.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Replaces the search options (enumeration menus, pruning rules,
    /// ranking depth).
    pub fn search_options(mut self, options: SearchOptions) -> Self {
        self.options = options;
        self
    }

    /// How many of the model's top configurations to discriminate with the
    /// simulator (1 = trust the model outright).
    pub fn refine_top(mut self, k: usize) -> Self {
        self.refine_top = k.max(1);
        self
    }

    /// Selects assignment (`C = A*B`) or accumulation (`C += A*B`) output
    /// semantics; NWChem-style triples kernels use accumulation.
    pub fn store_mode(mut self, mode: StoreMode) -> Self {
        self.store_mode = mode;
        self
    }

    /// The configured device.
    pub fn target_device(&self) -> &GpuDevice {
        &self.device
    }

    /// The configured precision.
    pub fn target_precision(&self) -> Precision {
        self.precision
    }

    /// Like [`Cogent::generate`], but first applies the free
    /// index-merging transform (§IV: "merging dimensions helps to achieve
    /// coalescing if the extent of each dimension is very small") and
    /// keeps whichever version simulates faster.
    ///
    /// When the merged version wins, the returned kernel's contraction and
    /// size map differ from the caller's: the operand buffers must be
    /// reinterpreted with the merged shapes (a zero-copy reshape, since
    /// only storage-adjacent indices are fused). The returned `SizeMap`
    /// always matches the returned kernel.
    ///
    /// # Errors
    ///
    /// Same as [`Cogent::generate`].
    pub fn generate_with_merging(
        &self,
        tc: &Contraction,
        sizes: &SizeMap,
    ) -> Result<(GeneratedKernel, SizeMap), GenerateError> {
        let plain = self.generate(tc, sizes)?;
        let (merged_tc, merged_sizes) = merge_all(tc, sizes);
        if merged_tc.num_indices() == tc.num_indices() {
            return Ok((plain, sizes.clone()));
        }
        let merged = self.generate(&merged_tc, &merged_sizes)?;
        if merged.report.time.total_s < plain.report.time.total_s {
            Ok((merged, merged_sizes))
        } else {
            Ok((plain, sizes.clone()))
        }
    }

    /// Runs the full pipeline for one contraction: enumerate → prune →
    /// cost-rank → simulate the top few → lower the winner → emit CUDA.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::IncompleteSizes`] when `sizes` misses an
    /// index and [`GenerateError::NoConfiguration`] when nothing could be
    /// enumerated.
    pub fn generate(
        &self,
        tc: &Contraction,
        sizes: &SizeMap,
    ) -> Result<GeneratedKernel, GenerateError> {
        if !sizes.covers(tc) {
            return Err(GenerateError::IncompleteSizes);
        }
        // One capture per generation; when tracing is disabled this (and
        // every span below) is a single atomic load.
        let capture = cogent_obs::Capture::start("generate");
        let outcome = search(tc, sizes, &self.device, self.precision, &self.options);
        if outcome.ranked.is_empty() {
            return Err(GenerateError::NoConfiguration);
        }
        let refined = refine_with_simulator(
            &outcome,
            sizes,
            &self.device,
            self.precision,
            self.refine_top,
        );
        let winner = refined.into_iter().next().expect("refinement is non-empty");
        let config = outcome.ranked[winner.model_rank].config.clone();
        let plan = winner.plan.with_store_mode(self.store_mode);
        // Accumulating stores read the output before writing it; the
        // report must reflect that extra traffic, so re-simulate the
        // final plan rather than reusing the assign-mode refinement run.
        let report = if self.store_mode == StoreMode::Assign {
            winner.report
        } else {
            cogent_gpu_sim::simulate(&plan, &self.device, self.precision)
        };
        let (cuda_source, opencl_source) = {
            let _span = cogent_obs::span("codegen");
            let cuda = emit_source(&plan, self.precision);
            let opencl = emit_opencl_kernel(&plan, self.precision);
            cogent_obs::counter("codegen.cuda_bytes", cuda.len() as u128);
            cogent_obs::counter("codegen.opencl_bytes", opencl.len() as u128);
            (cuda, opencl)
        };
        let trace = capture.finish();
        Ok(GeneratedKernel {
            contraction: outcome.contraction.clone(),
            config,
            plan,
            cuda_source,
            opencl_source,
            report,
            search: outcome,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogent_gpu_sim::execute_plan;
    use cogent_tensor::reference::{contract_reference, random_inputs};

    #[test]
    fn end_to_end_eq1() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 16);
        let g = Cogent::new().generate(&tc, &sizes).unwrap();
        assert!(g.cuda_source.contains("__global__"));
        assert!(g.opencl_source.contains("__kernel"));
        assert!(g.report.gflops > 0.0);
        assert!(g.search.enumerated > 0);

        // The emitted plan computes the right answer.
        let (a, b) = random_inputs::<f64>(&g.contraction, &sizes, 5);
        let got = execute_plan(&g.plan, &a, &b);
        let want = contract_reference(&g.contraction, &sizes, &a, &b);
        assert!(got.approx_eq(&want, 1e-11));
    }

    #[test]
    fn incomplete_sizes_error() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::from_pairs([("i", 8)]);
        assert_eq!(
            Cogent::new().generate(&tc, &sizes).unwrap_err(),
            GenerateError::IncompleteSizes
        );
    }

    #[test]
    fn p100_f32_configuration() {
        let tc: Contraction = "abcdef-gdab-efgc".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 16);
        let g = Cogent::new()
            .device(GpuDevice::p100())
            .precision(Precision::F32)
            .generate(&tc, &sizes)
            .unwrap();
        assert!(g.cuda_source.contains("__shared__ float s_A"));
        assert!(g.cuda_source.contains("float* h_C"));
    }

    #[test]
    fn builder_accessors() {
        let c = Cogent::new()
            .device(GpuDevice::p100())
            .precision(Precision::F32);
        assert_eq!(c.target_device().name, "Tesla P100");
        assert_eq!(c.target_precision(), Precision::F32);
    }

    #[test]
    fn refine_top_one_trusts_model() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 24);
        let g = Cogent::new().refine_top(1).generate(&tc, &sizes).unwrap();
        // Winner must be the model's first choice.
        assert_eq!(g.config, g.search.ranked[0].config);
    }

    #[test]
    fn merging_small_dims_helps_and_is_selected() {
        // Internals k,l of extent 4 each, adjacent in both inputs; the
        // merged candidate fuses them into one 16-wide contracted index.
        let tc: Contraction = "ab-akl-klb".parse().unwrap();
        let sizes = SizeMap::from_pairs([("a", 256), ("b", 256), ("k", 4), ("l", 4)]);
        let (kernel, ksizes) = Cogent::new().generate_with_merging(&tc, &sizes).unwrap();
        // Whichever version won, it must cover its own contraction and be
        // no slower than the unmerged kernel (the merged candidate was
        // evaluated; our enumerator already composes adjacent small dims,
        // so either outcome is legitimate).
        assert!(ksizes.covers(&kernel.contraction));
        assert!(kernel.contraction.num_indices() <= 4);
        let plain = Cogent::new().generate(&tc, &sizes).unwrap();
        assert!(kernel.report.time.total_s <= plain.report.time.total_s);
    }

    #[test]
    fn merging_is_a_noop_when_nothing_merges() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 24);
        let (kernel, ksizes) = Cogent::new().generate_with_merging(&tc, &sizes).unwrap();
        assert_eq!(kernel.contraction.num_indices(), 6);
        assert_eq!(ksizes, sizes);
    }

    #[test]
    fn accumulate_mode_reaches_the_emitted_source() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 64);
        let g = Cogent::new()
            .store_mode(StoreMode::Accumulate)
            .generate(&tc, &sizes)
            .unwrap();
        assert_eq!(g.plan.store_mode(), StoreMode::Accumulate);
        assert!(g.cuda_source.contains("+= r_C[ry][rx];"));
        assert!(g.opencl_source.contains("+= r_C[ry][rx];"));
        // The report accounts for the read-modify-write of C.
        let assign = Cogent::new().generate(&tc, &sizes).unwrap();
        assert!(g.report.trace.store_c > assign.report.trace.store_c);
    }

    #[test]
    fn error_display() {
        assert!(GenerateError::IncompleteSizes
            .to_string()
            .contains("size map"));
    }
}
