//! The COGENT front door.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cogent_gpu_model::{GpuDevice, Precision};
use cogent_gpu_sim::plan::StoreMode;
use cogent_gpu_sim::{simulate, KernelPlan, SimReport};
use cogent_ir::transform::merge_all;
use cogent_ir::{Contraction, IndexName, SizeMap};

use crate::cache::{CacheKey, KernelCache};
use crate::codegen::{emit_driver, lower_with_passes, print_backend, Backend, PassConfig};
use crate::config::KernelConfig;
use crate::guard::{
    divergence_check, naive_config, naive_plan, record_violations, validate_generated, CogentError,
    PlanSource, PlanViolation, Provenance, RejectReason, RejectedCandidate,
};
use crate::select::{search, SearchOptions, SearchOutcome};

/// Everything produced for one contraction: the chosen configuration, the
/// executable plan, the CUDA source, the simulated performance report and
/// the search statistics.
#[derive(Debug, Clone)]
pub struct GeneratedKernel {
    /// The normalized contraction the kernel implements.
    pub contraction: Contraction,
    /// The selected configuration.
    pub config: KernelConfig,
    /// The lowered, executable plan (run it with
    /// [`execute_plan`](cogent_gpu_sim::execute_plan)).
    pub plan: KernelPlan,
    /// Complete CUDA translation unit (kernel + host driver).
    pub cuda_source: String,
    /// The same kernel emitted as OpenCL C (kernel only).
    pub opencl_source: String,
    /// Simulated performance on the target device.
    pub report: SimReport,
    /// Search statistics (enumerated/pruned/ranked).
    pub search: SearchOutcome,
    /// Where the plan came from: which ranked candidate won, which were
    /// rejected and why, and whether the guard degraded to the naive
    /// fallback.
    pub provenance: Provenance,
    /// Pipeline trace of this generation run. Populated whenever tracing
    /// is enabled (see [`cogent_obs::set_enabled`]), `None` otherwise.
    pub trace: Option<cogent_obs::PipelineTrace>,
}

/// The model-driven code generator: device + precision + search settings.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Cogent {
    device: GpuDevice,
    precision: Precision,
    options: SearchOptions,
    refine_top: usize,
    store_mode: StoreMode,
    verify_numeric: bool,
    divergence_tolerance: f64,
    passes: PassConfig,
    cache: Option<Arc<KernelCache>>,
}

impl Default for Cogent {
    fn default() -> Self {
        Self::new()
    }
}

impl Cogent {
    /// A generator targeting the V100 at double precision with default
    /// search settings (the paper's primary evaluation platform).
    pub fn new() -> Self {
        Self {
            device: GpuDevice::v100(),
            precision: Precision::F64,
            options: SearchOptions::default(),
            refine_top: 4,
            store_mode: StoreMode::Assign,
            verify_numeric: false,
            divergence_tolerance: 1e-8,
            passes: PassConfig::None,
            cache: None,
        }
    }

    /// Sets the target device.
    pub fn device(mut self, device: GpuDevice) -> Self {
        self.device = device;
        self
    }

    /// Sets the arithmetic precision.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Replaces the search options (enumeration menus, pruning rules,
    /// ranking depth).
    pub fn search_options(mut self, options: SearchOptions) -> Self {
        self.options = options;
        self
    }

    /// How many of the model's top configurations to discriminate with the
    /// simulator (1 = trust the model outright).
    pub fn refine_top(mut self, k: usize) -> Self {
        self.refine_top = k.max(1);
        self
    }

    /// Selects assignment (`C = A*B`) or accumulation (`C += A*B`) output
    /// semantics; NWChem-style triples kernels use accumulation.
    pub fn store_mode(mut self, mode: StoreMode) -> Self {
        self.store_mode = mode;
        self
    }

    /// Enables the numeric divergence check: every candidate plan is
    /// executed functionally on the representative sizes and compared to
    /// the reference contraction before being returned. Off by default —
    /// functional execution at representative sizes can cost far more than
    /// the search itself.
    pub fn verify_numeric(mut self, on: bool) -> Self {
        self.verify_numeric = on;
        self
    }

    /// Maximum absolute element difference tolerated by the divergence
    /// check (default `1e-8`).
    pub fn divergence_tolerance(mut self, tolerance: f64) -> Self {
        self.divergence_tolerance = tolerance;
        self
    }

    /// Selects the KIR optimization-pass pipeline applied between
    /// lowering and emission (default [`PassConfig::None`], which keeps
    /// the emitted kernels byte-identical to the baseline generator).
    /// Applied passes are recorded in
    /// [`GeneratedKernel::provenance`]`.passes`.
    pub fn passes(mut self, passes: PassConfig) -> Self {
        self.passes = passes;
        self
    }

    /// The configured pass pipeline.
    pub fn pass_config(&self) -> &PassConfig {
        &self.passes
    }

    /// Attaches a kernel cache. `generate` consults it before searching
    /// and stores fresh results in it; a warm hit skips the entire
    /// pipeline. The cache is behind an [`Arc`], so several generators
    /// (or threads — see [`Cogent::generate_many`]) can share one.
    pub fn cache(mut self, cache: Arc<KernelCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a fresh cache sized by the `COGENT_CACHE_CAP` environment
    /// variable (see [`KernelCache::from_env`]).
    pub fn with_default_cache(self) -> Self {
        self.cache(Arc::new(KernelCache::from_env()))
    }

    /// The attached cache, if any (e.g. to read
    /// [`stats`](KernelCache::stats) after a sweep).
    pub fn kernel_cache(&self) -> Option<&Arc<KernelCache>> {
        self.cache.as_ref()
    }

    /// Flattens every generator knob that can change the emitted kernel
    /// into a stable string for the cache key. `threads` is deliberately
    /// excluded: the search result is identical for every thread count
    /// (see [`crate::select::search`]), so serial and parallel runs share
    /// cache entries.
    pub fn options_fingerprint(&self) -> String {
        format!(
            "enum={:?};rules={:?};top_k={};max_configs={};time_budget={:?};refine_top={};store={:?};verify={};tol={:e};passes={}",
            self.options.enumeration,
            self.options.rules,
            self.options.top_k,
            self.options.max_configs,
            self.options.time_budget,
            self.refine_top,
            self.store_mode,
            self.verify_numeric,
            self.divergence_tolerance,
            self.passes.fingerprint(),
        )
    }

    /// The configured device.
    pub fn target_device(&self) -> &GpuDevice {
        &self.device
    }

    /// The configured precision.
    pub fn target_precision(&self) -> Precision {
        self.precision
    }

    /// Like [`Cogent::generate`], but first applies the free
    /// index-merging transform (§IV: "merging dimensions helps to achieve
    /// coalescing if the extent of each dimension is very small") and
    /// keeps whichever version simulates faster.
    ///
    /// When the merged version wins, the returned kernel's contraction and
    /// size map differ from the caller's: the operand buffers must be
    /// reinterpreted with the merged shapes (a zero-copy reshape, since
    /// only storage-adjacent indices are fused). The returned `SizeMap`
    /// always matches the returned kernel.
    ///
    /// # Errors
    ///
    /// Same as [`Cogent::generate`].
    pub fn generate_with_merging(
        &self,
        tc: &Contraction,
        sizes: &SizeMap,
    ) -> Result<(GeneratedKernel, SizeMap), CogentError> {
        let plain = self.generate(tc, sizes)?;
        let (merged_tc, merged_sizes) = merge_all(tc, sizes);
        if merged_tc.num_indices() == tc.num_indices() {
            return Ok((plain, sizes.clone()));
        }
        let merged = self.generate(&merged_tc, &merged_sizes)?;
        if merged.report.time.total_s < plain.report.time.total_s {
            Ok((merged, merged_sizes))
        } else {
            Ok((plain, sizes.clone()))
        }
    }

    /// Runs the full pipeline for one contraction: enumerate → prune →
    /// cost-rank → lower, validate and simulate the top few → emit CUDA
    /// for the winner.
    ///
    /// Every candidate plan passes [`validate_plan`](crate::guard::validate_plan) (and, when
    /// [`Cogent::verify_numeric`] is on, the numeric divergence check
    /// against the reference contraction) before it can win. Candidates
    /// that fail are skipped and recorded in
    /// [`GeneratedKernel::provenance`]; when every ranked candidate is
    /// rejected, generation degrades to the guaranteed-safe naive plan
    /// (one thread per output element) instead of failing.
    ///
    /// # Errors
    ///
    /// Returns [`CogentError::IncompleteSizes`] when `sizes` misses an
    /// index, [`CogentError::NoConfiguration`] when nothing could be
    /// enumerated, [`CogentError::BudgetExhausted`] when the enumeration
    /// budget ran out before producing anything, and
    /// [`CogentError::NoViablePlan`] when even the naive fallback fails
    /// validation (e.g. the problem exceeds the device's launch limits).
    pub fn generate(
        &self,
        tc: &Contraction,
        sizes: &SizeMap,
    ) -> Result<GeneratedKernel, CogentError> {
        if !sizes.covers(tc) {
            let missing: Vec<IndexName> = tc
                .all_indices()
                .filter(|i| sizes.extent(i).is_none())
                .cloned()
                .collect();
            return Err(CogentError::IncompleteSizes { missing });
        }
        // One capture per generation; when tracing is disabled this (and
        // every span below) is a single atomic load.
        let capture = cogent_obs::Capture::start("generate");
        let key = self.cache.as_ref().map(|cache| {
            (
                cache,
                CacheKey::new(
                    tc,
                    sizes,
                    &self.device,
                    self.precision,
                    &self.options_fingerprint(),
                ),
            )
        });
        if let Some((cache, key)) = &key {
            if let Some(mut hit) = cache.get(key) {
                // Cached kernels carry no trace; attach this lookup's own
                // (it records the cache.hit counter above).
                hit.trace = capture.finish();
                return Ok(hit);
            }
        }
        let mut kernel = self.generate_uncached(tc, sizes)?;
        if let Some((cache, key)) = key {
            // Store without the trace: it describes this particular run,
            // not the kernel, and would pin every span buffer in memory.
            // Truncated searches are best-effort under a budget that may
            // have been this request's alone — never cache them, so a
            // later request with a generous (or no) deadline redoes the
            // full search instead of inheriting a degraded kernel.
            if !kernel.search.truncated {
                cache.insert(key, kernel.clone());
            }
        }
        kernel.trace = capture.finish();
        Ok(kernel)
    }

    /// The uncached pipeline behind [`Cogent::generate`]: search → lower /
    /// validate / simulate → guard ladder → emit. Assumes `sizes` covers
    /// `tc` and that the caller owns the obs capture.
    fn generate_uncached(
        &self,
        tc: &Contraction,
        sizes: &SizeMap,
    ) -> Result<GeneratedKernel, CogentError> {
        let outcome = search(tc, sizes, &self.device, self.precision, &self.options);
        if outcome.ranked.is_empty() {
            // An empty ranking from a truncated search means a budget
            // (max_configs or the time deadline, in whichever phase) ran
            // out before any candidate was ranked — not that the space is
            // genuinely unenumerable.
            if outcome.truncated {
                return Err(CogentError::BudgetExhausted {
                    max_configs: self.options.max_configs,
                    time_budget: self.options.time_budget,
                });
            }
            return Err(CogentError::NoConfiguration);
        }

        // Degradation ladder, stage 1: lower + validate + simulate the
        // ranked candidates until `refine_top` viable ones are collected.
        let mut rejected: Vec<RejectedCandidate> = Vec::new();
        let mut viable: Vec<(usize, KernelPlan, SimReport)> = Vec::new();
        let mut checked = 0usize;
        {
            let _span = cogent_obs::span("lower");
            for (model_rank, ranked) in outcome.ranked.iter().enumerate() {
                if viable.len() >= self.refine_top {
                    break;
                }
                checked += 1;
                let plan = match ranked.config.lower(&outcome.contraction, sizes) {
                    Ok(plan) => plan.with_store_mode(self.store_mode),
                    Err(e) => {
                        cogent_obs::counter("guard.violation.lowering", 1);
                        rejected.push(RejectedCandidate {
                            model_rank,
                            reason: RejectReason::Lowering(e),
                        });
                        continue;
                    }
                };
                if let Err(violations) =
                    validate_generated(&plan, &self.device, self.precision, self.store_mode)
                {
                    record_violations(&violations);
                    rejected.push(RejectedCandidate {
                        model_rank,
                        reason: RejectReason::Invalid(violations),
                    });
                    continue;
                }
                let report = simulate(&plan, &self.device, self.precision);
                viable.push((model_rank, plan, report));
            }
            cogent_obs::counter("lower.candidates", checked as u128);
        }
        viable.sort_by(|x, y| x.2.time.total_s.total_cmp(&y.2.time.total_s));

        // Stage 2: numeric divergence gate (optional) — first passing
        // candidate wins.
        let mut winner: Option<(usize, KernelPlan, SimReport)> = None;
        let mut numeric_verified = false;
        for (model_rank, plan, report) in viable {
            if !self.verify_numeric {
                winner = Some((model_rank, plan, report));
                break;
            }
            match divergence_check(&plan, 23, self.divergence_tolerance) {
                Ok(()) => {
                    numeric_verified = true;
                    winner = Some((model_rank, plan, report));
                    break;
                }
                Err(PlanViolation::NumericDivergence { max_abs_diff }) => {
                    cogent_obs::counter("guard.violation.numeric_divergence", 1);
                    rejected.push(RejectedCandidate {
                        model_rank,
                        reason: RejectReason::Divergence { max_abs_diff },
                    });
                }
                Err(violation) => {
                    record_violations(std::slice::from_ref(&violation));
                    rejected.push(RejectedCandidate {
                        model_rank,
                        reason: RejectReason::Invalid(vec![violation]),
                    });
                }
            }
        }

        // Stage 3: naive fallback. Exempt from the divergence gate — its
        // one-element-per-step walk is the same order the reference uses,
        // and a fallback that could itself be rejected for floating-point
        // rounding would defeat graceful degradation; `numeric_verified`
        // stays false to keep the exemption visible.
        let (source, config, plan, report) = match winner {
            Some((model_rank, plan, report)) => {
                let config = outcome.ranked[model_rank].config.clone();
                (PlanSource::Search { model_rank }, config, plan, report)
            }
            None => {
                let plan = naive_plan(tc, sizes)?.with_store_mode(self.store_mode);
                if let Err(violations) =
                    validate_generated(&plan, &self.device, self.precision, self.store_mode)
                {
                    record_violations(&violations);
                    cogent_obs::counter("guard.fallback.unviable", 1);
                    return Err(CogentError::NoViablePlan { violations });
                }
                let report = simulate(&plan, &self.device, self.precision);
                (PlanSource::NaiveFallback, naive_config(&plan), plan, report)
            }
        };
        {
            let _span = cogent_obs::span("guard");
            cogent_obs::counter("guard.candidates.checked", checked as u128);
            cogent_obs::counter("guard.fallback.rejected", rejected.len() as u128);
            cogent_obs::counter(
                "guard.fallback.naive",
                u128::from(source == PlanSource::NaiveFallback),
            );
        }
        let (cuda_source, opencl_source, applied_passes) = {
            let _span = cogent_obs::span("codegen");
            // Lower once, run the configured pass pipeline once, and print
            // every dialect from the same transformed tree. With
            // `PassConfig::None` this is byte-identical to the baseline
            // emitters.
            let (prog, applied) = lower_with_passes(&plan, self.precision, &self.passes)?;
            let cuda = format!(
                "{}\n{}",
                print_backend(&prog, self.precision, Backend::Cuda),
                emit_driver(&plan, self.precision)
            );
            let opencl = print_backend(&prog, self.precision, Backend::OpenCl);
            cogent_obs::counter("codegen.cuda_lines", cuda.lines().count() as u128);
            cogent_obs::counter("codegen.cuda_bytes", cuda.len() as u128);
            cogent_obs::counter("codegen.opencl_bytes", opencl.len() as u128);
            cogent_obs::counter("codegen.passes_applied", applied.len() as u128);
            (cuda, opencl, applied)
        };
        let provenance = Provenance {
            source,
            rejected,
            numeric_verified,
            passes: applied_passes,
        };
        Ok(GeneratedKernel {
            contraction: outcome.contraction.clone(),
            config,
            plan,
            cuda_source,
            opencl_source,
            report,
            search: outcome,
            provenance,
            trace: None,
        })
    }

    /// Generates kernels for a whole slate of contractions, sharing this
    /// generator's cache (when attached) and spreading the jobs over
    /// [`SearchOptions::threads`] worker threads. Results come back in
    /// job order, one `Result` per job — a failed job does not abort the
    /// rest of the slate.
    ///
    /// With more than one worker, each job's *inner* search runs serially
    /// (job-level parallelism replaces candidate-level parallelism, so a
    /// 4-thread batch does not fan out into 16 threads). The emitted
    /// kernels are byte-identical to one-at-a-time [`Cogent::generate`]
    /// calls: the search is deterministic for every thread count, and
    /// cache entries are keyed by everything that affects the output.
    ///
    /// Every batch records per-kernel traces when tracing is enabled:
    /// each worker opens its own capture, and the per-worker metrics
    /// (counters, histograms, span durations) merge into the process
    /// global registry ([`cogent_obs::metrics_snapshot`]). If the caller
    /// additionally has a span open, each job is wrapped in a relayed
    /// `job` span ([`cogent_obs::fork`]) so the caller's trace shows one
    /// timeline row per worker thread.
    ///
    /// # Errors
    ///
    /// Each slot carries the same errors as [`Cogent::generate`] for its
    /// job.
    pub fn generate_many(
        &self,
        jobs: &[(Contraction, SizeMap)],
    ) -> Vec<Result<GeneratedKernel, CogentError>> {
        let workers = self.options.threads.max(1).min(jobs.len().max(1));
        if workers <= 1 {
            return jobs
                .iter()
                .map(|(tc, sizes)| self.generate(tc, sizes))
                .collect();
        }
        let mut inner = self.clone();
        inner.options.threads = 1;
        let inner = &inner;
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<GeneratedKernel, CogentError>>>> =
            Mutex::new((0..jobs.len()).map(|_| None).collect());
        let fork = cogent_obs::fork();
        std::thread::scope(|scope| {
            let fork = fork.as_ref();
            let next = &next;
            let slots = &slots;
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((tc, sizes)) = jobs.get(i) else {
                        break;
                    };
                    let _job = fork.map(|relay| relay.open("job", i));
                    let result = inner.generate(tc, sizes);
                    slots.lock().unwrap_or_else(|poison| poison.into_inner())[i] = Some(result);
                });
            }
        });
        if let Some(fork) = fork {
            fork.attach();
        }
        slots
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
            .into_iter()
            .map(|slot| match slot {
                Some(result) => result,
                // Unreachable: the scope joins every worker, and each
                // claimed index is filled before the next claim.
                None => Err(CogentError::NoConfiguration),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogent_gpu_sim::execute_plan;
    use cogent_tensor::reference::{contract_reference, random_inputs};

    #[test]
    fn end_to_end_eq1() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 16);
        let g = Cogent::new().generate(&tc, &sizes).unwrap();
        assert!(g.cuda_source.contains("__global__"));
        assert!(g.opencl_source.contains("__kernel"));
        assert!(g.report.gflops > 0.0);
        assert!(g.search.enumerated > 0);

        // The emitted plan computes the right answer.
        let (a, b) = random_inputs::<f64>(&g.contraction, &sizes, 5);
        let got = execute_plan(&g.plan, &a, &b);
        let want = contract_reference(&g.contraction, &sizes, &a, &b);
        assert!(got.approx_eq(&want, 1e-11));
    }

    #[test]
    fn incomplete_sizes_error() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::from_pairs([("i", 8)]);
        let err = Cogent::new().generate(&tc, &sizes).unwrap_err();
        assert!(matches!(err, CogentError::IncompleteSizes { ref missing }
            if missing.iter().map(|i| i.as_str()).collect::<Vec<_>>() == ["j", "k"]));
    }

    #[test]
    fn p100_f32_configuration() {
        let tc: Contraction = "abcdef-gdab-efgc".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 16);
        let g = Cogent::new()
            .device(GpuDevice::p100())
            .precision(Precision::F32)
            .generate(&tc, &sizes)
            .unwrap();
        assert!(g.cuda_source.contains("__shared__ float s_A"));
        assert!(g.cuda_source.contains("float* h_C"));
    }

    #[test]
    fn builder_accessors() {
        let c = Cogent::new()
            .device(GpuDevice::p100())
            .precision(Precision::F32);
        assert_eq!(c.target_device().name, "Tesla P100");
        assert_eq!(c.target_precision(), Precision::F32);
    }

    #[test]
    fn refine_top_one_trusts_model() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 24);
        let g = Cogent::new().refine_top(1).generate(&tc, &sizes).unwrap();
        // Winner must be the model's first choice.
        assert_eq!(g.config, g.search.ranked[0].config);
    }

    #[test]
    fn merging_small_dims_helps_and_is_selected() {
        // Internals k,l of extent 4 each, adjacent in both inputs; the
        // merged candidate fuses them into one 16-wide contracted index.
        let tc: Contraction = "ab-akl-klb".parse().unwrap();
        let sizes = SizeMap::from_pairs([("a", 256), ("b", 256), ("k", 4), ("l", 4)]);
        let (kernel, ksizes) = Cogent::new().generate_with_merging(&tc, &sizes).unwrap();
        // Whichever version won, it must cover its own contraction and be
        // no slower than the unmerged kernel (the merged candidate was
        // evaluated; our enumerator already composes adjacent small dims,
        // so either outcome is legitimate).
        assert!(ksizes.covers(&kernel.contraction));
        assert!(kernel.contraction.num_indices() <= 4);
        let plain = Cogent::new().generate(&tc, &sizes).unwrap();
        assert!(kernel.report.time.total_s <= plain.report.time.total_s);
    }

    #[test]
    fn merging_is_a_noop_when_nothing_merges() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 24);
        let (kernel, ksizes) = Cogent::new().generate_with_merging(&tc, &sizes).unwrap();
        assert_eq!(kernel.contraction.num_indices(), 6);
        assert_eq!(ksizes, sizes);
    }

    #[test]
    fn accumulate_mode_reaches_the_emitted_source() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 64);
        let g = Cogent::new()
            .store_mode(StoreMode::Accumulate)
            .generate(&tc, &sizes)
            .unwrap();
        assert_eq!(g.plan.store_mode(), StoreMode::Accumulate);
        assert!(g.cuda_source.contains("+= r_C[ry][rx];"));
        assert!(g.opencl_source.contains("+= r_C[ry][rx];"));
        // The report accounts for the read-modify-write of C.
        let assign = Cogent::new().generate(&tc, &sizes).unwrap();
        assert!(g.report.trace.store_c > assign.report.trace.store_c);
    }

    #[test]
    fn error_display() {
        let err = CogentError::IncompleteSizes {
            missing: vec!["j".into(), "k".into()],
        };
        assert!(err.to_string().contains("size map"));
        assert!(err.to_string().contains('j'));
    }

    #[test]
    fn clean_generation_has_undegraded_provenance() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 16);
        let g = Cogent::new().generate(&tc, &sizes).unwrap();
        assert!(!g.provenance.degraded(), "{}", g.provenance);
        assert!(matches!(g.provenance.source, PlanSource::Search { .. }));
        assert!(g.provenance.rejected.is_empty());
    }

    #[test]
    fn numeric_verification_marks_provenance() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 12);
        let g = Cogent::new()
            .verify_numeric(true)
            .generate(&tc, &sizes)
            .unwrap();
        assert!(g.provenance.numeric_verified);
        assert!(!g.provenance.degraded());
    }

    #[test]
    fn impossible_tolerance_degrades_to_naive_fallback() {
        // A negative tolerance fails every candidate's divergence check,
        // forcing the ladder all the way down to the naive plan — which is
        // exempt from the gate, still executes correctly, and reports the
        // degradation.
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 12);
        let g = Cogent::new()
            .verify_numeric(true)
            .divergence_tolerance(-1.0)
            .generate(&tc, &sizes)
            .unwrap();
        assert_eq!(g.provenance.source, PlanSource::NaiveFallback);
        assert!(!g.provenance.numeric_verified);
        assert!(!g.provenance.rejected.is_empty());
        assert!(g
            .provenance
            .rejected
            .iter()
            .all(|r| matches!(r.reason, RejectReason::Divergence { .. })));
        assert!(g.provenance.to_string().contains("naive fallback"));
        // The fallback still computes the right answer.
        let (a, b) = random_inputs::<f64>(&g.contraction, &sizes, 3);
        let got = execute_plan(&g.plan, &a, &b);
        let want = contract_reference(&g.contraction, &sizes, &a, &b);
        assert!(got.approx_eq(&want, 1e-11));
    }

    #[test]
    fn oversized_grid_is_no_viable_plan() {
        // Externals so large that even one-thread-per-element exceeds the
        // 2^31-1 block launch limit: every candidate and the naive
        // fallback are rejected.
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::from_pairs([("i", 3_000_000), ("j", 3_000_000), ("k", 2)]);
        let err = Cogent::new().generate(&tc, &sizes).unwrap_err();
        assert!(matches!(err, CogentError::NoViablePlan { ref violations }
            if violations.iter().any(|v| matches!(v, PlanViolation::GridExceeded { .. }))));
    }

    #[test]
    fn cached_generate_is_byte_identical_to_cold() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 16);
        let gen = Cogent::new().cache(Arc::new(KernelCache::new(8)));
        let cold = gen.generate(&tc, &sizes).unwrap();
        let warm = gen.generate(&tc, &sizes).unwrap();
        assert_eq!(cold.cuda_source, warm.cuda_source);
        assert_eq!(cold.opencl_source, warm.opencl_source);
        assert_eq!(cold.config, warm.config);
        assert_eq!(cold.search, warm.search);
        let stats = gen.kernel_cache().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn options_fingerprint_separates_cache_entries() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 32);
        let cache = Arc::new(KernelCache::new(8));
        let assign = Cogent::new().cache(Arc::clone(&cache));
        let accumulate = Cogent::new()
            .store_mode(StoreMode::Accumulate)
            .cache(Arc::clone(&cache));
        assign.generate(&tc, &sizes).unwrap();
        let g = accumulate.generate(&tc, &sizes).unwrap();
        // Different store mode must not hit the assign entry.
        assert_eq!(g.plan.store_mode(), StoreMode::Accumulate);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn threads_are_excluded_from_the_fingerprint() {
        let serial = Cogent::new();
        let opts = SearchOptions {
            threads: 4,
            ..SearchOptions::default()
        };
        let parallel = Cogent::new().search_options(opts);
        assert_eq!(serial.options_fingerprint(), parallel.options_fingerprint());
    }

    #[test]
    fn generate_many_matches_one_at_a_time() {
        let specs = ["abcd-aebf-dfce", "ij-ik-kj", "abc-bda-dc"];
        let jobs: Vec<(Contraction, SizeMap)> = specs
            .iter()
            .map(|s| {
                let tc: Contraction = s.parse().unwrap();
                let sizes = SizeMap::uniform(&tc, 12);
                (tc, sizes)
            })
            .collect();
        let opts = SearchOptions {
            threads: 3,
            ..SearchOptions::default()
        };
        let batch = Cogent::new()
            .search_options(opts)
            .cache(Arc::new(KernelCache::new(8)))
            .generate_many(&jobs);
        assert_eq!(batch.len(), jobs.len());
        for ((tc, sizes), result) in jobs.iter().zip(&batch) {
            let one = Cogent::new().generate(tc, sizes).unwrap();
            let many = result.as_ref().unwrap();
            assert_eq!(one.cuda_source, many.cuda_source);
            assert_eq!(one.config, many.config);
        }
    }

    #[test]
    fn generate_many_reports_per_job_errors_in_order() {
        let good: Contraction = "ij-ik-kj".parse().unwrap();
        let bad_sizes = SizeMap::from_pairs([("i", 8)]);
        let good_sizes = SizeMap::uniform(&good, 8);
        let jobs = vec![
            (good.clone(), bad_sizes),
            (good.clone(), good_sizes.clone()),
        ];
        let opts = SearchOptions {
            threads: 2,
            ..SearchOptions::default()
        };
        let batch = Cogent::new().search_options(opts).generate_many(&jobs);
        assert!(matches!(batch[0], Err(CogentError::IncompleteSizes { .. })));
        assert!(batch[1].is_ok());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 24);
        let opts = SearchOptions {
            max_configs: 0,
            ..SearchOptions::default()
        };
        let err = Cogent::new()
            .search_options(opts)
            .generate(&tc, &sizes)
            .unwrap_err();
        assert!(matches!(err, CogentError::BudgetExhausted { .. }));
    }
}
