//! COGENT: a model-driven code generator for tensor contractions on GPUs.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Kim et al., *A Code Generator for High-Performance Tensor Contractions
//! on GPUs*, CGO 2019). Given an arbitrary tensor contraction and a
//! representative problem size, it
//!
//! 1. **enumerates** candidate kernel configurations — mappings of loop
//!    indices to thread-block X/Y, per-thread register tiles, and the
//!    serial contracted dimension, with tile sizes (Algorithm 2, [`enumerate`]);
//! 2. **prunes** configurations violating hardware limits (shared memory,
//!    registers, threads) or performance rules (coalescing of each
//!    tensor's fastest varying index, minimum parallelism, occupancy —
//!    §IV-A, [`constraints`]);
//! 3. **ranks** the survivors with an analytical DRAM-transaction cost
//!    model (Algorithm 3, [`cost`]) — no code is run during the search;
//! 4. **lowers** the winner to an executable [`KernelPlan`]
//!    ([`lower`]) and **emits** the corresponding CUDA kernel and host
//!    driver ([`codegen`]).
//!
//! The front door is [`Cogent`]:
//!
//! ```
//! use cogent_core::Cogent;
//! use cogent_ir::{Contraction, SizeMap};
//!
//! // Eq. 1 of the paper.
//! let tc: Contraction = "abcd-aebf-dfce".parse()?;
//! let sizes = SizeMap::uniform(&tc, 24);
//! let generated = Cogent::new().generate(&tc, &sizes)?;
//! assert!(generated.cuda_source.contains("__global__"));
//! assert!(generated.search.enumerated > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`KernelPlan`]: cogent_gpu_sim::KernelPlan

pub mod api;
pub mod audit;
pub mod cache;
pub mod codegen;
pub mod config;
pub mod constraints;
pub mod cost;
pub mod enumerate;
pub mod guard;
pub mod intern;
pub mod learned;
pub mod library;
pub mod lower;
pub mod persist;
pub mod select;
pub mod serve;

pub use api::{Cogent, GeneratedKernel};
pub use audit::{
    audit_contraction, spearman, AuditOptions, AuditReport, ConfigAudit, ContractionAudit,
    AUDIT_SCHEMA,
};
pub use cache::{CacheKey, CacheStats, KernelCache, CACHE_CAP_ENV_VAR};
pub use config::KernelConfig;
pub use constraints::{PruneReason, PruneRules};
pub use cost::transaction_cost;
pub use enumerate::{
    enumerate_configs, enumerate_configs_bounded, EnumerationBudget, EnumerationOptions,
};
pub use guard::{
    validate_plan, CogentError, PlanSource, PlanViolation, Provenance, RejectReason,
    RejectedCandidate,
};
pub use learned::LearnedRanker;
pub use library::{KernelLibrary, KernelVersion};
pub use persist::{CachePersister, LoadReport, PersistError, SaveReport, CACHE_DIR_ENV_VAR};
pub use select::{
    search, threads_from_env, RankedConfig, SearchOptions, SearchOutcome, THREADS_ENV_VAR,
};
pub use serve::{ServeConfig, ServeError, Server};
