//! Cost-model accuracy auditing: predicted vs. measured DRAM transactions.
//!
//! COGENT's bet (paper §5, Fig. 8) is that the analytical transaction
//! model of [`cost`](crate::cost) *ranks* kernel configurations well
//! enough that its top pick is near-optimal. This module measures that
//! claim: for a contraction it takes the model's top-K configurations,
//! replays each through the `cogent-gpu-sim` address-level tracer, and
//! reports three fidelity signals —
//!
//! * **relative error** of each prediction against its measurement
//!   (histogrammed in parts-per-million so traces stay integer-valued);
//! * **Spearman rank correlation** between the model's ordering and the
//!   simulated ordering (1.0 = the model sorts configurations exactly as
//!   the simulator does);
//! * **regret**: how many more measured transactions the model's #1 pick
//!   costs relative to the best configuration in the audited set
//!   (0.0 = the model picked the simulated optimum).
//!
//! [`AuditReport`] aggregates these over a suite (e.g. the 48-entry TCCG
//! benchmark) and serializes to the `cogent.audit.v1` JSON schema that
//! `tools/bench_diff` gates CI against.
//!
//! Audits are spanned (`audit.contraction` with a nested `audit.measure`
//! per re-measured configuration), so `cogent profile` can attribute
//! audit wall time, and the `audit.*` counters/histograms/gauges recorded
//! here merge into the process-global metrics registry exposed by
//! `cogent stats` ([`cogent_obs::metrics_snapshot`]).

use std::time::Instant;

use cogent_gpu_model::{GpuDevice, Precision};
use cogent_gpu_sim::plan::KernelPlan;
use cogent_gpu_sim::{trace_transactions, TraceOptions, TraceReport};
use cogent_ir::{Contraction, SizeMap};
use cogent_kir::{estimate_traffic, TrafficReport};
use cogent_obs::json::Json;
use cogent_obs::metrics::Histogram;

use crate::codegen::{lower_with_passes, PassConfig};
use crate::cost::CostBreakdown;
use crate::guard::CogentError;
use crate::select::{search, SearchOptions};

/// Schema identifier embedded in every serialized audit report.
pub const AUDIT_SCHEMA: &str = "cogent.audit.v1";

/// Controls for an audit run.
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// How many of the model's top configurations to measure per
    /// contraction.
    pub top_k: usize,
    /// Search controls (its own `top_k` is raised to at least
    /// [`AuditOptions::top_k`]).
    pub search: SearchOptions,
    /// Tracer sampling; [`TraceOptions::exhaustive`] gives exact counts at
    /// a cost.
    pub trace: TraceOptions,
}

impl Default for AuditOptions {
    fn default() -> Self {
        Self {
            top_k: 8,
            search: SearchOptions::default(),
            trace: TraceOptions::default(),
        }
    }
}

/// One configuration's predicted-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct ConfigAudit {
    /// Position in the model's ranking (0 = the model's pick).
    pub model_rank: usize,
    /// The model's transaction estimate.
    pub predicted: CostBreakdown,
    /// The tracer's measurement.
    pub measured: TraceReport,
}

impl ConfigAudit {
    /// `|predicted − measured| / measured` on launch totals.
    pub fn rel_error(&self) -> f64 {
        let p = self.predicted.total() as f64;
        let m = self.measured.total().max(1) as f64;
        (p - m).abs() / m
    }
}

/// Predicted memory-system effect of the default KIR pass pipeline on
/// the model's pick, from the [`cogent_kir::estimate_traffic`] warp-level
/// traffic model: the baseline lowering vs. the same plan after
/// `vectorize-loads`, `smem-pad`, `double-buffer`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassTraffic {
    /// Passes that actually applied to the pick, in order.
    pub passes: Vec<String>,
    /// Traffic of the baseline (passes-off) lowering.
    pub before: TrafficReport,
    /// Traffic after the default pipeline.
    pub after: TrafficReport,
}

impl PassTraffic {
    /// Did the pipeline strictly reduce global-memory warp requests?
    pub fn improved(&self) -> bool {
        self.after.global_requests < self.before.global_requests
    }

    /// Did the pipeline *increase* global-memory warp requests? (A
    /// correct pipeline never should; the audit surfaces it if one does.)
    pub fn regressed(&self) -> bool {
        self.after.global_requests > self.before.global_requests
    }
}

/// Runs the traffic estimator on the model pick's plan, baseline vs.
/// default pipeline. `None` when either lowering or estimate fails —
/// the audit's fidelity metrics are still valid without it.
fn pass_traffic(plan: &KernelPlan, precision: Precision) -> Option<PassTraffic> {
    let (baseline, _) = lower_with_passes(plan, precision, &PassConfig::None).ok()?;
    let before = estimate_traffic(&baseline).ok()?;
    let (optimized, passes) = lower_with_passes(plan, precision, &PassConfig::Default).ok()?;
    let after = estimate_traffic(&optimized).ok()?;
    Some(PassTraffic {
        passes,
        before,
        after,
    })
}

/// Audit results for one contraction.
#[derive(Debug, Clone)]
pub struct ContractionAudit {
    /// Suite entry name (or the spec itself for ad-hoc audits).
    pub name: String,
    /// The contraction spec, e.g. `"abcd-aebf-dfce"`.
    pub spec: String,
    /// Per-configuration comparisons, in model-rank order.
    pub configs: Vec<ConfigAudit>,
    /// Spearman rank correlation between model and simulated orderings.
    pub spearman: f64,
    /// Relative excess of the model pick's measured cost over the best
    /// measured cost in the audited set.
    pub regret: f64,
    /// Relative errors in parts-per-million.
    pub rel_error_ppm: Histogram,
    /// Wall-clock time of the configuration search.
    pub search_latency_ns: u64,
    /// Wall-clock time of the whole audit (search + tracing).
    pub audit_latency_ns: u64,
    /// Predicted effect of the default KIR pass pipeline on the model's
    /// pick (`None` when the estimator declined the plan).
    pub pass_traffic: Option<PassTraffic>,
}

/// Spearman rank correlation between two paired samples, with
/// average-rank tie handling (Pearson correlation on the rank vectors).
///
/// Degenerate cases: fewer than two pairs correlate perfectly (1.0); two
/// constant sides are also 1.0 (both orderings are equally
/// uninformative); exactly one constant side is 0.0 (the constant side
/// cannot discriminate values the other side distinguishes).
pub fn spearman(xs: &[u128], ys: &[u128]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman needs paired samples");
    let n = xs.len();
    if n < 2 {
        return 1.0;
    }
    let rx = average_ranks(xs);
    let ry = average_ranks(ys);
    let mean = (n as f64 + 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for i in 0..n {
        let dx = rx[i] - mean;
        let dy = ry[i] - mean;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    match (var_x == 0.0, var_y == 0.0) {
        (true, true) => 1.0,
        (true, false) | (false, true) => 0.0,
        (false, false) => cov / (var_x * var_y).sqrt(),
    }
}

/// 1-based ranks of `values`, ties resolved to the average of the ranks
/// they span.
fn average_ranks(values: &[u128]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by_key(|&i| values[i]);
    let mut ranks = vec![0.0; values.len()];
    let mut pos = 0;
    while pos < order.len() {
        let mut end = pos + 1;
        while end < order.len() && values[order[end]] == values[order[pos]] {
            end += 1;
        }
        // Positions pos..end hold equal values; ranks are 1-based.
        let avg = (pos + 1 + end) as f64 / 2.0;
        for &i in &order[pos..end] {
            ranks[i] = avg;
        }
        pos = end;
    }
    ranks
}

/// Audits one contraction: searches, measures the model's top
/// [`AuditOptions::top_k`] configurations with the transaction tracer,
/// and summarizes fidelity.
///
/// # Errors
///
/// [`CogentError::NoConfiguration`] when the search yields no ranked
/// configuration, or a [`CogentError::Plan`] when a ranked configuration
/// fails to lower (both indicate pipeline bugs rather than bad inputs).
pub fn audit_contraction(
    name: &str,
    tc: &Contraction,
    sizes: &SizeMap,
    device: &GpuDevice,
    precision: Precision,
    options: &AuditOptions,
) -> Result<ContractionAudit, CogentError> {
    let _span = cogent_obs::span("audit.contraction");
    let started = Instant::now();
    let mut search_options = options.search.clone();
    search_options.top_k = search_options.top_k.max(options.top_k);
    let search_started = Instant::now();
    let outcome = search(tc, sizes, device, precision, &search_options);
    let search_latency_ns = search_started.elapsed().as_nanos() as u64;
    if outcome.ranked.is_empty() {
        return Err(CogentError::NoConfiguration);
    }
    let mut configs = Vec::new();
    let mut rel_error_ppm = Histogram::new();
    let mut traffic = None;
    for (model_rank, ranked) in outcome.ranked.iter().take(options.top_k).enumerate() {
        let plan = ranked
            .config
            .lower(&outcome.contraction, sizes)
            .map_err(CogentError::Plan)?;
        if model_rank == 0 {
            traffic = pass_traffic(&plan, precision);
        }
        let measured = {
            // Separately spanned so `cogent profile` can split an audit's
            // wall time between the search and the simulator re-measure.
            let _measure = cogent_obs::span("audit.measure");
            trace_transactions(&plan, device, precision, options.trace)
        };
        let audit = ConfigAudit {
            model_rank,
            predicted: ranked.cost,
            measured,
        };
        let ppm = (audit.rel_error() * 1e6).round() as u128;
        rel_error_ppm.record(ppm);
        cogent_obs::histogram("audit.rel_error_ppm", ppm);
        cogent_obs::counter("audit.configs_measured", 1);
        configs.push(audit);
    }
    let predicted: Vec<u128> = configs.iter().map(|c| c.predicted.total()).collect();
    let measured: Vec<u128> = configs.iter().map(|c| c.measured.total()).collect();
    let spearman = spearman(&predicted, &measured);
    let best = measured.iter().copied().min().unwrap_or(1).max(1);
    let regret = (measured[0].saturating_sub(best)) as f64 / best as f64;
    cogent_obs::gauge("audit.spearman", spearman);
    cogent_obs::gauge("audit.regret", regret);
    cogent_obs::histogram("audit.search_latency_ns", u128::from(search_latency_ns));
    Ok(ContractionAudit {
        name: name.to_string(),
        spec: outcome.contraction.to_string(),
        configs,
        spearman,
        regret,
        rel_error_ppm,
        search_latency_ns,
        audit_latency_ns: started.elapsed().as_nanos() as u64,
        pass_traffic: traffic,
    })
}

/// Suite-level aggregation of [`ContractionAudit`]s.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// How many configurations each contraction audited (the requested K).
    pub top_k: usize,
    /// Per-contraction results, in suite order.
    pub contractions: Vec<ContractionAudit>,
    /// Mean Spearman correlation across contractions.
    pub mean_spearman: f64,
    /// Worst (lowest) Spearman correlation.
    pub min_spearman: f64,
    /// Mean regret across contractions.
    pub mean_regret: f64,
    /// Worst (highest) regret.
    pub max_regret: f64,
    /// All relative-error samples, merged, in parts-per-million.
    pub rel_error_ppm: Histogram,
    /// Sum of per-contraction search latencies.
    pub total_search_latency_ns: u64,
    /// Contractions where the default pass pipeline strictly reduced
    /// predicted global-memory requests on the model pick.
    pub traffic_improved: usize,
    /// Contractions where the pipeline *increased* predicted requests
    /// (should always be 0; surfaced so a bad pass is loud).
    pub traffic_regressed: usize,
}

impl AuditReport {
    /// Aggregates per-contraction audits into a suite report.
    ///
    /// # Panics
    ///
    /// Panics when `contractions` is empty — an empty audit has no
    /// meaningful aggregate and would otherwise serialize NaNs.
    pub fn from_contractions(top_k: usize, contractions: Vec<ContractionAudit>) -> Self {
        assert!(
            !contractions.is_empty(),
            "audit report needs ≥ 1 contraction"
        );
        let n = contractions.len() as f64;
        let mean_spearman = contractions.iter().map(|c| c.spearman).sum::<f64>() / n;
        let min_spearman = contractions
            .iter()
            .map(|c| c.spearman)
            .fold(f64::INFINITY, f64::min);
        let mean_regret = contractions.iter().map(|c| c.regret).sum::<f64>() / n;
        let max_regret = contractions
            .iter()
            .map(|c| c.regret)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut rel_error_ppm = Histogram::new();
        for c in &contractions {
            rel_error_ppm.merge(&c.rel_error_ppm);
        }
        let total_search_latency_ns = contractions.iter().map(|c| c.search_latency_ns).sum();
        let traffic_improved = contractions
            .iter()
            .filter(|c| c.pass_traffic.as_ref().is_some_and(PassTraffic::improved))
            .count();
        let traffic_regressed = contractions
            .iter()
            .filter(|c| c.pass_traffic.as_ref().is_some_and(PassTraffic::regressed))
            .count();
        Self {
            top_k,
            contractions,
            mean_spearman,
            min_spearman,
            mean_regret,
            max_regret,
            rel_error_ppm,
            total_search_latency_ns,
            traffic_improved,
            traffic_regressed,
        }
    }

    /// Serializes to the `cogent.audit.v1` schema.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(AUDIT_SCHEMA)),
            ("top_k", Json::from(self.top_k)),
            (
                "contractions",
                Json::Array(self.contractions.iter().map(contraction_json).collect()),
            ),
            (
                "aggregate",
                Json::obj([
                    ("contractions", Json::from(self.contractions.len())),
                    ("mean_spearman", Json::Float(self.mean_spearman)),
                    ("min_spearman", Json::Float(self.min_spearman)),
                    ("mean_regret", Json::Float(self.mean_regret)),
                    ("max_regret", Json::Float(self.max_regret)),
                    ("rel_error_ppm", histogram_json(&self.rel_error_ppm)),
                    (
                        "total_search_latency_ns",
                        Json::from(self.total_search_latency_ns),
                    ),
                    (
                        "pass_traffic",
                        Json::obj([
                            ("improved", Json::from(self.traffic_improved)),
                            ("regressed", Json::from(self.traffic_regressed)),
                        ]),
                    ),
                ]),
            ),
        ])
    }

    /// Renders a fixed-width text table plus an aggregate footer.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>5} {:>9} {:>8} {:>12} {:>12} {:>12} {:>10} {:>8}\n",
            "contraction",
            "k",
            "spearman",
            "regret",
            "relerr p50",
            "relerr p90",
            "relerr p99",
            "search",
            "Δreq"
        ));
        for c in &self.contractions {
            out.push_str(&format!(
                "{:<24} {:>5} {:>9.4} {:>8.4} {:>12} {:>12} {:>12} {:>10} {:>8}\n",
                c.name,
                c.configs.len(),
                c.spearman,
                c.regret,
                fmt_ppm(c.rel_error_ppm.p50()),
                fmt_ppm(c.rel_error_ppm.p90()),
                fmt_ppm(c.rel_error_ppm.p99()),
                cogent_obs::render::fmt_ns(c.search_latency_ns),
                fmt_traffic_delta(c.pass_traffic.as_ref()),
            ));
        }
        out.push_str(&format!(
            "aggregate over {}: spearman mean {:.4} min {:.4} | regret mean {:.4} max {:.4} | rel err p50 {} p90 {} p99 {} | search {} | pass requests reduced {}/{}, regressed {}\n",
            self.contractions.len(),
            self.mean_spearman,
            self.min_spearman,
            self.mean_regret,
            self.max_regret,
            fmt_ppm(self.rel_error_ppm.p50()),
            fmt_ppm(self.rel_error_ppm.p90()),
            fmt_ppm(self.rel_error_ppm.p99()),
            cogent_obs::render::fmt_ns(self.total_search_latency_ns),
            self.traffic_improved,
            self.contractions.len(),
            self.traffic_regressed,
        ));
        out
    }
}

/// Formats a parts-per-million relative error as a percentage.
fn fmt_ppm(ppm: Option<u128>) -> String {
    match ppm {
        Some(v) => format!("{:.3}%", v as f64 / 10_000.0),
        None => "-".to_string(),
    }
}

/// Formats the pass pipeline's predicted request change as a signed
/// percentage (negative = fewer warp requests after the pipeline).
fn fmt_traffic_delta(traffic: Option<&PassTraffic>) -> String {
    match traffic {
        None => "-".to_string(),
        Some(t) => {
            let before = t.before.global_requests.max(1) as f64;
            let delta = t.after.global_requests as f64 - t.before.global_requests as f64;
            format!("{:+.1}%", delta / before * 100.0)
        }
    }
}

fn histogram_json(h: &Histogram) -> Json {
    Json::obj([
        ("count", Json::UInt(h.count())),
        ("mean", Json::Float(h.mean().unwrap_or(0.0))),
        ("min", Json::UInt(h.min().unwrap_or(0))),
        ("max", Json::UInt(h.max().unwrap_or(0))),
        ("p50", Json::UInt(h.p50().unwrap_or(0))),
        ("p90", Json::UInt(h.p90().unwrap_or(0))),
        ("p99", Json::UInt(h.p99().unwrap_or(0))),
    ])
}

fn pass_traffic_json(traffic: Option<&PassTraffic>) -> Json {
    match traffic {
        None => Json::Null,
        Some(t) => Json::obj([
            (
                "passes",
                Json::Array(t.passes.iter().map(|p| Json::Str(p.clone())).collect()),
            ),
            ("requests_before", Json::from(t.before.global_requests)),
            ("requests_after", Json::from(t.after.global_requests)),
            ("replays_before", Json::from(t.before.smem_replays)),
            ("replays_after", Json::from(t.after.smem_replays)),
            ("barriers_before", Json::from(t.before.barriers)),
            ("barriers_after", Json::from(t.after.barriers)),
        ]),
    }
}

fn contraction_json(c: &ContractionAudit) -> Json {
    Json::obj([
        ("name", Json::Str(c.name.clone())),
        ("spec", Json::Str(c.spec.clone())),
        ("spearman", Json::Float(c.spearman)),
        ("regret", Json::Float(c.regret)),
        ("rel_error_ppm", histogram_json(&c.rel_error_ppm)),
        ("search_latency_ns", Json::from(c.search_latency_ns)),
        ("audit_latency_ns", Json::from(c.audit_latency_ns)),
        ("pass_traffic", pass_traffic_json(c.pass_traffic.as_ref())),
        (
            "configs",
            Json::Array(
                c.configs
                    .iter()
                    .map(|cfg| {
                        Json::obj([
                            ("model_rank", Json::from(cfg.model_rank)),
                            ("predicted", Json::UInt(cfg.predicted.total())),
                            ("measured", Json::UInt(cfg.measured.total())),
                            ("rel_error", Json::Float(cfg.rel_error())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_perfect_and_reversed() {
        assert_eq!(spearman(&[1, 2, 3, 4], &[10, 20, 30, 40]), 1.0);
        assert_eq!(spearman(&[1, 2, 3, 4], &[40, 30, 20, 10]), -1.0);
    }

    #[test]
    fn spearman_handles_ties_and_degenerates() {
        // Ties on one side reduce (but don't destroy) the correlation.
        let r = spearman(&[1, 1, 2, 3], &[5, 6, 7, 8]);
        assert!(r > 0.9 && r < 1.0, "{r}");
        assert_eq!(spearman(&[7], &[9]), 1.0);
        assert_eq!(spearman(&[], &[]), 1.0);
        assert_eq!(spearman(&[5, 5, 5], &[5, 5, 5]), 1.0);
        assert_eq!(spearman(&[5, 5, 5], &[1, 2, 3]), 0.0);
    }

    #[test]
    fn average_ranks_split_ties() {
        assert_eq!(average_ranks(&[10, 20, 30]), vec![1.0, 2.0, 3.0]);
        assert_eq!(average_ranks(&[20, 10, 10]), vec![3.0, 1.5, 1.5]);
    }

    #[test]
    fn audits_a_small_contraction() {
        let tc: Contraction = "ab-ac-cb".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 32);
        let options = AuditOptions {
            top_k: 4,
            ..AuditOptions::default()
        };
        let audit = audit_contraction(
            "matmul-32",
            &tc,
            &sizes,
            &GpuDevice::v100(),
            Precision::F64,
            &options,
        )
        .unwrap();
        assert_eq!(audit.name, "matmul-32");
        assert!(!audit.configs.is_empty() && audit.configs.len() <= 4);
        assert_eq!(audit.rel_error_ppm.count(), audit.configs.len() as u128);
        assert!((-1.0..=1.0).contains(&audit.spearman));
        assert!(audit.regret >= 0.0);
        // The model pick's measurement backs the regret arithmetic.
        let measured: Vec<u128> = audit.configs.iter().map(|c| c.measured.total()).collect();
        let best = *measured.iter().min().unwrap();
        let expect = (measured[0] - best) as f64 / best as f64;
        assert!((audit.regret - expect).abs() < 1e-12);
        // The traffic estimator accepted the pick and the default
        // pipeline never made it worse.
        let traffic = audit.pass_traffic.as_ref().unwrap();
        assert!(traffic.after.global_requests <= traffic.before.global_requests);
        assert!(traffic.after.smem_replays <= traffic.before.smem_replays);
        assert!(!traffic.regressed());
    }

    #[test]
    fn audit_is_deterministic() {
        let tc: Contraction = "abc-ad-bdc".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 16);
        let options = AuditOptions {
            top_k: 3,
            ..AuditOptions::default()
        };
        let run = || {
            audit_contraction(
                "t",
                &tc,
                &sizes,
                &GpuDevice::v100(),
                Precision::F32,
                &options,
            )
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.spearman, b.spearman);
        assert_eq!(a.regret, b.regret);
        assert_eq!(a.rel_error_ppm, b.rel_error_ppm);
    }

    #[test]
    fn report_aggregates_and_serializes() {
        let tc: Contraction = "ab-ac-cb".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 24);
        let options = AuditOptions {
            top_k: 3,
            ..AuditOptions::default()
        };
        let one = audit_contraction(
            "m24",
            &tc,
            &sizes,
            &GpuDevice::v100(),
            Precision::F64,
            &options,
        )
        .unwrap();
        let report = AuditReport::from_contractions(3, vec![one.clone(), one]);
        assert_eq!(report.contractions.len(), 2);
        assert_eq!(report.mean_spearman, report.min_spearman);
        assert_eq!(
            report.rel_error_ppm.count(),
            2 * report.contractions[0].rel_error_ppm.count()
        );
        let json = report.to_json();
        assert_eq!(json.get("schema").unwrap().as_str(), Some(AUDIT_SCHEMA));
        let agg = json.get("aggregate").unwrap();
        assert_eq!(agg.get("contractions").unwrap().as_u128(), Some(2));
        assert!(agg.get("mean_spearman").unwrap().as_f64().is_some());
        assert!(agg.get("rel_error_ppm").unwrap().get("p99").is_some());
        assert!(agg.get("pass_traffic").unwrap().get("regressed").is_some());
        let entry = match json.get("contractions").unwrap() {
            Json::Array(entries) => entries[0].clone(),
            other => panic!("contractions should be an array, got {other:?}"),
        };
        assert!(entry
            .get("pass_traffic")
            .unwrap()
            .get("requests_before")
            .is_some());
        // The document round-trips through the parser.
        assert!(Json::parse(&json.to_string()).is_ok());
        let text = report.render_text();
        assert!(text.contains("m24"));
        assert!(text.contains("aggregate over 2"));
    }
}
