//! cogent-guard: plan validation, numeric divergence checking, and the
//! structured error taxonomy behind the graceful-degradation ladder.
//!
//! COGENT's pruner (§IV of the paper) guarantees by construction that
//! every surviving configuration respects the device's shared-memory,
//! register, and thread-count limits. This module is the *trust but
//! verify* counterpart: [`validate_plan`] re-checks every invariant the
//! pruner assumes directly on the lowered [`KernelPlan`], so a bug
//! anywhere upstream (enumeration, pruning, lowering, or a caller
//! hand-building plans) is caught before the plan reaches simulation or
//! code emission. [`divergence_check`] closes the remaining gap — a plan
//! can be resource-legal yet compute the wrong answer — by executing the
//! plan functionally on small random inputs and comparing against the
//! reference contraction.
//!
//! On top of the two checks sits the degradation ladder used by
//! `Cogent::generate`: walk the ranked configurations until one passes,
//! and when none does, fall back to [`naive_plan`] — one thread per
//! output element, tile size 1 everywhere except the output's fastest
//! varying index — which is safe for any contraction the device can
//! address. Every decision is recorded in [`Provenance`] and mirrored
//! into `guard.*` observability counters.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::time::Duration;

use cogent_gpu_model::{GpuDevice, Precision};
use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim, PlanError, StoreMode};
use cogent_gpu_sim::{try_execute_plan, ExecError};
use cogent_ir::{Contraction, ContractionAnalysis, IndexClass, IndexName, SizeMap};
use cogent_tensor::reference::{contract_reference, random_inputs};

use crate::config::KernelConfig;

/// CUDA's grid launch limit along `x`: \(2^{31} - 1\) blocks. Plans are
/// launched with a 1-D grid (the linear block id is decomposed in the
/// kernel), so the total block count must stay below this.
pub const MAX_GRID_BLOCKS: u128 = (1 << 31) - 1;

/// One invariant a kernel plan violates.
///
/// [`validate_plan`] returns *all* violations it finds, not just the
/// first, so diagnostics (and the `guard.violation.*` counters) show the
/// complete failure picture for a rejected candidate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanViolation {
    /// A contraction index has no binding.
    UnboundIndex {
        /// The index the plan fails to bind.
        index: IndexName,
    },
    /// A binding names an index the contraction does not use.
    ForeignIndex {
        /// The unknown index.
        index: IndexName,
    },
    /// An index is bound more than once.
    DuplicateBinding {
        /// The index bound twice.
        index: IndexName,
    },
    /// A tile size is zero or exceeds its index's (padded) extent.
    TileOutOfRange {
        /// The offending index.
        index: IndexName,
        /// The tile size given.
        tile: usize,
        /// The index's extent.
        extent: usize,
    },
    /// A grid-mapped index has a tile size other than one.
    GridTileNotOne {
        /// The offending index.
        index: IndexName,
        /// The tile size given.
        tile: usize,
    },
    /// An index is mapped to a hardware dimension its class forbids.
    BadMapping {
        /// The offending index.
        index: IndexName,
        /// The dimension it was mapped to.
        dim: MapDim,
    },
    /// The staged tiles exceed the device's shared memory per block.
    SharedMemoryExceeded {
        /// Bytes the plan would stage.
        required: u128,
        /// The device limit.
        limit: usize,
    },
    /// The estimated register footprint exceeds the per-thread limit.
    RegistersExceeded {
        /// Registers the plan would use per thread.
        required: u128,
        /// The device limit.
        limit: usize,
    },
    /// The block shape exceeds the device's threads-per-block limit.
    ThreadsExceeded {
        /// Threads the plan would launch per block.
        required: u128,
        /// The device limit.
        limit: usize,
    },
    /// The grid exceeds the CUDA launch limit.
    GridExceeded {
        /// Blocks the plan would launch.
        blocks: u128,
        /// The launch limit ([`MAX_GRID_BLOCKS`]).
        limit: u128,
    },
    /// The plan's store mode differs from the requested one.
    StoreModeMismatch {
        /// The mode the caller asked for.
        expected: StoreMode,
        /// The mode the plan carries.
        actual: StoreMode,
    },
    /// Functional execution of the plan diverged from the reference
    /// contraction.
    NumericDivergence {
        /// Largest absolute element difference observed.
        max_abs_diff: f64,
    },
    /// Functional execution failed outright.
    ExecutionFailed {
        /// The executor's message.
        detail: String,
    },
}

impl PlanViolation {
    /// The observability counter bumped when this violation is recorded.
    pub fn counter_key(&self) -> &'static str {
        match self {
            PlanViolation::UnboundIndex { .. } => "guard.violation.unbound_index",
            PlanViolation::ForeignIndex { .. } => "guard.violation.foreign_index",
            PlanViolation::DuplicateBinding { .. } => "guard.violation.duplicate_binding",
            PlanViolation::TileOutOfRange { .. } => "guard.violation.tile_out_of_range",
            PlanViolation::GridTileNotOne { .. } => "guard.violation.grid_tile_not_one",
            PlanViolation::BadMapping { .. } => "guard.violation.bad_mapping",
            PlanViolation::SharedMemoryExceeded { .. } => "guard.violation.shared_memory",
            PlanViolation::RegistersExceeded { .. } => "guard.violation.registers",
            PlanViolation::ThreadsExceeded { .. } => "guard.violation.threads",
            PlanViolation::GridExceeded { .. } => "guard.violation.grid",
            PlanViolation::StoreModeMismatch { .. } => "guard.violation.store_mode",
            PlanViolation::NumericDivergence { .. } => "guard.violation.numeric_divergence",
            PlanViolation::ExecutionFailed { .. } => "guard.violation.execution_failed",
        }
    }
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanViolation::UnboundIndex { index } => {
                write!(f, "contraction index {index} has no binding")
            }
            PlanViolation::ForeignIndex { index } => {
                write!(f, "binding {index} is not an index of the contraction")
            }
            PlanViolation::DuplicateBinding { index } => {
                write!(f, "index {index} is bound more than once")
            }
            PlanViolation::TileOutOfRange {
                index,
                tile,
                extent,
            } => write!(f, "tile {tile} for index {index} is outside 1..={extent}"),
            PlanViolation::GridTileNotOne { index, tile } => {
                write!(f, "grid-mapped index {index} has tile {tile}, want 1")
            }
            PlanViolation::BadMapping { index, dim } => {
                write!(f, "index {index} cannot map to {dim}")
            }
            PlanViolation::SharedMemoryExceeded { required, limit } => write!(
                f,
                "plan stages {required} B of shared memory, device allows {limit} B per block"
            ),
            PlanViolation::RegistersExceeded { required, limit } => write!(
                f,
                "plan needs ~{required} registers per thread, device allows {limit}"
            ),
            PlanViolation::ThreadsExceeded { required, limit } => write!(
                f,
                "plan launches {required} threads per block, device allows {limit}"
            ),
            PlanViolation::GridExceeded { blocks, limit } => {
                write!(f, "plan launches {blocks} blocks, launch limit is {limit}")
            }
            PlanViolation::StoreModeMismatch { expected, actual } => write!(
                f,
                "plan stores with {actual:?}, caller requested {expected:?}"
            ),
            PlanViolation::NumericDivergence { max_abs_diff } => write!(
                f,
                "functional execution diverged from the reference by {max_abs_diff:e}"
            ),
            PlanViolation::ExecutionFailed { detail } => {
                write!(f, "functional execution failed: {detail}")
            }
        }
    }
}

/// Re-checks every device and structural invariant the pruner assumes,
/// directly on a lowered plan. Returns all violations found.
///
/// The checks never panic and never overflow, whatever the plan's tile
/// and extent values: products are computed in `u128` with saturation, a
/// tile of zero is treated as one for the derived-quantity checks (it is
/// already reported as [`PlanViolation::TileOutOfRange`]), and indices
/// missing a binding are skipped in resource sums (already reported as
/// [`PlanViolation::UnboundIndex`]).
///
/// # Errors
///
/// The complete list of violations, when any invariant fails.
///
/// # Examples
///
/// ```
/// use cogent_core::guard::validate_plan;
/// use cogent_gpu_model::{GpuDevice, Precision};
/// use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
/// use cogent_ir::Contraction;
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let plan = KernelPlan::new(
///     &tc,
///     vec![
///         IndexBinding::new("i", 64, 16, MapDim::ThreadX),
///         IndexBinding::new("j", 64, 16, MapDim::ThreadY),
///         IndexBinding::new("k", 64, 8, MapDim::SerialK),
///     ],
/// )?;
/// assert!(validate_plan(&plan, &GpuDevice::v100(), Precision::F64).is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn validate_plan(
    plan: &KernelPlan,
    device: &GpuDevice,
    precision: Precision,
) -> Result<(), Vec<PlanViolation>> {
    let mut violations = Vec::new();
    let tc = plan.contraction();
    let analysis = ContractionAnalysis::new(tc);

    // Coverage: every contraction index bound exactly once, no strays.
    let mut bound_count: BTreeMap<&str, usize> = BTreeMap::new();
    for b in plan.bindings() {
        *bound_count.entry(b.name.as_str()).or_insert(0) += 1;
    }
    for idx in tc.all_indices() {
        match bound_count.get(idx.as_str()) {
            None => violations.push(PlanViolation::UnboundIndex { index: idx.clone() }),
            Some(n) if *n > 1 => {
                violations.push(PlanViolation::DuplicateBinding { index: idx.clone() })
            }
            _ => {}
        }
    }

    // Per-binding: classification, tile range, mapping legality.
    for b in plan.bindings() {
        let class = analysis.classify(&b.name);
        if class.is_none() {
            violations.push(PlanViolation::ForeignIndex {
                index: b.name.clone(),
            });
        }
        if b.tile == 0 || b.tile > b.extent {
            violations.push(PlanViolation::TileOutOfRange {
                index: b.name.clone(),
                tile: b.tile,
                extent: b.extent,
            });
        }
        let legal = match (b.dim, class) {
            (_, None) => true, // already reported as ForeignIndex
            (MapDim::ThreadX | MapDim::RegX, Some(c)) => c == IndexClass::ExternalA,
            (MapDim::ThreadY | MapDim::RegY, Some(c)) => c == IndexClass::ExternalB,
            (MapDim::SerialK, Some(c)) => c == IndexClass::Internal,
            (MapDim::Grid, Some(c)) => c != IndexClass::Internal,
        };
        if !legal {
            violations.push(PlanViolation::BadMapping {
                index: b.name.clone(),
                dim: b.dim,
            });
        }
        if b.dim == MapDim::Grid && b.tile != 1 {
            violations.push(PlanViolation::GridTileNotOne {
                index: b.name.clone(),
                tile: b.tile,
            });
        }
    }

    let wide_product = |tiles: &mut dyn Iterator<Item = usize>| {
        tiles.fold(1u128, |acc, t| acc.saturating_mul(t.max(1) as u128))
    };

    // Threads per block.
    let threads = wide_product(
        &mut plan
            .group_bindings(MapDim::ThreadX)
            .chain(plan.group_bindings(MapDim::ThreadY))
            .map(|b| b.tile),
    );
    if threads > device.max_threads_per_block as u128 {
        violations.push(PlanViolation::ThreadsExceeded {
            required: threads,
            limit: device.max_threads_per_block,
        });
    }

    // Shared memory: staged A and B tiles. Computed here rather than via
    // `KernelPlan::smem_bytes` so unbound indices are skipped instead of
    // panicking and huge tiles saturate instead of overflowing.
    let staged = |indices: &[IndexName]| {
        wide_product(&mut indices.iter().filter_map(|i| {
            plan.bindings()
                .iter()
                .find(|b| b.name == *i)
                .map(|b| b.tile)
        }))
    };
    let smem = (staged(tc.a().indices()).saturating_add(staged(tc.b().indices())))
        .saturating_mul(precision.bytes() as u128);
    if smem > device.smem_per_block_bytes as u128 {
        violations.push(PlanViolation::SharedMemoryExceeded {
            required: smem,
            limit: device.smem_per_block_bytes,
        });
    }

    // Registers per thread (same model as `KernelPlan::registers_per_thread`).
    let rx = wide_product(&mut plan.group_bindings(MapDim::RegX).map(|b| b.tile));
    let ry = wide_product(&mut plan.group_bindings(MapDim::RegY).map(|b| b.tile));
    let words = precision.bytes().div_ceil(4) as u128;
    let registers = rx
        .saturating_mul(ry)
        .saturating_add(rx)
        .saturating_add(ry)
        .saturating_mul(words)
        .saturating_add(24);
    if registers > device.max_registers_per_thread as u128 {
        violations.push(PlanViolation::RegistersExceeded {
            required: registers,
            limit: device.max_registers_per_thread,
        });
    }

    // Grid launch limit.
    let blocks = plan.external_bindings_c_order().fold(1u128, |acc, b| {
        acc.saturating_mul((b.extent.div_ceil(b.tile.max(1))).max(1) as u128)
    });
    if blocks > MAX_GRID_BLOCKS {
        violations.push(PlanViolation::GridExceeded {
            blocks,
            limit: MAX_GRID_BLOCKS,
        });
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// [`validate_plan`] plus the store-mode consistency check applied to
/// plans about to be handed to the user.
///
/// # Errors
///
/// The complete list of violations, when any invariant fails.
pub fn validate_generated(
    plan: &KernelPlan,
    device: &GpuDevice,
    precision: Precision,
    expected: StoreMode,
) -> Result<(), Vec<PlanViolation>> {
    let mut violations = match validate_plan(plan, device, precision) {
        Ok(()) => Vec::new(),
        Err(v) => v,
    };
    if plan.store_mode() != expected {
        violations.push(PlanViolation::StoreModeMismatch {
            expected,
            actual: plan.store_mode(),
        });
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Bumps one `guard.violation.*` counter per violation (no-op when
/// tracing is disabled).
pub fn record_violations(violations: &[PlanViolation]) {
    for v in violations {
        cogent_obs::counter(v.counter_key(), 1);
    }
}

/// Executes `plan` functionally on small random inputs and compares
/// against the reference contraction, in two layers:
///
/// 1. the fast plan-level executor at the plan's own extents, and
/// 2. the kernel-IR interpreter at tile-clamped extents (each extent cut
///    to `tile + 1`), which runs the *lowered program the emitters print*
///    over deliberately ragged tiles — cheap, but it exercises every
///    partial-tile guard in the emitted artifact.
///
/// # Errors
///
/// [`PlanViolation::ExecutionFailed`] when the executor or the
/// interpreter rejects the operands, [`PlanViolation::NumericDivergence`]
/// when the largest absolute element difference exceeds `tolerance`.
pub fn divergence_check(plan: &KernelPlan, seed: u64, tolerance: f64) -> Result<(), PlanViolation> {
    let sizes = SizeMap::from_pairs(plan.bindings().iter().map(|b| (b.name.as_str(), b.extent)));
    let (a, b) = random_inputs::<f64>(plan.contraction(), &sizes, seed);
    let got = try_execute_plan(plan, &a, &b).map_err(|e| PlanViolation::ExecutionFailed {
        detail: e.to_string(),
    })?;
    let want = contract_reference(plan.contraction(), &sizes, &a, &b);
    let max_abs_diff = got.max_abs_diff(&want);
    if max_abs_diff > tolerance {
        return Err(PlanViolation::NumericDivergence { max_abs_diff });
    }

    let clamped: Vec<IndexBinding> = plan
        .bindings()
        .iter()
        .map(|b| IndexBinding::new(b.name.clone(), b.extent.min(b.tile + 1), b.tile, b.dim))
        .collect();
    let clamped = KernelPlan::new(plan.contraction(), clamped)
        .map(|p| p.with_store_mode(plan.store_mode()))
        .map_err(|e| PlanViolation::ExecutionFailed {
            detail: format!("tile-clamped plan construction: {e}"),
        })?;
    let sizes = SizeMap::from_pairs(
        clamped
            .bindings()
            .iter()
            .map(|b| (b.name.as_str(), b.extent)),
    );
    let (a, b) = random_inputs::<f64>(clamped.contraction(), &sizes, seed.wrapping_add(1));
    let got = cogent_kir::interpret_plan(&clamped, &a, &b).map_err(|e| {
        PlanViolation::ExecutionFailed {
            detail: format!("kernel IR interpreter: {e}"),
        }
    })?;
    let want = contract_reference(clamped.contraction(), &sizes, &a, &b);
    let max_abs_diff = got.max_abs_diff(&want);
    if max_abs_diff > tolerance {
        Err(PlanViolation::NumericDivergence { max_abs_diff })
    } else {
        Ok(())
    }
}

/// The guaranteed-safe fallback plan: the output's fastest varying index
/// gets a thread dimension of at most one warp, every other external and
/// batch index is grid-mapped, internals are walked one element per step.
/// No register tiles, at most 32·`TBk` staged elements — within limits on
/// any real device.
///
/// Mirrors the `NaiveDirect` baseline's plan so the fallback's behavior
/// matches the performance floor reported by the baseline suite.
///
/// # Errors
///
/// [`CogentError::IncompleteSizes`] when `sizes` misses an index.
pub fn naive_plan(tc: &Contraction, sizes: &SizeMap) -> Result<KernelPlan, CogentError> {
    let tc = tc.normalized();
    let missing: Vec<IndexName> = tc
        .all_indices()
        .filter(|i| sizes.extent(i).is_none())
        .cloned()
        .collect();
    if !missing.is_empty() {
        return Err(CogentError::IncompleteSizes { missing });
    }
    let analysis = ContractionAnalysis::new(&tc);
    let c_fvi = tc.c().fvi().clone();
    let mut bindings = Vec::new();
    for idx in tc.external_indices() {
        let extent = sizes.extent_of(idx);
        if *idx == c_fvi {
            bindings.push(IndexBinding::new(
                idx.clone(),
                extent,
                extent.min(32),
                MapDim::ThreadX,
            ));
        } else {
            bindings.push(IndexBinding::new(idx.clone(), extent, 1, MapDim::Grid));
        }
    }
    for idx in tc.batch_indices() {
        bindings.push(IndexBinding::new(
            idx.clone(),
            sizes.extent_of(idx),
            1,
            MapDim::Grid,
        ));
    }
    for idx in analysis.internals() {
        bindings.push(IndexBinding::new(
            idx.clone(),
            sizes.extent_of(idx),
            1,
            MapDim::SerialK,
        ));
    }
    KernelPlan::new(&tc, bindings).map_err(CogentError::Plan)
}

/// The [`KernelConfig`] describing a plan's mapping (grid-mapped indices
/// are omitted, matching the config convention). Used to report the
/// fallback plan in `GeneratedKernel::config`.
pub fn naive_config(plan: &KernelPlan) -> KernelConfig {
    let mapped = |dim: MapDim| {
        plan.group_bindings(dim)
            .map(|b| (b.name.clone(), b.tile))
            .collect()
    };
    KernelConfig {
        tbx: mapped(MapDim::ThreadX),
        regx: mapped(MapDim::RegX),
        tby: mapped(MapDim::ThreadY),
        regy: mapped(MapDim::RegY),
        tbk: mapped(MapDim::SerialK),
    }
}

/// Where the returned kernel came from.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanSource {
    /// A ranked search candidate (0 = the cost model's first choice).
    Search {
        /// Rank of the candidate in the model's ordering.
        model_rank: usize,
    },
    /// The guaranteed-safe naive fallback: every ranked candidate was
    /// rejected.
    NaiveFallback,
}

/// Why one ranked candidate was passed over.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// Lowering the configuration to a plan failed.
    Lowering(PlanError),
    /// The lowered plan failed [`validate_generated`].
    Invalid(Vec<PlanViolation>),
    /// The plan failed the numeric [`divergence_check`].
    Divergence {
        /// Largest absolute element difference observed.
        max_abs_diff: f64,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Lowering(e) => write!(f, "lowering failed: {e}"),
            RejectReason::Invalid(vs) => {
                write!(f, "validation failed: ")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            RejectReason::Divergence { max_abs_diff } => {
                write!(f, "numeric divergence of {max_abs_diff:e}")
            }
        }
    }
}

/// One candidate the ladder rejected on the way to the returned kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedCandidate {
    /// Rank of the candidate in the cost model's ordering.
    pub model_rank: usize,
    /// Why it was passed over.
    pub reason: RejectReason,
}

/// Degradation report attached to every generated kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Where the returned plan came from.
    pub source: PlanSource,
    /// Candidates rejected before it, in rank order.
    pub rejected: Vec<RejectedCandidate>,
    /// Whether the returned plan passed the numeric divergence check.
    pub numeric_verified: bool,
    /// KIR optimization passes applied to the emitted kernel, in
    /// application order (empty for the baseline emission).
    pub passes: Vec<String>,
}

impl Provenance {
    /// Whether generation degraded: candidates were rejected or the
    /// naive fallback was used.
    pub fn degraded(&self) -> bool {
        !self.rejected.is_empty() || self.source == PlanSource::NaiveFallback
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            PlanSource::Search { model_rank } if self.rejected.is_empty() => {
                write!(f, "search candidate (model rank {model_rank})")
            }
            PlanSource::Search { model_rank } => write!(
                f,
                "degraded: search candidate (model rank {model_rank}) after {} rejected candidate(s)",
                self.rejected.len()
            ),
            PlanSource::NaiveFallback => write!(
                f,
                "degraded: naive fallback plan after {} rejected candidate(s)",
                self.rejected.len()
            ),
        }?;
        if !self.passes.is_empty() {
            write!(f, "; passes: {}", self.passes.join(", "))?;
        }
        Ok(())
    }
}

/// Structured error for the generation pipeline.
///
/// Replaces the former two-variant `GenerateError`: every failure mode is
/// typed, and inner causes are chained through
/// [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CogentError {
    /// The size map misses extents for some contraction indices.
    IncompleteSizes {
        /// The indices without extents, in contraction order.
        missing: Vec<IndexName>,
    },
    /// Enumeration and progressive rule relaxation produced no
    /// configuration.
    NoConfiguration,
    /// Every candidate — including the naive fallback — was rejected.
    NoViablePlan {
        /// The violations that rejected the final fallback.
        violations: Vec<PlanViolation>,
    },
    /// A plan-construction error.
    Plan(PlanError),
    /// A functional-execution error.
    Exec(ExecError),
    /// The enumeration budget was exhausted before any configuration was
    /// produced.
    BudgetExhausted {
        /// The configured cap on enumerated configurations.
        max_configs: usize,
        /// The configured wall-clock budget, if any.
        time_budget: Option<Duration>,
    },
    /// [`KernelLibrary::build`](crate::library::KernelLibrary::build) was
    /// given an empty representative-size slate.
    NoRepresentatives,
    /// A `--passes` list named a pass the KIR pipeline does not know.
    UnknownPass {
        /// The offending pass name.
        name: String,
    },
    /// A KIR optimization pass failed on the lowered program.
    PassFailed {
        /// The pass's own diagnostic.
        detail: String,
    },
}

impl fmt::Display for CogentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CogentError::IncompleteSizes { missing } => {
                write!(f, "size map is missing extents for:")?;
                for idx in missing {
                    write!(f, " {idx}")?;
                }
                Ok(())
            }
            CogentError::NoConfiguration => {
                f.write_str("no kernel configuration found even after relaxing rules")
            }
            CogentError::NoViablePlan { violations } => {
                write!(
                    f,
                    "no viable plan: even the naive fallback was rejected ({} violation(s))",
                    violations.len()
                )
            }
            CogentError::Plan(e) => write!(f, "plan construction failed: {e}"),
            CogentError::Exec(e) => write!(f, "functional execution failed: {e}"),
            CogentError::BudgetExhausted {
                max_configs,
                time_budget,
            } => {
                write!(f, "enumeration budget (max_configs={max_configs}")?;
                if let Some(t) = time_budget {
                    write!(f, ", time_budget={t:?}")?;
                }
                f.write_str(") exhausted before any configuration was produced")
            }
            CogentError::NoRepresentatives => {
                f.write_str("kernel library needs at least one representative size")
            }
            CogentError::UnknownPass { name } => {
                write!(
                    f,
                    "unknown KIR pass {name:?} (expected vectorize-loads, smem-pad or double-buffer)"
                )
            }
            CogentError::PassFailed { detail } => {
                write!(f, "KIR pass pipeline failed: {detail}")
            }
        }
    }
}

impl Error for CogentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CogentError::Plan(e) => Some(e),
            CogentError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for CogentError {
    fn from(e: PlanError) -> Self {
        CogentError::Plan(e)
    }
}

impl From<ExecError> for CogentError {
    fn from(e: ExecError) -> Self {
        CogentError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogent_gpu_sim::{FaultInjector, FaultKind};

    fn fig2_plan() -> KernelPlan {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("a", 16, 8, MapDim::ThreadX),
                IndexBinding::new("b", 16, 4, MapDim::RegX),
                IndexBinding::new("c", 16, 8, MapDim::ThreadY),
                IndexBinding::new("d", 16, 4, MapDim::RegY),
                IndexBinding::new("e", 16, 4, MapDim::SerialK),
                IndexBinding::new("f", 16, 2, MapDim::SerialK),
            ],
        )
        .unwrap()
    }

    #[test]
    fn valid_plan_passes() {
        let plan = fig2_plan();
        assert!(validate_plan(&plan, &GpuDevice::v100(), Precision::F64).is_ok());
        assert!(validate_plan(&plan, &GpuDevice::p100(), Precision::F32).is_ok());
    }

    #[test]
    fn every_static_fault_is_rejected() {
        let plan = fig2_plan();
        let device = GpuDevice::v100();
        for kind in FaultKind::ALL.into_iter().filter(|k| k.is_static()) {
            let corrupted = FaultInjector::new(3).inject_plan(&plan, kind);
            let violations = validate_plan(&corrupted, &device, Precision::F64)
                .expect_err(&format!("{} passed validation", kind.name()));
            assert!(!violations.is_empty());
        }
    }

    #[test]
    fn violations_accumulate() {
        let plan = fig2_plan();
        let mut inj = FaultInjector::new(5);
        let mut corrupted = inj.inject_plan(&plan, FaultKind::OversizedTile);
        corrupted = inj.inject_plan(&corrupted, FaultKind::SmemOverflow);
        let violations = validate_plan(&corrupted, &GpuDevice::v100(), Precision::F64).unwrap_err();
        assert!(violations.len() >= 2, "{violations:?}");
    }

    #[test]
    fn store_mode_mismatch_is_flagged() {
        let plan = fig2_plan();
        let err = validate_generated(
            &plan,
            &GpuDevice::v100(),
            Precision::F64,
            StoreMode::Accumulate,
        )
        .unwrap_err();
        assert!(matches!(
            err.as_slice(),
            [PlanViolation::StoreModeMismatch { .. }]
        ));
    }

    #[test]
    fn grid_limit_is_enforced() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let plan = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("i", 3_000_000, 1, MapDim::ThreadX),
                IndexBinding::new("j", 3_000_000, 1, MapDim::ThreadY),
                IndexBinding::new("k", 4, 1, MapDim::SerialK),
            ],
        )
        .unwrap();
        let violations = validate_plan(&plan, &GpuDevice::v100(), Precision::F64).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, PlanViolation::GridExceeded { .. })));
    }

    #[test]
    fn divergence_check_accepts_correct_plan() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let plan = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("i", 9, 4, MapDim::ThreadX),
                IndexBinding::new("j", 7, 4, MapDim::ThreadY),
                IndexBinding::new("k", 5, 2, MapDim::SerialK),
            ],
        )
        .unwrap();
        assert!(divergence_check(&plan, 11, 1e-10).is_ok());
    }

    #[test]
    fn divergence_check_rejects_everything_at_negative_tolerance() {
        let plan = fig2_plan();
        assert!(matches!(
            divergence_check(&plan, 11, -1.0),
            Err(PlanViolation::NumericDivergence { .. })
        ));
    }

    #[test]
    fn naive_plan_is_always_viable() {
        // Small extents: the divergence check runs the full functional
        // executor, which is O(product of extents) in a debug build.
        for eq in ["ij-ik-kj", "abcd-aebf-dfce", "abc-bda-dc"] {
            let tc: Contraction = eq.parse().unwrap();
            let sizes = SizeMap::uniform(&tc, 6);
            let plan = naive_plan(&tc, &sizes).unwrap();
            assert!(validate_plan(&plan, &GpuDevice::v100(), Precision::F64).is_ok());
            assert!(divergence_check(&plan, 1, 1e-9).is_ok());
        }
    }

    #[test]
    fn naive_plan_reports_missing_sizes() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::from_pairs([("i", 8)]);
        let err = naive_plan(&tc, &sizes).unwrap_err();
        assert!(matches!(err, CogentError::IncompleteSizes { ref missing }
            if missing.len() == 2));
    }

    #[test]
    fn naive_config_round_trips_the_plan() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 20);
        let plan = naive_plan(&tc, &sizes).unwrap();
        let cfg = naive_config(&plan);
        assert_eq!(cfg.threads_per_block(), plan.threads_per_block());
        assert_eq!(cfg.outputs_per_thread(), plan.outputs_per_thread());
    }

    #[test]
    fn error_sources_chain() {
        let plan_err = PlanError::GridTileNotOne { index: "i".into() };
        let err = CogentError::from(plan_err.clone());
        assert_eq!(err.source().unwrap().to_string(), plan_err.to_string());
        assert!(CogentError::NoConfiguration.source().is_none());
    }

    #[test]
    fn provenance_reports_degradation() {
        let clean = Provenance {
            source: PlanSource::Search { model_rank: 0 },
            rejected: Vec::new(),
            numeric_verified: true,
            passes: Vec::new(),
        };
        assert!(!clean.degraded());
        let degraded = Provenance {
            source: PlanSource::NaiveFallback,
            rejected: vec![RejectedCandidate {
                model_rank: 0,
                reason: RejectReason::Divergence { max_abs_diff: 1.0 },
            }],
            numeric_verified: false,
            passes: vec!["smem-pad".into()],
        };
        assert!(degraded.degraded());
        assert!(degraded.to_string().contains("naive fallback"));
        assert!(degraded.to_string().contains("passes: smem-pad"));
    }
}
