//! Interned per-search tables and the arena the hot search loops run on.
//!
//! The public types in [`config`](crate::config), [`constraints`](crate::constraints)
//! and [`cost`](crate::cost) describe configurations with owned
//! `(IndexName, tile)` lists — convenient at the API boundary, but cloning
//! and string-comparing them per candidate dominated the cold search path.
//! This module interns the search's working set once:
//!
//! * [`SearchTables`] — index names mapped to dense ids, with extents and
//!   per-tensor id lists derived a single time instead of per candidate;
//! * [`CompiledMenus`] — the enumeration's structured menus with ids,
//!   tile products and an [`Ord`]-rank per list precomputed, so the
//!   ranking tie-break never materializes a [`KernelConfig`](crate::config::KernelConfig);
//! * [`ConfigArena`] — every candidate as one flat tile row plus five
//!   menu indices, in place of five heap-allocated lists of strings.
//!
//! The fast pruning/costing entry points
//! ([`check_config_fast`](crate::constraints::check_config_fast),
//! [`transaction_cost_fast`](crate::cost::transaction_cost_fast)) consume
//! these and are pinned byte-for-byte against their public counterparts by
//! the parity tests below.

use cogent_ir::{Contraction, IndexName, SizeMap};

use crate::config::MappedIndex;

/// Dense-id view of one normalized contraction under a size map, built
/// once per search.
#[derive(Debug, Clone)]
pub struct SearchTables {
    /// Id → index name, in [`Contraction::all_indices`] order
    /// (externals, then batch, then internals).
    names: Vec<IndexName>,
    /// Id → extent.
    extents: Vec<usize>,
    /// `A`'s indices as ids, in tensor order (fastest varying first).
    pub(crate) a_ids: Vec<u32>,
    /// `B`'s indices as ids, in tensor order.
    pub(crate) b_ids: Vec<u32>,
    /// `C`'s indices as ids, in tensor order.
    pub(crate) c_ids: Vec<u32>,
    /// Output indices (externals then batch), as ids.
    pub(crate) out_ids: Vec<u32>,
    /// Internal indices, as ids.
    pub(crate) int_ids: Vec<u32>,
    /// `A`'s fastest varying index.
    pub(crate) fvi_a: u32,
    /// `B`'s fastest varying index.
    pub(crate) fvi_b: u32,
}

impl SearchTables {
    /// Interns `norm` (which must already be normalized) under `sizes`.
    pub fn new(norm: &Contraction, sizes: &SizeMap) -> Self {
        let names: Vec<IndexName> = norm.all_indices().cloned().collect();
        let extents: Vec<usize> = names.iter().map(|n| sizes.extent_of(n)).collect();
        let id_of = |name: &IndexName| -> u32 {
            // Infallible: every interned list is drawn from the same
            // contraction whose indices populated `names`.
            let pos = names.iter().position(|n| n == name);
            debug_assert!(pos.is_some(), "tensor index belongs to the contraction");
            pos.unwrap_or_default() as u32
        };
        let ids_of = |list: &[IndexName]| -> Vec<u32> { list.iter().map(id_of).collect() };
        Self {
            a_ids: ids_of(norm.a().indices()),
            b_ids: ids_of(norm.b().indices()),
            c_ids: ids_of(norm.c().indices()),
            out_ids: norm.output_indices().map(id_of).collect(),
            int_ids: ids_of(norm.internal_indices()),
            fvi_a: id_of(norm.a().fvi()),
            fvi_b: id_of(norm.b().fvi()),
            names,
            extents,
        }
    }

    /// Number of distinct loop indices (the width of one arena tile row).
    pub fn num_indices(&self) -> usize {
        self.names.len()
    }

    /// The extent of index `id`.
    #[inline]
    pub fn extent(&self, id: u32) -> usize {
        self.extents[id as usize]
    }

    /// The name of index `id`.
    pub fn name(&self, id: u32) -> &IndexName {
        &self.names[id as usize]
    }

    /// The dense id of `name`, when the contraction uses it.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.names
            .iter()
            .position(|n| n.as_str() == name)
            .map(|p| p as u32)
    }
}

/// One enumeration menu entry with everything the hot loops need
/// precomputed: interned `(id, tile)` pairs, the tile product, and the
/// entry's rank under the `Vec<MappedIndex>` [`Ord`] within its menu.
#[derive(Debug, Clone)]
pub(crate) struct CompiledList {
    /// `(index id, tile)` pairs, fastest varying first.
    pub pairs: Vec<(u32, usize)>,
    /// Product of the tiles (the list's "size" in the paper's terms).
    pub product: usize,
    /// Position of this entry in the Ord-sorted order of its menu. Two
    /// configurations drawing from the same menus compare under
    /// [`KernelConfig`](crate::config::KernelConfig)'s derived `Ord` exactly as their rank tuples do.
    pub rank: u32,
}

/// The five structured menus of one enumeration, compiled against a
/// [`SearchTables`]. `regx` menus are per `tbx` entry and `regy` menus per
/// `tby` entry (the register menu depends on which externals the thread
/// list consumed).
#[derive(Debug, Clone)]
pub(crate) struct CompiledMenus {
    pub tbx: Vec<CompiledList>,
    pub regx: Vec<Vec<CompiledList>>,
    pub tby: Vec<CompiledList>,
    pub regy: Vec<Vec<CompiledList>>,
    pub tbk: Vec<CompiledList>,
}

/// A candidate's five list-size products, read straight off the compiled
/// menus instead of re-multiplying tile lists per rule.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConfigDims {
    pub tbx: usize,
    pub regx: usize,
    pub tby: usize,
    pub regy: usize,
    pub tbk: usize,
}

fn compile_menu(lists: &[Vec<MappedIndex>], tables: &SearchTables) -> Vec<CompiledList> {
    let mut out: Vec<CompiledList> = lists
        .iter()
        .map(|list| CompiledList {
            pairs: list
                .iter()
                .map(|(name, tile)| {
                    // Infallible: menus are enumerated from the same
                    // contraction the tables interned.
                    let id = tables.id_of(name.as_str());
                    debug_assert!(id.is_some(), "menu index belongs to the contraction");
                    (id.unwrap_or_default(), *tile)
                })
                .collect(),
            product: list.iter().map(|(_, t)| *t).product(),
            rank: 0,
        })
        .collect();
    let mut order: Vec<usize> = (0..lists.len()).collect();
    order.sort_by(|&a, &b| lists[a].cmp(&lists[b]));
    for (rank, &i) in order.iter().enumerate() {
        out[i].rank = rank as u32;
    }
    out
}

impl CompiledMenus {
    /// Compiles raw (string-keyed) menus against the tables.
    pub fn compile(menus: &crate::enumerate::RawMenus, tables: &SearchTables) -> Self {
        Self {
            tbx: compile_menu(&menus.tbx, tables),
            regx: menus.regx.iter().map(|m| compile_menu(m, tables)).collect(),
            tby: compile_menu(&menus.tby, tables),
            regy: menus.regy.iter().map(|m| compile_menu(m, tables)).collect(),
            tbk: compile_menu(&menus.tbk, tables),
        }
    }

    /// The five menu entries a choice refers to.
    pub fn entries(&self, choice: MenuChoice) -> [&CompiledList; 5] {
        let [x, rx, y, ry, k] = choice;
        [
            &self.tbx[x as usize],
            &self.regx[x as usize][rx as usize],
            &self.tby[y as usize],
            &self.regy[y as usize][ry as usize],
            &self.tbk[k as usize],
        ]
    }

    /// The list-size products of a choice.
    pub fn dims(&self, choice: MenuChoice) -> ConfigDims {
        let [tbx, regx, tby, regy, tbk] = self.entries(choice);
        ConfigDims {
            tbx: tbx.product,
            regx: regx.product,
            tby: tby.product,
            regy: regy.product,
            tbk: tbk.product,
        }
    }

    /// The tuple that orders configurations exactly as [`KernelConfig`](crate::config::KernelConfig)'s
    /// derived lexicographic `Ord` does. Within one enumeration, equal
    /// leading ranks imply the same menu for the next component (the
    /// `regx`/`regy` menus are functions of the chosen `tbx`/`tby`
    /// entries), so comparing rank tuples lexicographically is the same
    /// total order as comparing materialized configurations.
    pub fn rank_key(&self, choice: MenuChoice) -> [u32; 5] {
        self.entries(choice).map(|e| e.rank)
    }
}

/// Indices into the five menus (`regx` relative to the chosen `tbx` entry,
/// `regy` relative to the chosen `tby` entry): a whole candidate in 20
/// bytes.
pub type MenuChoice = [u32; 5];

/// All candidates of one enumeration: per config a flat row of per-index
/// tiles (grid-mapped indices hold 1) plus its [`MenuChoice`].
#[derive(Debug, Clone)]
pub struct ConfigArena {
    num_indices: usize,
    tiles: Vec<usize>,
    choices: Vec<MenuChoice>,
}

impl ConfigArena {
    /// An empty arena whose tile rows are `num_indices` wide.
    pub fn new(num_indices: usize) -> Self {
        Self {
            num_indices,
            tiles: Vec::new(),
            choices: Vec::new(),
        }
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether the arena holds no configurations.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// The tile row of configuration `i`: tile per index id, 1 where the
    /// configuration leaves the index grid-mapped.
    #[inline]
    pub fn tiles(&self, i: usize) -> &[usize] {
        &self.tiles[i * self.num_indices..(i + 1) * self.num_indices]
    }

    /// The menu choice of configuration `i`.
    #[inline]
    pub fn choice(&self, i: usize) -> MenuChoice {
        self.choices[i]
    }

    /// Appends a configuration assembled from five compiled menu entries.
    pub(crate) fn push(&mut self, choice: MenuChoice, entries: [&CompiledList; 5]) {
        let base = self.tiles.len();
        self.tiles.resize(base + self.num_indices, 1);
        for entry in entries {
            for &(id, tile) in &entry.pairs {
                self.tiles[base + id as usize] = tile;
            }
        }
        self.choices.push(choice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_interned, EnumerationBudget, EnumerationOptions};

    fn interned(spec: &str, n: usize) -> (Contraction, SizeMap, crate::enumerate::Enumeration) {
        let tc: Contraction = spec.parse().unwrap();
        let norm = tc.normalized();
        let sizes = SizeMap::uniform(&norm, n);
        let en = enumerate_interned(
            &norm,
            &sizes,
            &EnumerationOptions::default(),
            &EnumerationBudget::unlimited(),
        );
        (norm, sizes, en)
    }

    #[test]
    fn tables_intern_all_indices() {
        let (norm, sizes, en) = interned("abcd-aebf-dfce", 24);
        let t = &en.tables;
        assert_eq!(t.num_indices(), norm.num_indices());
        for idx in norm.all_indices() {
            let id = t.id_of(idx.as_str()).unwrap();
            assert_eq!(t.name(id), idx);
            assert_eq!(t.extent(id), sizes.extent_of(idx));
        }
        assert_eq!(t.name(t.fvi_a).as_str(), norm.a().fvi().as_str());
        assert_eq!(t.name(t.fvi_b).as_str(), norm.b().fvi().as_str());
        assert_eq!(t.a_ids.len(), norm.a().indices().len());
        assert_eq!(t.out_ids.len(), norm.output_indices().count());
        assert_eq!(t.int_ids.len(), norm.internal_indices().len());
    }

    #[test]
    fn arena_rows_match_materialized_tile_of() {
        let (norm, _sizes, en) = interned("abcd-aebf-dfce", 24);
        assert!(!en.arena.is_empty());
        for i in 0..en.arena.len() {
            let cfg = en.menus.materialize(en.arena.choice(i));
            let tiles = en.arena.tiles(i);
            for idx in norm.all_indices() {
                let id = en.tables.id_of(idx.as_str()).unwrap();
                assert_eq!(tiles[id as usize], cfg.tile_of(idx), "{cfg} at {idx}");
            }
        }
    }

    #[test]
    fn dims_match_materialized_products() {
        let (_norm, _sizes, en) = interned("abcdef-gdab-efgc", 12);
        for i in 0..en.arena.len() {
            let cfg = en.menus.materialize(en.arena.choice(i));
            let dims = en.compiled.dims(en.arena.choice(i));
            assert_eq!(dims.tbx, cfg.tbx_size());
            assert_eq!(dims.regx, cfg.regx_size());
            assert_eq!(dims.tby, cfg.tby_size());
            assert_eq!(dims.regy, cfg.regy_size());
            assert_eq!(dims.tbk, cfg.tbk_size());
        }
    }

    #[test]
    fn rank_key_orders_exactly_like_kernel_config_ord() {
        for (spec, n) in [("abcd-aebf-dfce", 24), ("ij-ik-kj", 64), ("abc-bda-dc", 16)] {
            let (_norm, _sizes, en) = interned(spec, n);
            let mut by_key: Vec<usize> = (0..en.arena.len()).collect();
            by_key.sort_by_key(|&i| en.compiled.rank_key(en.arena.choice(i)));
            let mut by_config: Vec<usize> = (0..en.arena.len()).collect();
            by_config.sort_by(|&a, &b| {
                en.menus
                    .materialize(en.arena.choice(a))
                    .cmp(&en.menus.materialize(en.arena.choice(b)))
            });
            assert_eq!(by_key, by_config, "{spec}");
        }
    }
}
