//! Kernel configurations — the code generator's parameters (Table II of
//! the paper).

use std::fmt;

use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim, PlanError};
use cogent_ir::{Contraction, ContractionAnalysis, IndexClass, IndexName, SizeMap};

/// One index mapped onto a hardware dimension with a tile size.
pub type MappedIndex = (IndexName, usize);

/// A kernel configuration: the paper's `l_TBx`, `l_TBy`, `l_TBk`,
/// `l_Tiles` parameters plus the register-tile mappings.
///
/// Within each list, earlier indices are faster varying. External indices
/// of the contraction that appear in no list are grid-mapped with tile
/// size 1 (the paper: "technically mapped on TBx or TBy with tile-size of
/// 1").
///
/// The derived [`Ord`] (lexicographic over the five lists) is a total
/// order used by the search as a deterministic tie-break between
/// equal-cost configurations: the winner never depends on enumeration or
/// thread-interleaving order.
///
/// # Examples
///
/// ```
/// use cogent_core::KernelConfig;
/// use cogent_ir::{Contraction, SizeMap};
///
/// let tc: Contraction = "abcd-aebf-dfce".parse()?;
/// let cfg = KernelConfig {
///     tbx: vec![("a".into(), 8)],
///     regx: vec![("b".into(), 4)],
///     tby: vec![("c".into(), 8)],
///     regy: vec![("d".into(), 4)],
///     tbk: vec![("e".into(), 4), ("f".into(), 2)],
/// };
/// assert_eq!(cfg.threads_per_block(), 64);
/// assert_eq!(cfg.outputs_per_thread(), 16);
/// let sizes = SizeMap::uniform(&tc, 16);
/// let plan = cfg.lower(&tc, &sizes)?;
/// assert_eq!(plan.num_blocks(), 2 * 4 * 2 * 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(
    Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct KernelConfig {
    /// External indices mapped on thread-block X (`l_TBx`), fastest first.
    pub tbx: Vec<MappedIndex>,
    /// External indices mapped on the register-tile X dimension.
    pub regx: Vec<MappedIndex>,
    /// External indices mapped on thread-block Y (`l_TBy`).
    pub tby: Vec<MappedIndex>,
    /// External indices mapped on the register-tile Y dimension.
    pub regy: Vec<MappedIndex>,
    /// Internal indices with their per-step tile sizes (`l_TBk`).
    pub tbk: Vec<MappedIndex>,
}

impl KernelConfig {
    fn size_of(list: &[MappedIndex]) -> usize {
        list.iter().map(|(_, t)| *t).product()
    }

    /// `TBx`: threads along the block's X dimension.
    pub fn tbx_size(&self) -> usize {
        Self::size_of(&self.tbx)
    }

    /// `TBy`: threads along the block's Y dimension.
    pub fn tby_size(&self) -> usize {
        Self::size_of(&self.tby)
    }

    /// `REGx`: register-tile width.
    pub fn regx_size(&self) -> usize {
        Self::size_of(&self.regx)
    }

    /// `REGy`: register-tile height.
    pub fn regy_size(&self) -> usize {
        Self::size_of(&self.regy)
    }

    /// `TBk`: elements of the contracted dimension staged per step.
    pub fn tbk_size(&self) -> usize {
        Self::size_of(&self.tbk)
    }

    /// Threads per block (`TBx * TBy`).
    pub fn threads_per_block(&self) -> usize {
        self.tbx_size() * self.tby_size()
    }

    /// Output elements per thread (`REGx * REGy`).
    pub fn outputs_per_thread(&self) -> usize {
        self.regx_size() * self.regy_size()
    }

    /// Shared memory elements per block:
    /// `(TBx·REGx + TBy·REGy) · TBk` (§IV-A1).
    pub fn smem_elements(&self) -> usize {
        (self.tbx_size() * self.regx_size() + self.tby_size() * self.regy_size()) * self.tbk_size()
    }

    /// The tile size this configuration assigns to `index`: its mapped
    /// tile, or 1 when the index is grid-mapped (absent from all lists).
    pub fn tile_of(&self, index: impl AsRef<str>) -> usize {
        let index = index.as_ref();
        self.lists()
            .into_iter()
            .flatten()
            .find(|(n, _)| n.as_str() == index)
            .map_or(1, |(_, t)| *t)
    }

    /// Whether `index` appears in any mapping list.
    pub fn maps(&self, index: impl AsRef<str>) -> bool {
        let index = index.as_ref();
        self.lists()
            .into_iter()
            .flatten()
            .any(|(n, _)| n.as_str() == index)
    }

    fn lists(&self) -> [&[MappedIndex]; 5] {
        [&self.tbx, &self.regx, &self.tby, &self.regy, &self.tbk]
    }

    /// Lowers this configuration to an executable kernel plan under the
    /// given contraction and representative sizes.
    ///
    /// Externals missing from the mapping lists become grid-mapped with
    /// tile 1. Tile sizes are clipped to the index extents.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when the configuration is inconsistent with
    /// the contraction (e.g. maps a `B`-external on the X group) or when
    /// `sizes` has no extent for one of the contraction's indices.
    pub fn lower(&self, tc: &Contraction, sizes: &SizeMap) -> Result<KernelPlan, PlanError> {
        let extent_or = |name: &IndexName| {
            sizes
                .extent(name)
                .ok_or_else(|| PlanError::BindingMismatch {
                    detail: format!("size map has no extent for index {name}"),
                })
        };
        let mut bindings = Vec::with_capacity(tc.num_indices());
        for (list, dim) in [
            (&self.tbx, MapDim::ThreadX),
            (&self.regx, MapDim::RegX),
            (&self.tby, MapDim::ThreadY),
            (&self.regy, MapDim::RegY),
            (&self.tbk, MapDim::SerialK),
        ] {
            for (name, tile) in list.iter() {
                let extent = extent_or(name)?;
                bindings.push(IndexBinding::new(
                    name.clone(),
                    extent,
                    (*tile).min(extent).max(1),
                    dim,
                ));
            }
        }
        for idx in tc.output_indices() {
            if !self.maps(idx) {
                bindings.push(IndexBinding::new(
                    idx.clone(),
                    extent_or(idx)?,
                    1,
                    MapDim::Grid,
                ));
            }
        }
        // Internal indices not listed in tbk default to tile 1 on SerialK.
        for idx in tc.internal_indices() {
            if !self.maps(idx) {
                bindings.push(IndexBinding::new(
                    idx.clone(),
                    extent_or(idx)?,
                    1,
                    MapDim::SerialK,
                ));
            }
        }
        KernelPlan::new(tc, bindings)
    }

    /// A canonical key for deduplication: the sorted multiset of
    /// `(index, dimension, tile)` assignments.
    pub fn canonical_key(&self) -> Vec<(String, &'static str, usize)> {
        let mut key: Vec<(String, &'static str, usize)> = Vec::new();
        let tag = |list: &[MappedIndex], name: &'static str, key: &mut Vec<_>| {
            for (pos, (idx, tile)) in list.iter().enumerate() {
                // Position matters for thread dims (coalescing) but not for
                // serial/reg products; keep it for exactness.
                key.push((format!("{idx}#{pos}"), name, *tile));
            }
        };
        tag(&self.tbx, "tbx", &mut key);
        tag(&self.regx, "regx", &mut key);
        tag(&self.tby, "tby", &mut key);
        tag(&self.regy, "regy", &mut key);
        tag(&self.tbk, "tbk", &mut key);
        key.sort();
        key
    }

    /// Validates that the lists are disjoint and consistent with the
    /// contraction's index classes (X ⊆ A-externals, Y ⊆ B-externals,
    /// K = internals).
    pub fn is_consistent_with(&self, tc: &Contraction) -> bool {
        let analysis = ContractionAnalysis::new(tc);
        let mut seen = std::collections::BTreeSet::new();
        for (list, want) in [
            (&self.tbx, IndexClass::ExternalA),
            (&self.regx, IndexClass::ExternalA),
            (&self.tby, IndexClass::ExternalB),
            (&self.regy, IndexClass::ExternalB),
            (&self.tbk, IndexClass::Internal),
        ] {
            for (idx, tile) in list {
                if *tile == 0 || analysis.classify(idx) != Some(want) || !seen.insert(idx.clone()) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for KernelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let part = |list: &[MappedIndex]| -> String {
            list.iter()
                .map(|(n, t)| format!("{n}:{t}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        write!(
            f,
            "TBx[{}] REGx[{}] TBy[{}] REGy[{}] TBk[{}]",
            part(&self.tbx),
            part(&self.regx),
            part(&self.tby),
            part(&self.regy),
            part(&self.tbk)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq1() -> Contraction {
        "abcd-aebf-dfce".parse().unwrap()
    }

    fn fig2_config() -> KernelConfig {
        KernelConfig {
            tbx: vec![("a".into(), 2)],
            regx: vec![("b".into(), 2)],
            tby: vec![("c".into(), 2)],
            regy: vec![("d".into(), 2)],
            tbk: vec![("e".into(), 4), ("f".into(), 2)],
        }
    }

    #[test]
    fn sizes() {
        let c = fig2_config();
        assert_eq!(c.tbx_size(), 2);
        assert_eq!(c.tbk_size(), 8);
        assert_eq!(c.threads_per_block(), 4);
        assert_eq!(c.outputs_per_thread(), 4);
        // (TBx*REGx + TBy*REGy) * TBk = (4+4)*8.
        assert_eq!(c.smem_elements(), 64);
    }

    #[test]
    fn tile_of_defaults_to_one() {
        let c = KernelConfig {
            tbx: vec![("a".into(), 8)],
            regx: vec![],
            tby: vec![("c".into(), 8)],
            regy: vec![],
            tbk: vec![("e".into(), 4), ("f".into(), 2)],
        };
        assert_eq!(c.tile_of("a"), 8);
        assert_eq!(c.tile_of("b"), 1); // unmapped → grid
        assert!(!c.maps("b"));
    }

    #[test]
    fn lower_produces_valid_plan() {
        let tc = eq1();
        let sizes = SizeMap::uniform(&tc, 16);
        let plan = fig2_config().lower(&tc, &sizes).unwrap();
        assert_eq!(plan.threads_per_block(), 4);
        assert_eq!(plan.num_blocks(), 8usize.pow(4)); // ceil(16/2)^4
        assert_eq!(plan.steps(), 4 * 8); // ceil(16/4)*ceil(16/2)
    }

    #[test]
    fn lower_clips_tiles_to_extents() {
        let tc = eq1();
        let sizes = SizeMap::uniform(&tc, 3); // smaller than tiles of 4
        let plan = fig2_config().lower(&tc, &sizes).unwrap();
        assert_eq!(plan.binding("e").unwrap().tile, 3);
    }

    #[test]
    fn lower_grid_maps_missing_externals() {
        let tc = eq1();
        let sizes = SizeMap::uniform(&tc, 8);
        let cfg = KernelConfig {
            tbx: vec![("a".into(), 8)],
            regx: vec![],
            tby: vec![("c".into(), 8)],
            regy: vec![],
            tbk: vec![("e".into(), 8), ("f".into(), 2)],
        };
        let plan = cfg.lower(&tc, &sizes).unwrap();
        assert_eq!(plan.binding("b").unwrap().tile, 1);
        assert_eq!(plan.binding("d").unwrap().tile, 1);
        assert_eq!(plan.num_blocks(), 64);
    }

    #[test]
    fn lower_rejects_misclassified_index() {
        let tc = eq1();
        let sizes = SizeMap::uniform(&tc, 8);
        let cfg = KernelConfig {
            tbx: vec![("c".into(), 8)], // B-external on the X group
            regx: vec![],
            tby: vec![("a".into(), 8)],
            regy: vec![],
            tbk: vec![("e".into(), 8), ("f".into(), 2)],
        };
        assert!(cfg.lower(&tc, &sizes).is_err());
        assert!(!cfg.is_consistent_with(&tc));
    }

    #[test]
    fn consistency() {
        assert!(fig2_config().is_consistent_with(&eq1()));
        // Duplicate index.
        let dup = KernelConfig {
            tbx: vec![("a".into(), 2), ("a".into(), 2)],
            ..fig2_config()
        };
        assert!(!dup.is_consistent_with(&eq1()));
    }

    #[test]
    fn canonical_key_detects_equal_configs() {
        let c1 = fig2_config();
        let mut c2 = fig2_config();
        assert_eq!(c1.canonical_key(), c2.canonical_key());
        c2.tbk = vec![("f".into(), 2), ("e".into(), 4)];
        assert_ne!(c1.canonical_key(), c2.canonical_key());
    }

    #[test]
    fn display_lists_all_groups() {
        let s = fig2_config().to_string();
        for part in [
            "TBx[a:2]",
            "REGx[b:2]",
            "TBy[c:2]",
            "REGy[d:2]",
            "TBk[e:4,f:2]",
        ] {
            assert!(s.contains(part), "{s}");
        }
    }
}
