//! Lowering configurations to executable plans, and the optional
//! simulator-based refinement over the top-ranked candidates.
//!
//! The paper's selection is purely model-driven, but §VI notes that the
//! model-selected top candidates can be further discriminated by actually
//! measuring them ("we have ... auto-tuned across a selected set of
//! configurations"). [`refine_with_simulator`] reproduces that step using
//! the virtual GPU in place of hardware.

use cogent_gpu_model::{GpuDevice, Precision};
use cogent_gpu_sim::{simulate, KernelPlan, SimReport};
use cogent_ir::SizeMap;

use crate::select::SearchOutcome;

/// A refined candidate: its plan and full simulation report.
#[derive(Debug, Clone)]
pub struct RefinedCandidate {
    /// Position in the model ranking (0 = model's best).
    pub model_rank: usize,
    /// The lowered plan.
    pub plan: KernelPlan,
    /// Simulated execution report.
    pub report: SimReport,
}

/// Lowers the `k` best-ranked configurations of `outcome` and orders them
/// by *simulated* execution time (fastest first).
///
/// Never panics: an outcome with no ranked configurations yields an empty
/// vector, and a candidate that fails to lower (e.g. `sizes` does not
/// cover the contraction) is skipped. Callers needing per-candidate
/// failure detail should lower through `KernelConfig::lower` themselves,
/// as `Cogent::generate`'s degradation ladder does.
///
/// # Examples
///
/// ```
/// use cogent_core::{lower::refine_with_simulator, select::{search, SearchOptions}};
/// use cogent_gpu_model::{GpuDevice, Precision};
/// use cogent_ir::{Contraction, SizeMap};
///
/// let tc: Contraction = "abcd-aebf-dfce".parse()?;
/// let sizes = SizeMap::uniform(&tc, 32);
/// let device = GpuDevice::v100();
/// let outcome = search(&tc, &sizes, &device, Precision::F64, &SearchOptions::default());
/// let refined = refine_with_simulator(&outcome, &sizes, &device, Precision::F64, 4);
/// assert!(!refined.is_empty());
/// assert!(refined[0].report.time.total_s <= refined.last().unwrap().report.time.total_s);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn refine_with_simulator(
    outcome: &SearchOutcome,
    sizes: &SizeMap,
    device: &GpuDevice,
    precision: Precision,
    k: usize,
) -> Vec<RefinedCandidate> {
    let _span = cogent_obs::span("lower");
    cogent_obs::counter(
        "lower.candidates",
        outcome.ranked.len().min(k.max(1)) as u128,
    );
    let mut refined: Vec<RefinedCandidate> = outcome
        .ranked
        .iter()
        .take(k.max(1))
        .enumerate()
        .filter_map(|(model_rank, ranked)| {
            let plan = ranked.config.lower(&outcome.contraction, sizes).ok()?;
            let report = simulate(&plan, device, precision);
            Some(RefinedCandidate {
                model_rank,
                plan,
                report,
            })
        })
        .collect();
    refined.sort_by(|x, y| x.report.time.total_s.total_cmp(&y.report.time.total_s));
    refined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{search, SearchOptions};
    use cogent_ir::Contraction;

    #[test]
    fn refinement_orders_by_simulated_time() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 32);
        let device = GpuDevice::v100();
        let outcome = search(
            &tc,
            &sizes,
            &device,
            Precision::F64,
            &SearchOptions::default(),
        );
        let refined = refine_with_simulator(&outcome, &sizes, &device, Precision::F64, 6);
        assert!(refined.len() <= 6);
        for pair in refined.windows(2) {
            assert!(pair[0].report.time.total_s <= pair[1].report.time.total_s);
        }
        // The model's ranking and the simulator's should correlate: the
        // simulated winner should come from the model's upper half.
        let winner = &refined[0];
        assert!(winner.model_rank <= outcome.ranked.len());
    }

    #[test]
    fn model_cost_correlates_with_simulated_traffic() {
        // The cost model predicts DRAM transactions; the tracer measures
        // them. Ranking by one should broadly agree with the other:
        // check rank correlation is positive over the top candidates.
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 32);
        let device = GpuDevice::v100();
        let outcome = search(
            &tc,
            &sizes,
            &device,
            Precision::F64,
            &SearchOptions::default(),
        );
        let take = outcome.ranked.len().min(8);
        let mut pairs: Vec<(u128, u128)> = Vec::new();
        for r in outcome.ranked.iter().take(take) {
            let plan = r.config.lower(&outcome.contraction, &sizes).unwrap();
            let sim = simulate(&plan, &device, Precision::F64);
            pairs.push((r.cost.total(), sim.trace.total()));
        }
        // Count concordant vs discordant pairs (Kendall-style).
        let mut concordant = 0i64;
        let mut discordant = 0i64;
        for i in 0..pairs.len() {
            for j in i + 1..pairs.len() {
                let dm = pairs[i].0.cmp(&pairs[j].0);
                let ds = pairs[i].1.cmp(&pairs[j].1);
                if dm == ds {
                    concordant += 1;
                } else if dm != std::cmp::Ordering::Equal && ds != std::cmp::Ordering::Equal {
                    discordant += 1;
                }
            }
        }
        assert!(
            concordant >= discordant,
            "model and tracer disagree: {concordant} vs {discordant}"
        );
    }

    #[test]
    fn empty_outcome_refines_to_nothing() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 64);
        let device = GpuDevice::v100();
        let outcome = SearchOutcome {
            contraction: tc.normalized(),
            raw_space: 0,
            enumerated: 0,
            survivors: 0,
            prune_histogram: Default::default(),
            rules_relaxed: false,
            truncated: false,
            ranked: Vec::new(),
        };
        let refined = refine_with_simulator(&outcome, &sizes, &device, Precision::F64, 4);
        assert!(refined.is_empty());
    }

    #[test]
    fn unlowerable_candidates_are_skipped() {
        // Search against complete sizes, then refine with a size map that
        // misses an index: every candidate fails to lower; no panic.
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 64);
        let device = GpuDevice::v100();
        let outcome = search(
            &tc,
            &sizes,
            &device,
            Precision::F64,
            &SearchOptions::default(),
        );
        let incomplete = SizeMap::from_pairs([("i", 64)]);
        let refined = refine_with_simulator(&outcome, &incomplete, &device, Precision::F64, 4);
        assert!(refined.is_empty());
    }
}
