//! Emission of the host-side driver for a generated kernel.

use std::fmt::Write as _;

use cogent_gpu_model::Precision;
use cogent_gpu_sim::plan::{KernelPlan, MapDim};

use super::cuda::{emit_kernel, kernel_name};

fn ctype(precision: Precision) -> &'static str {
    match precision {
        Precision::F32 => "float",
        Precision::F64 => "double",
    }
}

/// Emits a standalone host `main` that allocates the tensors, launches the
/// kernel with the plan's grid/block shape, times it with CUDA events, and
/// reports GFLOPS.
pub fn emit_driver(plan: &KernelPlan, precision: Precision) -> String {
    let tc = plan.contraction();
    let ty = ctype(precision);
    let name = kernel_name(plan);
    let mut out = String::new();

    let mut names: Vec<String> = plan.bindings().iter().map(|b| b.name.to_string()).collect();
    names.sort();

    let _ = writeln!(out, "// host driver for {name}");
    let _ = writeln!(out, "#include <cstdio>");
    let _ = writeln!(out, "#include <cstdlib>");
    let _ = writeln!(out, "#include <cuda_runtime.h>");
    let _ = writeln!(out, "\n#define CUDA_CHECK(call) do {{ \\");
    let _ = writeln!(out, "    cudaError_t err__ = (call); \\");
    let _ = writeln!(out, "    if (err__ != cudaSuccess) {{ \\");
    let _ = writeln!(
        out,
        "        fprintf(stderr, \"CUDA error %s at %s:%d\\n\", cudaGetErrorString(err__), __FILE__, __LINE__); \\"
    );
    let _ = writeln!(out, "        exit(1); \\");
    let _ = writeln!(out, "    }} \\");
    let _ = writeln!(out, "}} while (0)");

    let _ = writeln!(out, "\nint main(int argc, char** argv) {{");
    // Extents default to the representative sizes, overridable from argv.
    for (i, n) in names.iter().enumerate() {
        let extent = plan
            .binding(n.as_str())
            .expect("codegen runs on validated plans that bind every index")
            .extent;
        let _ = writeln!(
            out,
            "    const int N_{n} = argc > {} ? atoi(argv[{}]) : {extent};",
            i + 1,
            i + 1
        );
    }
    let size_of = |t: &cogent_ir::TensorRef| -> String {
        t.indices()
            .iter()
            .map(|i| format!("(size_t)N_{i}"))
            .collect::<Vec<_>>()
            .join(" * ")
    };
    let _ = writeln!(out, "    const size_t size_C = {};", size_of(tc.c()));
    let _ = writeln!(out, "    const size_t size_A = {};", size_of(tc.a()));
    let _ = writeln!(out, "    const size_t size_B = {};", size_of(tc.b()));

    for (buf, size) in [("C", "size_C"), ("A", "size_A"), ("B", "size_B")] {
        let _ = writeln!(
            out,
            "    {ty}* h_{buf} = ({ty}*)malloc({size} * sizeof({ty}));"
        );
    }
    let _ = writeln!(
        out,
        "    for (size_t i = 0; i < size_A; ++i) h_A[i] = ({ty})drand48();"
    );
    let _ = writeln!(
        out,
        "    for (size_t i = 0; i < size_B; ++i) h_B[i] = ({ty})drand48();"
    );
    for (buf, size) in [("C", "size_C"), ("A", "size_A"), ("B", "size_B")] {
        let _ = writeln!(out, "    {ty}* d_{buf};");
        let _ = writeln!(
            out,
            "    CUDA_CHECK(cudaMalloc(&d_{buf}, {size} * sizeof({ty})));"
        );
    }
    let _ = writeln!(
        out,
        "    CUDA_CHECK(cudaMemset(d_C, 0, size_C * sizeof({ty})));"
    );
    let _ = writeln!(
        out,
        "    CUDA_CHECK(cudaMemcpy(d_A, h_A, size_A * sizeof({ty}), cudaMemcpyHostToDevice));"
    );
    let _ = writeln!(
        out,
        "    CUDA_CHECK(cudaMemcpy(d_B, h_B, size_B * sizeof({ty}), cudaMemcpyHostToDevice));"
    );

    // Grid size: product over externals of ceil(N/T).
    let grid: Vec<String> = plan
        .external_bindings_c_order()
        .map(|b| format!("((N_{} + {} - 1) / {})", b.name, b.tile, b.tile))
        .collect();
    let _ = writeln!(out, "\n    const int num_blocks = {};", grid.join(" * "));
    let _ = writeln!(
        out,
        "    const dim3 block({}, {});",
        plan.group_size(MapDim::ThreadX),
        plan.group_size(MapDim::ThreadY)
    );

    let extent_args: Vec<String> = names.iter().map(|n| format!("N_{n}")).collect();
    let _ = writeln!(out, "    cudaEvent_t start, stop;");
    let _ = writeln!(out, "    CUDA_CHECK(cudaEventCreate(&start));");
    let _ = writeln!(out, "    CUDA_CHECK(cudaEventCreate(&stop));");
    let _ = writeln!(out, "    CUDA_CHECK(cudaEventRecord(start));");
    let _ = writeln!(
        out,
        "    {name}<<<num_blocks, block>>>(d_C, d_A, d_B, {});",
        extent_args.join(", ")
    );
    let _ = writeln!(out, "    CUDA_CHECK(cudaEventRecord(stop));");
    let _ = writeln!(out, "    CUDA_CHECK(cudaEventSynchronize(stop));");
    let _ = writeln!(out, "    float ms = 0.f;");
    let _ = writeln!(
        out,
        "    CUDA_CHECK(cudaEventElapsedTime(&ms, start, stop));"
    );
    let flops: Vec<String> = names.iter().map(|n| format!("(double)N_{n}")).collect();
    let _ = writeln!(out, "    const double flops = 2.0 * {};", flops.join(" * "));
    let _ = writeln!(
        out,
        "    printf(\"{name}: %.3f ms, %.1f GFLOPS\\n\", ms, flops / ms / 1e6);"
    );
    let _ = writeln!(
        out,
        "    CUDA_CHECK(cudaMemcpy(h_C, d_C, size_C * sizeof({ty}), cudaMemcpyDeviceToHost));"
    );
    let _ = writeln!(out, "    free(h_A); free(h_B); free(h_C);");
    let _ = writeln!(out, "    cudaFree(d_A); cudaFree(d_B); cudaFree(d_C);");
    let _ = writeln!(out, "    return 0;");
    let _ = writeln!(out, "}}");
    out
}

/// Emits a complete `.cu` translation unit: the kernel followed by the
/// driver.
///
/// # Examples
///
/// ```
/// use cogent_core::codegen::emit_source;
/// use cogent_gpu_model::Precision;
/// use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
/// use cogent_ir::Contraction;
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let plan = KernelPlan::new(&tc, vec![
///     IndexBinding::new("i", 512, 16, MapDim::ThreadX),
///     IndexBinding::new("j", 512, 16, MapDim::ThreadY),
///     IndexBinding::new("k", 512, 8, MapDim::SerialK),
/// ])?;
/// let src = emit_source(&plan, Precision::F64);
/// assert!(src.contains("__global__"));
/// assert!(src.contains("int main("));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn emit_source(plan: &KernelPlan, precision: Precision) -> String {
    let source = format!(
        "{}\n{}",
        emit_kernel(plan, precision),
        emit_driver(plan, precision)
    );
    cogent_obs::counter("codegen.cuda_lines", source.lines().count() as u128);
    source
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogent_gpu_sim::plan::IndexBinding;
    use cogent_ir::Contraction;

    fn plan() -> KernelPlan {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("a", 64, 16, MapDim::ThreadX),
                IndexBinding::new("b", 64, 4, MapDim::RegX),
                IndexBinding::new("d", 64, 16, MapDim::ThreadY),
                IndexBinding::new("c", 64, 1, MapDim::Grid),
                IndexBinding::new("e", 32, 8, MapDim::SerialK),
                IndexBinding::new("f", 32, 2, MapDim::SerialK),
            ],
        )
        .unwrap()
    }

    #[test]
    fn driver_structure() {
        let src = emit_driver(&plan(), Precision::F64);
        assert!(src.contains("int main("));
        assert!(src.contains("cudaMalloc"));
        assert!(src.contains("cudaEventElapsedTime"));
        // d_C is zero-initialized (accumulating kernels read it).
        assert!(src.contains("cudaMemset(d_C, 0,"));
        assert!(src.contains("const dim3 block(16, 16);"));
        assert!(src.contains("GFLOPS"));
        // Extents overridable from the command line, defaulting to the
        // representative size.
        assert!(src.contains("argc > 1 ? atoi(argv[1]) : 64"));
    }

    #[test]
    fn grid_computation_uses_ceil_division() {
        let src = emit_driver(&plan(), Precision::F64);
        assert!(src.contains("((N_a + 16 - 1) / 16)"));
        assert!(src.contains("((N_c + 1 - 1) / 1)"));
    }

    #[test]
    fn source_concatenates_kernel_and_driver() {
        let src = emit_source(&plan(), Precision::F64);
        let kpos = src.find("__global__").unwrap();
        let mpos = src.find("int main(").unwrap();
        assert!(kpos < mpos);
    }

    #[test]
    fn kernel_launch_passes_all_extents() {
        let src = emit_driver(&plan(), Precision::F64);
        assert!(src.contains("(d_C, d_A, d_B, N_a, N_b, N_c, N_d, N_e, N_f);"));
    }

    #[test]
    fn f32_driver() {
        let src = emit_driver(&plan(), Precision::F32);
        assert!(src.contains("float* h_C"));
        assert!(!src.contains("double*"));
    }
}
