//! Pass-pipeline plumbing between the plan lowering and the printers.
//!
//! The KIR optimization passes live in `cogent-kir`; this module owns the
//! *policy*: which pipeline a generator runs ([`PassConfig`]), which
//! vector width a precision gets (`double2` for f64, `float4` for f32 —
//! both 16-byte transactions), and how a transformed program is printed
//! in each backend dialect. The baseline (`PassConfig::None`) bypasses
//! the pipeline entirely, so default emission stays byte-identical to the
//! pre-pass generator.

use cogent_gpu_model::Precision;
use cogent_gpu_sim::plan::KernelPlan;
use cogent_kir::{
    lower_to_kir, pipeline_from_names, print_kernel, Dialect, KernelProgram, PassManager,
};

use crate::guard::CogentError;

use super::backend::Backend;
use super::opencl::opencl_dialect;

/// Which KIR optimization passes to run between lowering and printing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PassConfig {
    /// No passes: the baseline Algorithm-1 kernel, byte-stable against
    /// the golden emit corpus.
    #[default]
    None,
    /// The canonical pipeline (`vectorize-loads`, `smem-pad`,
    /// `double-buffer`), each pass skipping itself where inapplicable.
    Default,
    /// An explicit ordered list of pass names (the `--passes` surface).
    Custom(Vec<String>),
}

impl PassConfig {
    /// Parses a `--passes` value: `none`, `default`, or a comma-separated
    /// pass-name list. Names are validated later, at pipeline build time.
    pub fn parse(spec: &str) -> PassConfig {
        match spec.trim() {
            "" | "none" => PassConfig::None,
            "default" => PassConfig::Default,
            list => PassConfig::Custom(
                list.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect(),
            ),
        }
    }

    /// Stable cache-key component.
    pub fn fingerprint(&self) -> String {
        match self {
            PassConfig::None => "none".to_string(),
            PassConfig::Default => "default".to_string(),
            PassConfig::Custom(names) => format!("custom:{}", names.join(",")),
        }
    }
}

/// The staging vector width for a precision: 16-byte global transactions
/// either way (`double2` / `float4`).
pub fn vector_width(precision: Precision) -> usize {
    match precision {
        Precision::F64 => 2,
        Precision::F32 => 4,
    }
}

/// Lowers `plan` and runs the configured pass pipeline over it. Returns
/// the (possibly transformed) program and the names of the passes that
/// actually applied, in order.
///
/// # Errors
///
/// [`CogentError::UnknownPass`] for an unrecognized custom pass name;
/// [`CogentError::PassFailed`] when a pass rejects the lowered tree.
pub fn lower_with_passes(
    plan: &KernelPlan,
    precision: Precision,
    passes: &PassConfig,
) -> Result<(KernelProgram, Vec<String>), CogentError> {
    // A validated KernelPlan always lowers; surfacing the impossible case
    // as a typed error keeps this path panic-free (zero unwrap budget).
    let prog = lower_to_kir(plan).map_err(|e| CogentError::PassFailed {
        detail: format!("lowering to KIR: {e}"),
    })?;
    let manager = match passes {
        PassConfig::None => return Ok((prog, Vec::new())),
        PassConfig::Default => PassManager::default_pipeline(vector_width(precision)),
        PassConfig::Custom(names) => {
            let names: Vec<&str> = names.iter().map(String::as_str).collect();
            pipeline_from_names(&names, vector_width(precision))
                .map_err(|name| CogentError::UnknownPass { name })?
        }
    };
    let mut prog = prog;
    let report = manager
        .run(&mut prog)
        .map_err(|e| CogentError::PassFailed {
            detail: e.to_string(),
        })?;
    Ok((prog, report.applied()))
}

/// Prints an already-transformed program in the chosen backend dialect.
pub(crate) fn print_backend(
    prog: &KernelProgram,
    precision: Precision,
    backend: Backend,
) -> String {
    let dialect: Dialect = match backend {
        Backend::Cuda => cogent_kir::CUDA,
        Backend::OpenCl => opencl_dialect(precision),
        Backend::Hip => cogent_kir::HIP,
    };
    print_kernel(prog, precision, &dialect)
}

/// Emits the contraction kernel for `plan` in the chosen backend with the
/// configured pass pipeline applied. Returns the source and the applied
/// pass names.
///
/// # Errors
///
/// Same as [`lower_with_passes`].
pub fn emit_backend_kernel_with_passes(
    plan: &KernelPlan,
    precision: Precision,
    backend: Backend,
    passes: &PassConfig,
) -> Result<(String, Vec<String>), CogentError> {
    let (prog, applied) = lower_with_passes(plan, precision, passes)?;
    Ok((print_backend(&prog, precision, backend), applied))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::emit_backend_kernel;
    use crate::codegen::testutil::eq1_plan;

    #[test]
    fn parse_covers_the_three_forms() {
        assert_eq!(PassConfig::parse("none"), PassConfig::None);
        assert_eq!(PassConfig::parse(""), PassConfig::None);
        assert_eq!(PassConfig::parse("default"), PassConfig::Default);
        assert_eq!(
            PassConfig::parse("smem-pad, double-buffer"),
            PassConfig::Custom(vec!["smem-pad".into(), "double-buffer".into()])
        );
    }

    #[test]
    fn none_is_byte_identical_to_the_plain_emitters() {
        let plan = eq1_plan();
        for backend in Backend::ALL {
            let (with, applied) =
                emit_backend_kernel_with_passes(&plan, Precision::F64, backend, &PassConfig::None)
                    .unwrap();
            assert!(applied.is_empty());
            assert_eq!(with, emit_backend_kernel(&plan, Precision::F64, backend));
        }
    }

    #[test]
    fn default_pipeline_changes_the_kernel_and_reports_passes() {
        let plan = eq1_plan();
        let (src, applied) = emit_backend_kernel_with_passes(
            &plan,
            Precision::F64,
            Backend::Cuda,
            &PassConfig::Default,
        )
        .unwrap();
        assert!(!applied.is_empty(), "eq1 should take at least one pass");
        assert_ne!(
            src,
            emit_backend_kernel(&plan, Precision::F64, Backend::Cuda)
        );
    }

    #[test]
    fn unknown_custom_pass_is_a_typed_error() {
        let err = emit_backend_kernel_with_passes(
            &eq1_plan(),
            Precision::F64,
            Backend::Cuda,
            &PassConfig::Custom(vec!["bogus".into()]),
        )
        .unwrap_err();
        assert!(matches!(err, CogentError::UnknownPass { ref name } if name == "bogus"));
    }
}
