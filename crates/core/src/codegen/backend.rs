//! Backend selection: one name for each dialect the generator can print.

use std::fmt;
use std::str::FromStr;

use cogent_gpu_model::Precision;
use cogent_gpu_sim::plan::KernelPlan;

use super::{emit_hip_kernel, emit_kernel, emit_opencl_kernel};

/// A code-generation backend (target dialect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// NVIDIA CUDA (`.cu`).
    Cuda,
    /// Portable OpenCL C (`.cl`).
    OpenCl,
    /// AMD HIP (`.hip.cpp`).
    Hip,
}

impl Backend {
    /// All backends, in emission order.
    pub const ALL: [Backend; 3] = [Backend::Cuda, Backend::OpenCl, Backend::Hip];

    /// The conventional source-file extension for the backend.
    pub fn extension(self) -> &'static str {
        match self {
            Backend::Cuda => "cu",
            Backend::OpenCl => "cl",
            Backend::Hip => "hip.cpp",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Cuda => "cuda",
            Backend::OpenCl => "opencl",
            Backend::Hip => "hip",
        })
    }
}

/// The error returned when parsing an unknown backend name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError {
    given: String,
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend '{}' (expected cuda, opencl, or hip)",
            self.given
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for Backend {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cuda" => Ok(Backend::Cuda),
            "opencl" => Ok(Backend::OpenCl),
            "hip" => Ok(Backend::Hip),
            _ => Err(ParseBackendError { given: s.into() }),
        }
    }
}

/// Emits the contraction kernel for `plan` in the chosen backend.
pub fn emit_backend_kernel(plan: &KernelPlan, precision: Precision, backend: Backend) -> String {
    match backend {
        Backend::Cuda => emit_kernel(plan, precision),
        Backend::OpenCl => emit_opencl_kernel(plan, precision),
        Backend::Hip => emit_hip_kernel(plan, precision),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::testutil::eq1_plan;

    #[test]
    fn parse_round_trips_every_backend() {
        for b in Backend::ALL {
            assert_eq!(b.to_string().parse::<Backend>().unwrap(), b);
        }
        assert_eq!("CUDA".parse::<Backend>().unwrap(), Backend::Cuda);
        assert!("metal".parse::<Backend>().is_err());
    }

    #[test]
    fn dispatch_selects_the_right_dialect() {
        let plan = eq1_plan();
        let cuda = emit_backend_kernel(&plan, Precision::F64, Backend::Cuda);
        let ocl = emit_backend_kernel(&plan, Precision::F64, Backend::OpenCl);
        let hip = emit_backend_kernel(&plan, Precision::F64, Backend::Hip);
        assert!(cuda.contains("__global__ void"));
        assert!(ocl.contains("__kernel void"));
        assert!(hip.starts_with("#include <hip/hip_runtime.h>"));
    }
}
