//! Emission of the tensor-contraction CUDA kernel (Algorithm 1).

use std::fmt::Write as _;

use cogent_gpu_model::Precision;
use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
use cogent_ir::TensorRef;

fn ctype(precision: Precision) -> &'static str {
    match precision {
        Precision::F32 => "float",
        Precision::F64 => "double",
    }
}

/// The target-language surface of the emitted kernel. The kernel body —
/// staging loops, index arithmetic, the outer product — is identical
/// C-family code for CUDA and OpenCL; only qualifiers, thread builtins and
/// the barrier differ.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Dialect {
    /// Extra first lines (e.g. OpenCL's fp64 pragma).
    pub preamble: &'static str,
    /// Kernel function qualifier, e.g. `__global__ void`.
    pub kernel_qualifier: &'static str,
    /// Formats a global-memory pointer parameter.
    pub global_param: fn(ty: &str, name: &str, is_const: bool) -> String,
    /// Scratchpad qualifier: `__shared__` / `__local`.
    pub smem_qualifier: &'static str,
    /// Linear block/work-group id expression.
    pub block_id: &'static str,
    /// Thread/work-item id expressions.
    pub tid_x: &'static str,
    pub tid_y: &'static str,
    /// Block-wide barrier statement.
    pub barrier: &'static str,
}

pub(crate) const CUDA: Dialect = Dialect {
    preamble: "",
    kernel_qualifier: "__global__ void",
    global_param: cuda_global_param,
    smem_qualifier: "__shared__",
    block_id: "blockIdx.x",
    tid_x: "threadIdx.x",
    tid_y: "threadIdx.y",
    barrier: "__syncthreads();",
};

fn cuda_global_param(ty: &str, name: &str, is_const: bool) -> String {
    if is_const {
        format!("const {ty}* __restrict__ {name}")
    } else {
        format!("{ty}* __restrict__ {name}")
    }
}

/// A deterministic kernel name derived from the contraction's TCCG string
/// (or tensor names when indices are multi-character).
pub fn kernel_name(plan: &KernelPlan) -> String {
    let tc = plan.contraction();
    match tc.to_tccg_string() {
        Some(s) => format!("tc_{}", s.replace('-', "_")),
        None => format!(
            "tc_{}_{}_{}",
            tc.c().name().to_lowercase(),
            tc.a().name().to_lowercase(),
            tc.b().name().to_lowercase()
        ),
    }
}

/// Emits `const int` tile-size constants for every bound index.
fn emit_tile_constants(out: &mut String, plan: &KernelPlan) {
    for b in plan.bindings() {
        let _ = writeln!(out, "#define T_{} {}", b.name, b.tile);
    }
    let _ = writeln!(out, "#define TBX {}", plan.group_size(MapDim::ThreadX));
    let _ = writeln!(out, "#define TBY {}", plan.group_size(MapDim::ThreadY));
    let _ = writeln!(out, "#define REGX {}", plan.group_size(MapDim::RegX));
    let _ = writeln!(out, "#define REGY {}", plan.group_size(MapDim::RegY));
    let _ = writeln!(out, "#define KTILE {}", plan.group_size(MapDim::SerialK));
    let _ = writeln!(out, "#define THREADS (TBX * TBY)");
}

/// Emits the mixed-radix decomposition of `var` over the group mapped to
/// `dim`, producing one `const int <prefix>_<idx>` per index.
fn emit_group_decomposition(
    out: &mut String,
    plan: &KernelPlan,
    dim: MapDim,
    var: &str,
    prefix: &str,
    indent: &str,
) {
    let group: Vec<&IndexBinding> = plan.group_bindings(dim).collect();
    if group.is_empty() {
        return;
    }
    let _ = writeln!(out, "{indent}int {prefix}_rem = {var};");
    for (i, b) in group.iter().enumerate() {
        if i + 1 < group.len() {
            let _ = writeln!(
                out,
                "{indent}const int {prefix}_{} = {prefix}_rem % T_{}; {prefix}_rem /= T_{};",
                b.name, b.name, b.name
            );
        } else {
            let _ = writeln!(out, "{indent}const int {prefix}_{} = {prefix}_rem;", b.name);
        }
    }
}

/// The global-offset expression for `tensor` in Horner form, where the
/// coordinate of index `i` is the expression `coord(i)`.
fn global_offset_expr(tensor: &TensorRef, coord: impl Fn(&str) -> String) -> String {
    let mut expr = String::new();
    for idx in tensor.indices().iter().rev() {
        let c = coord(idx.as_str());
        if expr.is_empty() {
            expr = c;
        } else {
            expr = format!("{c} + N_{idx} * ({expr})");
        }
    }
    expr
}

/// The in-tile (shared memory) offset expression for `tensor`, with tile
/// sizes as the radices.
fn tile_offset_expr(tensor: &TensorRef, coord: impl Fn(&str) -> String) -> String {
    let mut expr = String::new();
    for idx in tensor.indices().iter().rev() {
        let c = coord(idx.as_str());
        if expr.is_empty() {
            expr = c;
        } else {
            expr = format!("{c} + T_{idx} * ({expr})");
        }
    }
    expr
}

/// The bounds-check expression `g_<i> < N_<i> && ...` for `tensor`.
fn guard_expr(tensor: &TensorRef, coord: impl Fn(&str) -> String) -> String {
    tensor
        .indices()
        .iter()
        .map(|i| format!("{} < N_{i}", coord(i.as_str())))
        .collect::<Vec<_>>()
        .join(" && ")
}

/// Emits the cooperative GMEM→SMEM staging loop for one input tensor.
fn emit_stage(out: &mut String, _plan: &KernelPlan, tensor: &TensorRef, smem: &str, gmem: &str) {
    let elems: String = tensor
        .indices()
        .iter()
        .map(|i| format!("T_{i}"))
        .collect::<Vec<_>>()
        .join(" * ");
    let _ = writeln!(out, "        // cooperative load of the {gmem} tile");
    let _ = writeln!(
        out,
        "        for (int p = tid; p < {elems}; p += THREADS) {{"
    );
    let _ = writeln!(out, "            int q = p;");
    let n = tensor.rank();
    for (i, idx) in tensor.indices().iter().enumerate() {
        if i + 1 < n {
            let _ = writeln!(
                out,
                "            const int c_{idx} = q % T_{idx}; q /= T_{idx};"
            );
        } else {
            let _ = writeln!(out, "            const int c_{idx} = q;");
        }
    }
    for idx in tensor.indices() {
        let _ = writeln!(out, "            const int u_{idx} = base_{idx} + c_{idx};");
    }
    let guard = guard_expr(tensor, |i| format!("u_{i}"));
    let offset = global_offset_expr(tensor, |i| format!("u_{i}"));
    let _ = writeln!(
        out,
        "            {smem}[p] = ({guard}) ? {gmem}[{offset}] : 0;"
    );
    let _ = writeln!(out, "        }}");
}

/// The coordinate expression of index `idx` as seen from the compute phase
/// (register loads and output stores): thread coordinates, register-slot
/// coordinates, the serial in-tile coordinate, or 0 for grid-mapped tiles.
fn compute_coord(plan: &KernelPlan, idx: &str, rx: &str, ry: &str) -> String {
    let b = plan
        .binding(idx)
        .expect("codegen runs on validated plans that bind every index");
    match b.dim {
        MapDim::ThreadX => format!("x_{idx}"),
        MapDim::ThreadY => format!("y_{idx}"),
        MapDim::RegX => format!("{rx}_{idx}"),
        MapDim::RegY => format!("{ry}_{idx}"),
        MapDim::SerialK => format!("k_{idx}"),
        MapDim::Grid => "0".to_owned(),
    }
}

/// Emits the complete `__global__` kernel for `plan`.
///
/// # Examples
///
/// ```
/// use cogent_core::codegen::emit_kernel;
/// use cogent_gpu_model::Precision;
/// use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
/// use cogent_ir::Contraction;
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let plan = KernelPlan::new(&tc, vec![
///     IndexBinding::new("i", 1024, 16, MapDim::ThreadX),
///     IndexBinding::new("j", 1024, 16, MapDim::ThreadY),
///     IndexBinding::new("k", 1024, 8, MapDim::SerialK),
/// ])?;
/// let src = emit_kernel(&plan, Precision::F64);
/// assert!(src.contains("__global__ void tc_ij_ik_kj"));
/// assert!(src.contains("__shared__ double s_A"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn emit_kernel(plan: &KernelPlan, precision: Precision) -> String {
    emit_kernel_dialect(plan, precision, &CUDA)
}

/// Emits the kernel in the given dialect (CUDA or OpenCL).
pub(crate) fn emit_kernel_dialect(
    plan: &KernelPlan,
    precision: Precision,
    dialect: &Dialect,
) -> String {
    let tc = plan.contraction();
    let ty = ctype(precision);
    let name = kernel_name(plan);
    let mut out = String::new();

    if !dialect.preamble.is_empty() {
        let _ = writeln!(out, "{}", dialect.preamble);
    }
    let _ = writeln!(out, "// generated by COGENT-RS");
    let _ = writeln!(out, "// contraction: {tc}");
    let _ = writeln!(out, "// {plan}");
    emit_tile_constants(&mut out, plan);

    // Parameter list: tensors + extents (sorted for determinism).
    let mut extent_params: Vec<String> = plan
        .bindings()
        .iter()
        .map(|b| format!("const int N_{}", b.name))
        .collect();
    extent_params.sort();
    let _ = writeln!(
        out,
        "\n{} {name}(\n    {},\n    {},\n    {},\n    {})\n{{",
        dialect.kernel_qualifier,
        (dialect.global_param)(ty, "g_C", false),
        (dialect.global_param)(ty, "g_A", true),
        (dialect.global_param)(ty, "g_B", true),
        extent_params.join(", ")
    );

    // Shared memory and registers (Algorithm 1 lines 2-6).
    let a_elems: String = tc
        .a()
        .indices()
        .iter()
        .map(|i| format!("T_{i}"))
        .collect::<Vec<_>>()
        .join(" * ");
    let b_elems: String = tc
        .b()
        .indices()
        .iter()
        .map(|i| format!("T_{i}"))
        .collect::<Vec<_>>()
        .join(" * ");
    let _ = writeln!(out, "    {} {ty} s_A[{a_elems}];", dialect.smem_qualifier);
    let _ = writeln!(out, "    {} {ty} s_B[{b_elems}];", dialect.smem_qualifier);
    let _ = writeln!(out, "    {ty} r_A[REGX];");
    let _ = writeln!(out, "    {ty} r_B[REGY];");
    let _ = writeln!(out, "    {ty} r_C[REGY][REGX];");
    let _ = writeln!(out, "    #pragma unroll");
    let _ = writeln!(out, "    for (int ry = 0; ry < REGY; ++ry)");
    let _ = writeln!(out, "        #pragma unroll");
    let _ = writeln!(out, "        for (int rx = 0; rx < REGX; ++rx)");
    let _ = writeln!(out, "            r_C[ry][rx] = 0;");

    // Grid decomposition: per-external tile number and base offset.
    let _ = writeln!(out, "\n    // block-tile origin (one tile of C per block)");
    let _ = writeln!(out, "    int b_rem = {};", dialect.block_id);
    for b in plan.external_bindings_c_order() {
        let i = &b.name;
        let _ = writeln!(
            out,
            "    const int nt_{i} = (N_{i} + T_{i} - 1) / T_{i};\n    const int base_{i} = (b_rem % nt_{i}) * T_{i}; b_rem /= nt_{i};"
        );
    }

    // Thread coordinate decomposition.
    let _ = writeln!(
        out,
        "\n    const int tid = {} + TBX * {};",
        dialect.tid_x, dialect.tid_y
    );
    emit_group_decomposition(&mut out, plan, MapDim::ThreadX, dialect.tid_x, "x", "    ");
    emit_group_decomposition(&mut out, plan, MapDim::ThreadY, dialect.tid_y, "y", "    ");

    // Serial loop over k-tiles (Algorithm 1 line 9).
    let steps_expr: String = {
        let steps: Vec<String> = plan
            .group_bindings(MapDim::SerialK)
            .map(|b| format!("((N_{} + T_{} - 1) / T_{})", b.name, b.name, b.name))
            .collect();
        if steps.is_empty() {
            "1".to_owned()
        } else {
            steps.join(" * ")
        }
    };
    let _ = writeln!(out, "\n    const int num_steps = {steps_expr};");
    let _ = writeln!(out, "    for (int step = 0; step < num_steps; ++step) {{");
    // Internal tile bases for this step.
    if plan.group_bindings(MapDim::SerialK).next().is_some() {
        let _ = writeln!(out, "        int s_rem = step;");
        for b in plan.group_bindings(MapDim::SerialK) {
            let i = &b.name;
            let _ = writeln!(
                out,
                "        const int snt_{i} = (N_{i} + T_{i} - 1) / T_{i};\n        const int base_{i} = (s_rem % snt_{i}) * T_{i}; s_rem /= snt_{i};"
            );
        }
    }

    // (1) GMEM -> SMEM.
    emit_stage(&mut out, plan, tc.a(), "s_A", "g_A");
    emit_stage(&mut out, plan, tc.b(), "s_B", "g_B");
    let _ = writeln!(out, "        {}", dialect.barrier);

    // (2)+(3) SMEM -> REG and outer product.
    let _ = writeln!(out, "\n        for (int j = 0; j < KTILE; ++j) {{");
    emit_group_decomposition(&mut out, plan, MapDim::SerialK, "j", "k", "            ");
    // r_A loads.
    let _ = writeln!(out, "            #pragma unroll");
    let _ = writeln!(out, "            for (int rx = 0; rx < REGX; ++rx) {{");
    emit_group_decomposition(&mut out, plan, MapDim::RegX, "rx", "rx", "                ");
    let a_off = tile_offset_expr(tc.a(), |i| compute_coord(plan, i, "rx", "ry"));
    let _ = writeln!(out, "                r_A[rx] = s_A[{a_off}];");
    let _ = writeln!(out, "            }}");
    // r_B loads.
    let _ = writeln!(out, "            #pragma unroll");
    let _ = writeln!(out, "            for (int ry = 0; ry < REGY; ++ry) {{");
    emit_group_decomposition(&mut out, plan, MapDim::RegY, "ry", "ry", "                ");
    let b_off = tile_offset_expr(tc.b(), |i| compute_coord(plan, i, "rx", "ry"));
    let _ = writeln!(out, "                r_B[ry] = s_B[{b_off}];");
    let _ = writeln!(out, "            }}");
    // Outer product.
    let _ = writeln!(out, "            #pragma unroll");
    let _ = writeln!(out, "            for (int ry = 0; ry < REGY; ++ry)");
    let _ = writeln!(out, "                #pragma unroll");
    let _ = writeln!(out, "                for (int rx = 0; rx < REGX; ++rx)");
    let _ = writeln!(out, "                    r_C[ry][rx] += r_A[rx] * r_B[ry];");
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "        {}", dialect.barrier);
    let _ = writeln!(out, "    }}");

    // (4) REG -> GMEM store with guards.
    let _ = writeln!(out, "\n    // store the output register tile");
    let _ = writeln!(out, "    for (int ry = 0; ry < REGY; ++ry) {{");
    emit_group_decomposition(&mut out, plan, MapDim::RegY, "ry", "ry", "        ");
    let _ = writeln!(out, "        for (int rx = 0; rx < REGX; ++rx) {{");
    emit_group_decomposition(&mut out, plan, MapDim::RegX, "rx", "rx", "            ");
    for idx in tc.c().indices() {
        let coord = compute_coord(plan, idx.as_str(), "rx", "ry");
        let _ = writeln!(out, "            const int o_{idx} = base_{idx} + {coord};");
    }
    let guard = guard_expr(tc.c(), |i| format!("o_{i}"));
    let offset = global_offset_expr(tc.c(), |i| format!("o_{i}"));
    let op = match plan.store_mode() {
        cogent_gpu_sim::plan::StoreMode::Assign => "=",
        cogent_gpu_sim::plan::StoreMode::Accumulate => "+=",
    };
    let _ = writeln!(out, "            if ({guard})");
    let _ = writeln!(out, "                g_C[{offset}] {op} r_C[ry][rx];");
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogent_ir::Contraction;

    fn eq1_plan() -> KernelPlan {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("a", 64, 16, MapDim::ThreadX),
                IndexBinding::new("b", 64, 4, MapDim::RegX),
                IndexBinding::new("d", 64, 16, MapDim::ThreadY),
                IndexBinding::new("c", 64, 1, MapDim::Grid),
                IndexBinding::new("e", 32, 8, MapDim::SerialK),
                IndexBinding::new("f", 32, 2, MapDim::SerialK),
            ],
        )
        .unwrap()
    }

    #[test]
    fn kernel_structure() {
        let src = emit_kernel(&eq1_plan(), Precision::F64);
        // Algorithm 1's four phases all present.
        assert!(src.contains("__global__ void tc_abcd_aebf_dfce"));
        assert!(src.contains("__shared__ double s_A[T_a * T_e * T_b * T_f];"));
        assert!(src.contains("__shared__ double s_B[T_d * T_f * T_c * T_e];"));
        assert!(src.contains("r_C[ry][rx] += r_A[rx] * r_B[ry];"));
        assert_eq!(src.matches("__syncthreads();").count(), 2);
        assert!(src.contains("g_C["));
        // Guards on every tensor access.
        assert!(src.contains("u_a < N_a"));
        assert!(src.contains("o_a < N_a"));
    }

    #[test]
    fn tile_constants_match_plan() {
        let src = emit_kernel(&eq1_plan(), Precision::F64);
        assert!(src.contains("#define T_a 16"));
        assert!(src.contains("#define T_b 4"));
        assert!(src.contains("#define T_c 1"));
        assert!(src.contains("#define TBX 16"));
        assert!(src.contains("#define TBY 16"));
        assert!(src.contains("#define REGX 4"));
        assert!(src.contains("#define REGY 1"));
        assert!(src.contains("#define KTILE 16"));
    }

    #[test]
    fn extents_are_runtime_parameters() {
        let src = emit_kernel(&eq1_plan(), Precision::F64);
        for n in ["N_a", "N_b", "N_c", "N_d", "N_e", "N_f"] {
            assert!(src.contains(&format!("const int {n}")), "{n} missing");
        }
        // Tile sizes are compile-time, extents are not #defined.
        assert!(!src.contains("#define N_a"));
    }

    #[test]
    fn f32_emission() {
        let src = emit_kernel(&eq1_plan(), Precision::F32);
        assert!(src.contains("__shared__ float s_A"));
        assert!(!src.contains("double"));
    }

    #[test]
    fn grid_mapped_index_contributes_zero_coordinate() {
        let src = emit_kernel(&eq1_plan(), Precision::F64);
        // c is grid-mapped: its output coordinate is base_c + 0.
        assert!(src.contains("const int o_c = base_c + 0;"));
    }

    #[test]
    fn kernel_name_multichar_indices() {
        let tc: Contraction = "T3[h3,h1,p6,p4] = T2[h7,p4,h1] * V2[h3,p6,h7]"
            .parse()
            .unwrap();
        // The output FVI h3 lives in V2, so normalize before mapping.
        let tc = tc.normalized();
        let plan = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("h3", 16, 8, MapDim::ThreadX),
                IndexBinding::new("p6", 16, 2, MapDim::RegX),
                IndexBinding::new("h1", 16, 1, MapDim::Grid),
                IndexBinding::new("p4", 16, 8, MapDim::ThreadY),
                IndexBinding::new("h7", 16, 8, MapDim::SerialK),
            ],
        )
        .unwrap();
        assert_eq!(kernel_name(&plan), "tc_t3_v2_t2");
        let src = emit_kernel(&plan, Precision::F64);
        assert!(src.contains("N_h7"));
    }

    #[test]
    fn matmul_kernel_no_register_tiles() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let plan = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("i", 256, 16, MapDim::ThreadX),
                IndexBinding::new("j", 256, 16, MapDim::ThreadY),
                IndexBinding::new("k", 256, 16, MapDim::SerialK),
            ],
        )
        .unwrap();
        let src = emit_kernel(&plan, Precision::F64);
        assert!(src.contains("#define REGX 1"));
        assert!(src.contains("#define REGY 1"));
        assert!(src.contains("for (int step = 0; step < num_steps; ++step)"));
    }
}
