//! CUDA kernel emission: the thin dialect binding over the shared kernel
//! IR in `cogent-kir`.
//!
//! Historically this module *was* the emitter — ~400 lines of string
//! building that OpenCL reused through a dialect struct. The structural
//! work (Algorithm 1's four phases, the mixed-radix index arithmetic, the
//! guards) now lives in [`cogent_kir::lower_to_kir`], which builds a typed
//! [`cogent_kir::KernelProgram`] consumed by the pretty-printer, the KIR
//! interpreter, and the structural lint alike. What remains here is the
//! CUDA-specific surface: picking [`cogent_kir::CUDA`].

use cogent_gpu_model::Precision;
use cogent_gpu_sim::plan::KernelPlan;
use cogent_kir::{lower_to_kir, print_kernel, Dialect};

pub use cogent_kir::kernel_name;

/// Emits the complete `__global__` kernel for `plan`.
///
/// # Examples
///
/// ```
/// use cogent_core::codegen::emit_kernel;
/// use cogent_gpu_model::Precision;
/// use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
/// use cogent_ir::Contraction;
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let plan = KernelPlan::new(&tc, vec![
///     IndexBinding::new("i", 1024, 16, MapDim::ThreadX),
///     IndexBinding::new("j", 1024, 16, MapDim::ThreadY),
///     IndexBinding::new("k", 1024, 8, MapDim::SerialK),
/// ])?;
/// let src = emit_kernel(&plan, Precision::F64);
/// assert!(src.contains("__global__ void tc_ij_ik_kj"));
/// assert!(src.contains("__shared__ double s_A"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn emit_kernel(plan: &KernelPlan, precision: Precision) -> String {
    emit_kernel_dialect(plan, precision, &cogent_kir::CUDA)
}

/// Lowers the plan to KIR and prints it in the given dialect.
pub(crate) fn emit_kernel_dialect(
    plan: &KernelPlan,
    precision: Precision,
    dialect: &Dialect,
) -> String {
    let prog = lower_to_kir(plan).expect("a validated KernelPlan always lowers to KIR");
    print_kernel(&prog, precision, dialect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::testutil::eq1_plan;
    use cogent_gpu_sim::plan::{IndexBinding, MapDim};
    use cogent_ir::Contraction;

    #[test]
    fn kernel_structure() {
        let src = emit_kernel(&eq1_plan(), Precision::F64);
        // Algorithm 1's four phases all present.
        assert!(src.contains("__global__ void tc_abcd_aebf_dfce"));
        assert!(src.contains("__shared__ double s_A[T_a * T_e * T_b * T_f];"));
        assert!(src.contains("__shared__ double s_B[T_d * T_f * T_c * T_e];"));
        assert!(src.contains("r_C[ry][rx] += r_A[rx] * r_B[ry];"));
        assert_eq!(src.matches("__syncthreads();").count(), 2);
        assert!(src.contains("g_C["));
        // Guards on every tensor access.
        assert!(src.contains("u_a < N_a"));
        assert!(src.contains("o_a < N_a"));
    }

    #[test]
    fn tile_constants_match_plan() {
        let src = emit_kernel(&eq1_plan(), Precision::F64);
        assert!(src.contains("#define T_a 16"));
        assert!(src.contains("#define T_b 4"));
        assert!(src.contains("#define T_c 1"));
        assert!(src.contains("#define TBX 16"));
        assert!(src.contains("#define TBY 16"));
        assert!(src.contains("#define REGX 4"));
        assert!(src.contains("#define REGY 1"));
        assert!(src.contains("#define KTILE 16"));
    }

    #[test]
    fn extents_are_runtime_parameters() {
        let src = emit_kernel(&eq1_plan(), Precision::F64);
        for n in ["N_a", "N_b", "N_c", "N_d", "N_e", "N_f"] {
            assert!(src.contains(&format!("const int {n}")), "{n} missing");
        }
        // Tile sizes are compile-time, extents are not #defined.
        assert!(!src.contains("#define N_a"));
    }

    #[test]
    fn f32_emission() {
        let src = emit_kernel(&eq1_plan(), Precision::F32);
        assert!(src.contains("__shared__ float s_A"));
        assert!(!src.contains("double"));
    }

    #[test]
    fn grid_mapped_index_contributes_zero_coordinate() {
        let src = emit_kernel(&eq1_plan(), Precision::F64);
        // c is grid-mapped: its output coordinate is base_c + 0.
        assert!(src.contains("const int o_c = base_c + 0;"));
    }

    #[test]
    fn kernel_name_multichar_indices() {
        let tc: Contraction = "T3[h3,h1,p6,p4] = T2[h7,p4,h1] * V2[h3,p6,h7]"
            .parse()
            .unwrap();
        // The output FVI h3 lives in V2, so normalize before mapping.
        let tc = tc.normalized();
        let plan = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("h3", 16, 8, MapDim::ThreadX),
                IndexBinding::new("p6", 16, 2, MapDim::RegX),
                IndexBinding::new("h1", 16, 1, MapDim::Grid),
                IndexBinding::new("p4", 16, 8, MapDim::ThreadY),
                IndexBinding::new("h7", 16, 8, MapDim::SerialK),
            ],
        )
        .unwrap();
        // Non-TCCG contractions get case-preserving sanitized tensor names
        // plus a content hash, so `T3` and a hypothetical `t3` cannot
        // collide the way the old lowercasing scheme allowed.
        let name = kernel_name(&plan);
        assert!(
            name.starts_with("tc_T3_V2_T2_"),
            "unexpected kernel name {name}"
        );
        let suffix = &name["tc_T3_V2_T2_".len()..];
        assert_eq!(suffix.len(), 8, "hash suffix should be 8 hex chars");
        assert!(suffix.chars().all(|c| c.is_ascii_hexdigit()));
        let src = emit_kernel(&plan, Precision::F64);
        assert!(src.contains("N_h7"));
    }

    #[test]
    fn matmul_kernel_no_register_tiles() {
        let tc: Contraction = "ij-ik-kj".parse().unwrap();
        let plan = KernelPlan::new(
            &tc,
            vec![
                IndexBinding::new("i", 256, 16, MapDim::ThreadX),
                IndexBinding::new("j", 256, 16, MapDim::ThreadY),
                IndexBinding::new("k", 256, 16, MapDim::SerialK),
            ],
        )
        .unwrap();
        let src = emit_kernel(&plan, Precision::F64);
        assert!(src.contains("#define REGX 1"));
        assert!(src.contains("#define REGY 1"));
        assert!(src.contains("for (int step = 0; step < num_steps; ++step)"));
    }
}
