//! Linting of emitted kernels: a text pass over the printed source and a
//! structural pass over the kernel IR.
//!
//! No CUDA or OpenCL compiler exists in this environment, so emitted text
//! cannot be compiled. This linter enforces the invariants a compiler
//! would catch first: balanced delimiters, every referenced tile/extent
//! symbol defined or declared, no unresolved placeholders, and the
//! presence of the four phases of Algorithm 1. It runs in the test suite
//! over every kernel the generator produces for the TCCG suite.

use std::collections::BTreeSet;

use cogent_gpu_sim::plan::KernelPlan;
use cogent_kir::{lint_kernel_program, lower_to_kir, IrLintReport, KirError};

/// A lint finding (empty result = clean).
pub type LintFindings = Vec<String>;

fn balanced(source: &str, open: char, close: char) -> Result<(), String> {
    let mut depth: i64 = 0;
    for (line_no, line) in source.lines().enumerate() {
        for ch in line.chars() {
            if ch == open {
                depth += 1;
            } else if ch == close {
                depth -= 1;
                if depth < 0 {
                    return Err(format!("unbalanced {close:?} at line {}", line_no + 1));
                }
            }
        }
    }
    if depth != 0 {
        return Err(format!("{depth} unclosed {open:?}"));
    }
    Ok(())
}

/// Collects identifiers matching `prefix_<suffix>` (e.g. `T_a`, `N_h3`).
fn symbols_with_prefix(source: &str, prefix: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = source.as_bytes();
    let pat = format!("{prefix}_");
    let mut start = 0;
    while let Some(pos) = source[start..].find(&pat) {
        let begin = start + pos;
        // Must not be part of a longer identifier (e.g. `nt_a` contains
        // `t_a` — require a non-ident char before).
        let ok_before =
            begin == 0 || !(bytes[begin - 1].is_ascii_alphanumeric() || bytes[begin - 1] == b'_');
        let mut end = begin + pat.len();
        while end < source.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
        if ok_before && end > begin + pat.len() {
            out.insert(source[begin..end].to_string());
        }
        start = begin + pat.len();
    }
    out
}

/// Lints an emitted kernel (CUDA or OpenCL). Returns a list of problems;
/// empty means the source passes all structural checks.
///
/// # Examples
///
/// ```
/// use cogent_core::codegen::{emit_kernel, lint_kernel_source};
/// use cogent_gpu_model::Precision;
/// use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
/// use cogent_ir::Contraction;
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let plan = KernelPlan::new(&tc, vec![
///     IndexBinding::new("i", 64, 16, MapDim::ThreadX),
///     IndexBinding::new("j", 64, 16, MapDim::ThreadY),
///     IndexBinding::new("k", 64, 8, MapDim::SerialK),
/// ])?;
/// let findings = lint_kernel_source(&emit_kernel(&plan, Precision::F64));
/// assert!(findings.is_empty(), "{findings:?}");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lint_kernel_source(source: &str) -> LintFindings {
    let mut findings = Vec::new();

    for (open, close) in [('{', '}'), ('(', ')'), ('[', ']')] {
        if let Err(e) = balanced(source, open, close) {
            findings.push(e);
        }
    }

    // Unresolved emission placeholders.
    for marker in ["{{", "}}", "<<<<", "TODO", "PLACEHOLDER", "--]"] {
        // `<<<` is a launch; check for accidental quadruple.
        if source.contains(marker) {
            findings.push(format!("unresolved marker {marker:?} in source"));
        }
    }

    // Every referenced tile constant T_<i> must be #defined.
    let defined: BTreeSet<String> = source
        .lines()
        .filter_map(|l| l.strip_prefix("#define "))
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_owned)
        .collect();
    for t in symbols_with_prefix(source, "T") {
        // Only tile constants: skip T-prefixed locals like `T_rem` (none
        // are emitted, but stay conservative: flag only undefined uses).
        if !defined.contains(&t) {
            findings.push(format!("tile constant {t} used but not defined"));
        }
    }

    // Every extent N_<i> must appear in the parameter list (or be declared
    // in the driver).
    for n in symbols_with_prefix(source, "N") {
        let declared =
            source.contains(&format!("const int {n}")) || source.contains(&format!("int {n} ="));
        if !declared {
            findings.push(format!("extent {n} used but never declared"));
        }
    }

    // The four phases of Algorithm 1 must all be present.
    for (phase, needle) in [
        ("GMEM→SMEM staging", "cooperative load"),
        ("serial k loop", "num_steps"),
        ("outer product", "r_C[ry][rx] +="),
        ("output store", "g_C["),
    ] {
        if !source.contains(needle) {
            findings.push(format!("missing phase: {phase}"));
        }
    }

    findings
}

/// Structural IR-level lint: lowers the plan to KIR and checks the tree
/// invariants (symbol discipline, barrier placement, guard coverage)
/// before any dialect printing happens.
///
/// # Errors
///
/// Propagates [`KirError`] when the plan cannot be lowered (e.g. a
/// contraction index without a binding).
pub fn lint_kernel_plan(plan: &KernelPlan) -> Result<IrLintReport, KirError> {
    Ok(lint_kernel_program(&lower_to_kir(plan)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::testutil::eq1_plan;
    use crate::codegen::{emit_kernel, emit_opencl_kernel, emit_source};
    use cogent_gpu_model::Precision;

    #[test]
    fn emitted_cuda_is_clean() {
        let findings = lint_kernel_source(&emit_kernel(&eq1_plan(), Precision::F64));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn emitted_opencl_is_clean() {
        let findings = lint_kernel_source(&emit_opencl_kernel(&eq1_plan(), Precision::F32));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn full_translation_unit_is_clean() {
        let findings = lint_kernel_source(&emit_source(&eq1_plan(), Precision::F64));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn detects_unbalanced_braces() {
        let broken = "void f() { if (x) { }";
        assert!(lint_kernel_source(broken)
            .iter()
            .any(|f| f.contains("unclosed")));
    }

    #[test]
    fn detects_undefined_tile_constant() {
        let src = "int x = T_a;\n";
        assert!(lint_kernel_source(src)
            .iter()
            .any(|f| f.contains("T_a used but not defined")));
    }

    #[test]
    fn detects_undeclared_extent() {
        let src = "#define T_a 4\nint x = T_a + N_a;\n";
        assert!(lint_kernel_source(src)
            .iter()
            .any(|f| f.contains("N_a used but never declared")));
    }

    #[test]
    fn ir_lint_accepts_every_backend_free_plan() {
        let report = lint_kernel_plan(&eq1_plan()).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn symbol_scanner_respects_identifier_boundaries() {
        // nt_a must not register as t_a / T_a.
        let syms = symbols_with_prefix("const int nt_a = 1; int T_a = 2;", "T");
        assert!(syms.contains("T_a"));
        assert_eq!(syms.len(), 1);
    }
}
