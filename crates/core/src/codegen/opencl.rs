//! OpenCL kernel emission — the portability extension the paper lists as
//! future work ("OpenCL code generation is planned for the future").
//!
//! The kernel body is the same Algorithm 1 schema as the CUDA backend
//! (all backends print one shared [`cogent_kir::KernelProgram`]); only
//! the surface syntax differs: `__kernel`/`__global`/`__local`
//! qualifiers, work-item builtins in place of `threadIdx`/`blockIdx`,
//! and `barrier(CLK_LOCAL_MEM_FENCE)` in place of `__syncthreads()`.

use cogent_gpu_model::Precision;
use cogent_gpu_sim::plan::KernelPlan;
use cogent_kir::{Dialect, OPENCL, OPENCL_FP64_PREAMBLE};

use super::cuda::emit_kernel_dialect;

/// Emits the contraction kernel as OpenCL C.
///
/// Double-precision kernels start with the `cl_khr_fp64` extension pragma.
///
/// # Examples
///
/// ```
/// use cogent_core::codegen::emit_opencl_kernel;
/// use cogent_gpu_model::Precision;
/// use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
/// use cogent_ir::Contraction;
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let plan = KernelPlan::new(&tc, vec![
///     IndexBinding::new("i", 512, 16, MapDim::ThreadX),
///     IndexBinding::new("j", 512, 16, MapDim::ThreadY),
///     IndexBinding::new("k", 512, 8, MapDim::SerialK),
/// ])?;
/// let src = emit_opencl_kernel(&plan, Precision::F64);
/// assert!(src.contains("__kernel void tc_ij_ik_kj"));
/// assert!(src.contains("barrier(CLK_LOCAL_MEM_FENCE);"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn emit_opencl_kernel(plan: &KernelPlan, precision: Precision) -> String {
    emit_kernel_dialect(plan, precision, &opencl_dialect(precision))
}

/// The OpenCL dialect for a precision: double-precision kernels carry the
/// `cl_khr_fp64` extension pragma.
pub(crate) fn opencl_dialect(precision: Precision) -> Dialect {
    Dialect {
        preamble: match precision {
            Precision::F64 => OPENCL_FP64_PREAMBLE,
            Precision::F32 => "",
        },
        ..OPENCL
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::testutil::eq1_plan;

    #[test]
    fn opencl_surface_syntax() {
        let src = emit_opencl_kernel(&eq1_plan(), Precision::F64);
        assert!(src.starts_with("#pragma OPENCL EXTENSION cl_khr_fp64 : enable"));
        assert!(src.contains("__kernel void tc_abcd_aebf_dfce"));
        assert!(src.contains("__global double* restrict g_C"));
        assert!(src.contains("__global const double* restrict g_A"));
        assert!(src.contains("__local double s_A["));
        assert!(src.contains("(int)get_local_id(0)"));
        assert!(src.contains("(int)get_group_id(0)"));
        assert_eq!(src.matches("barrier(CLK_LOCAL_MEM_FENCE);").count(), 2);
        // No CUDA leftovers.
        assert!(!src.contains("__global__"));
        assert!(!src.contains("threadIdx"));
        assert!(!src.contains("blockIdx"));
        assert!(!src.contains("__syncthreads"));
        assert!(!src.contains("__shared__"));
    }

    #[test]
    fn f32_needs_no_extension_pragma() {
        let src = emit_opencl_kernel(&eq1_plan(), Precision::F32);
        assert!(!src.contains("cl_khr_fp64"));
        assert!(src.contains("__local float s_A["));
    }

    #[test]
    fn body_matches_cuda_structure() {
        // Same tile constants, same index arithmetic, same outer product —
        // only the dialect surface differs.
        let ocl = emit_opencl_kernel(&eq1_plan(), Precision::F64);
        let cuda = super::super::cuda::emit_kernel(&eq1_plan(), Precision::F64);
        for fragment in [
            "#define T_a 16",
            "r_C[ry][rx] += r_A[rx] * r_B[ry];",
            "const int o_c = base_c + 0;",
            "for (int step = 0; step < num_steps; ++step)",
        ] {
            assert!(ocl.contains(fragment), "OpenCL missing {fragment}");
            assert!(cuda.contains(fragment), "CUDA missing {fragment}");
        }
    }
}
