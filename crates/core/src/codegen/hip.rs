//! HIP kernel emission.
//!
//! AMD's HIP deliberately mirrors the CUDA programming surface —
//! `__global__`, `__shared__`, `threadIdx`/`blockIdx`, `__syncthreads()`
//! — so on top of the shared kernel IR this backend is a one-constant
//! dialect: [`cogent_kir::HIP`] is the CUDA surface plus the
//! `<hip/hip_runtime.h>` include `hipcc` requires in every translation
//! unit. That near-zero marginal cost is the point of the KIR refactor:
//! a new C-family backend is a `Dialect` value, not a new emitter.

use cogent_gpu_model::Precision;
use cogent_gpu_sim::plan::KernelPlan;

use super::cuda::emit_kernel_dialect;

/// Emits the contraction kernel as HIP C++.
///
/// # Examples
///
/// ```
/// use cogent_core::codegen::emit_hip_kernel;
/// use cogent_gpu_model::Precision;
/// use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
/// use cogent_ir::Contraction;
///
/// let tc: Contraction = "ij-ik-kj".parse()?;
/// let plan = KernelPlan::new(&tc, vec![
///     IndexBinding::new("i", 512, 16, MapDim::ThreadX),
///     IndexBinding::new("j", 512, 16, MapDim::ThreadY),
///     IndexBinding::new("k", 512, 8, MapDim::SerialK),
/// ])?;
/// let src = emit_hip_kernel(&plan, Precision::F64);
/// assert!(src.starts_with("#include <hip/hip_runtime.h>"));
/// assert!(src.contains("__global__ void tc_ij_ik_kj"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn emit_hip_kernel(plan: &KernelPlan, precision: Precision) -> String {
    emit_kernel_dialect(plan, precision, &cogent_kir::HIP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::testutil::eq1_plan;

    #[test]
    fn hip_surface_is_cuda_plus_runtime_header() {
        let hip = emit_hip_kernel(&eq1_plan(), Precision::F64);
        let cuda = super::super::cuda::emit_kernel(&eq1_plan(), Precision::F64);
        assert!(hip.starts_with("#include <hip/hip_runtime.h>\n"));
        // Everything after the include is byte-identical to CUDA.
        assert_eq!(&hip["#include <hip/hip_runtime.h>\n".len()..], cuda);
    }

    #[test]
    fn hip_f32_kernel_structure() {
        let src = emit_hip_kernel(&eq1_plan(), Precision::F32);
        assert!(src.contains("__global__ void tc_abcd_aebf_dfce"));
        assert!(src.contains("__shared__ float s_A["));
        assert_eq!(src.matches("__syncthreads();").count(), 2);
        assert!(!src.contains("double"));
    }
}
