//! Kernel code emission.
//!
//! Given a lowered [`KernelPlan`](cogent_gpu_sim::KernelPlan), emits the
//! contraction kernel of Algorithm 1 plus a host driver. Tile sizes and
//! mappings are baked into the kernel as compile-time constants; tensor
//! extents are runtime parameters, so one generated kernel supports
//! arbitrary problem sizes (the representative size only drove the
//! parameter selection).
//!
//! All backends share one pipeline: the plan is lowered once to the typed
//! kernel IR in `cogent-kir`, and each backend ([`Backend`]) is a dialect
//! pretty-print of that tree. The KIR interpreter and the structural lint
//! consume the same tree, so the emitted text, the executed semantics,
//! and the checked invariants cannot drift apart.

mod backend;
mod cuda;
mod driver;
mod hip;
mod lint;
mod opencl;
mod passes;
#[cfg(test)]
pub(crate) mod testutil;

pub use backend::{emit_backend_kernel, Backend, ParseBackendError};
pub use cuda::{emit_kernel, kernel_name};
pub use driver::{emit_driver, emit_source};
pub use hip::emit_hip_kernel;
pub use lint::{lint_kernel_plan, lint_kernel_source, LintFindings};
pub use opencl::emit_opencl_kernel;
pub(crate) use passes::print_backend;
pub use passes::{emit_backend_kernel_with_passes, lower_with_passes, vector_width, PassConfig};
