//! CUDA code emission.
//!
//! Given a lowered [`KernelPlan`](cogent_gpu_sim::KernelPlan), emits the
//! CUDA kernel of Algorithm 1 plus a host driver. Tile sizes and mappings
//! are baked into the kernel as compile-time constants; tensor extents are
//! runtime parameters, so one generated kernel supports arbitrary problem
//! sizes (the representative size only drove the parameter selection).
//!
//! The emitter and the functional executor in `cogent-gpu-sim` consume the
//! same plan, so the executor's correctness checks exercise the same
//! staging structure and index arithmetic the emitted text encodes.

mod cuda;
mod driver;
mod lint;
mod opencl;

pub use cuda::{emit_kernel, kernel_name};
pub use driver::{emit_driver, emit_source};
pub use lint::{lint_kernel_source, LintFindings};
pub use opencl::emit_opencl_kernel;
