//! Shared test fixtures for the codegen backends.
#![cfg(test)]

use cogent_gpu_sim::plan::{IndexBinding, KernelPlan, MapDim};
use cogent_ir::Contraction;

/// The paper's running example (Equation 1, `abcd-aebf-dfce`) with the
/// plan used throughout the backend tests: a 16×16 thread block, a 4-wide
/// register tile on `b`, grid-mapped `c`, and two serial k indices.
pub fn eq1_plan() -> KernelPlan {
    let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
    KernelPlan::new(
        &tc,
        vec![
            IndexBinding::new("a", 64, 16, MapDim::ThreadX),
            IndexBinding::new("b", 64, 4, MapDim::RegX),
            IndexBinding::new("d", 64, 16, MapDim::ThreadY),
            IndexBinding::new("c", 64, 1, MapDim::Grid),
            IndexBinding::new("e", 32, 8, MapDim::SerialK),
            IndexBinding::new("f", 32, 2, MapDim::SerialK),
        ],
    )
    .unwrap()
}
