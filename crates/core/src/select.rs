//! Model-driven configuration selection: enumerate → prune → rank.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use cogent_gpu_model::{GpuDevice, Precision};
use cogent_ir::{Contraction, SizeMap};

use crate::config::KernelConfig;
use crate::constraints::{check_config, PruneRules};
use crate::cost::{transaction_cost, CostBreakdown};
use crate::enumerate::{enumerate_configs_bounded, EnumerationBudget, EnumerationOptions};

/// A configuration together with its modelled cost.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RankedConfig {
    /// The kernel configuration.
    pub config: KernelConfig,
    /// Modelled DRAM transactions (lower is better).
    pub cost: CostBreakdown,
}

/// Statistics and results of one model-driven search.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SearchOutcome {
    /// The normalized contraction the configurations refer to.
    pub contraction: Contraction,
    /// Size of the raw (unpruned) space per the paper's §IV arithmetic.
    pub raw_space: u128,
    /// Configurations produced by the structured enumeration.
    pub enumerated: usize,
    /// Configurations surviving the hardware/performance pruning.
    pub survivors: usize,
    /// How many configurations each pruning rule rejected (under the
    /// strict rules, even when relaxation later re-admitted some).
    pub prune_histogram: BTreeMap<String, usize>,
    /// Whether the thresholds had to be progressively relaxed because the
    /// strict rules pruned everything (tiny problems).
    pub rules_relaxed: bool,
    /// Whether the enumeration budget truncated the configuration space
    /// before it was exhausted (pathological high-rank contractions).
    pub truncated: bool,
    /// Survivors ranked by modelled cost, best first (truncated to the
    /// requested `top_k`).
    pub ranked: Vec<RankedConfig>,
}

impl SearchOutcome {
    /// The best configuration, when any survived.
    pub fn best(&self) -> Option<&RankedConfig> {
        self.ranked.first()
    }

    /// Fraction of enumerated configurations pruned before cost
    /// evaluation (the paper reports ≈97% across the benchmarks).
    pub fn pruned_fraction(&self) -> f64 {
        if self.enumerated == 0 {
            return 0.0;
        }
        1.0 - self.survivors as f64 / self.enumerated as f64
    }
}

/// Search controls.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOptions {
    /// Enumeration menus.
    pub enumeration: EnumerationOptions,
    /// Pruning thresholds.
    pub rules: PruneRules,
    /// How many ranked survivors to keep.
    pub top_k: usize,
    /// Enumeration budget: stop after this many configurations. The
    /// default is far above any benchmark in the TCCG suite (Eq. 1
    /// enumerates a few thousand) but bounds memory on pathological
    /// high-rank contractions.
    pub max_configs: usize,
    /// Enumeration wall-clock budget, measured from the start of the
    /// search. `None` (the default) means unbounded.
    pub time_budget: Option<Duration>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            enumeration: EnumerationOptions::default(),
            rules: PruneRules::default(),
            top_k: 16,
            max_configs: 262_144,
            time_budget: None,
        }
    }
}

/// Runs the full model-driven search for `tc` under the representative
/// `sizes` on `device`.
///
/// When pruning eliminates everything (tiny problems on a big device), the
/// rules are progressively relaxed — first the parallelism/occupancy
/// floors, then the coalescing requirement — so a best-effort
/// configuration is always produced if the enumeration is non-empty.
///
/// # Examples
///
/// ```
/// use cogent_core::select::{search, SearchOptions};
/// use cogent_gpu_model::{GpuDevice, Precision};
/// use cogent_ir::{Contraction, SizeMap};
///
/// let tc: Contraction = "abcd-aebf-dfce".parse()?;
/// let sizes = SizeMap::uniform(&tc, 48);
/// let outcome = search(
///     &tc, &sizes, &GpuDevice::v100(), Precision::F64, &SearchOptions::default(),
/// );
/// let best = outcome.best().expect("a configuration survives");
/// assert!(best.cost.total() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn search(
    tc: &Contraction,
    sizes: &SizeMap,
    device: &GpuDevice,
    precision: Precision,
    options: &SearchOptions,
) -> SearchOutcome {
    let norm = tc.normalized();
    let raw_space = EnumerationOptions::raw_space_size(&norm);

    let budget = EnumerationBudget {
        max_configs: options.max_configs,
        deadline: options.time_budget.map(|t| Instant::now() + t),
    };
    let (configs, truncated) = {
        let _span = cogent_obs::span("enumerate");
        let (configs, truncated) =
            enumerate_configs_bounded(&norm, sizes, &options.enumeration, &budget);
        cogent_obs::counter("enumerate.configs", configs.len() as u128);
        cogent_obs::counter("enumerate.raw_space", raw_space);
        (configs, truncated)
    };
    let enumerated = configs.len();

    let prune_span = cogent_obs::span("prune");
    let mut histogram: BTreeMap<String, usize> = BTreeMap::new();
    let mut counter_histogram: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut survivors: Vec<KernelConfig> = Vec::new();
    for cfg in &configs {
        match check_config(&norm, cfg, sizes, device, precision, &options.rules) {
            Ok(()) => survivors.push(cfg.clone()),
            Err(reason) => {
                *histogram.entry(reason.to_string()).or_default() += 1;
                *counter_histogram.entry(reason.counter_key()).or_default() += 1;
            }
        }
    }

    // Progressive relaxation for small problems.
    let mut rules_relaxed = false;
    if survivors.is_empty() {
        rules_relaxed = true;
        let mut relaxed = options.rules.clone();
        relaxed.min_blocks_per_sm = 0.0;
        relaxed.min_occupancy = 0.0;
        relaxed.min_threads = 1;
        survivors = configs
            .iter()
            .filter(|c| check_config(&norm, c, sizes, device, precision, &relaxed).is_ok())
            .cloned()
            .collect();
        if survivors.is_empty() {
            relaxed.require_input_fvi_coalescing = false;
            survivors = configs
                .iter()
                .filter(|c| check_config(&norm, c, sizes, device, precision, &relaxed).is_ok())
                .cloned()
                .collect();
        }
    }
    cogent_obs::counter("prune.checked", enumerated as u128);
    cogent_obs::counter("prune.survivors", survivors.len() as u128);
    cogent_obs::counter("prune.relaxed", u128::from(rules_relaxed));
    for (key, count) in &counter_histogram {
        cogent_obs::counter(key, *count as u128);
    }
    drop(prune_span);

    let survivor_count = survivors.len();
    let rank_span = cogent_obs::span("rank");
    let mut ranked: Vec<RankedConfig> = survivors
        .into_iter()
        .map(|config| {
            let cost = transaction_cost(&norm, &config, sizes, device, precision);
            RankedConfig { config, cost }
        })
        .collect();
    ranked.sort_by_key(|r| r.cost.total());
    ranked.truncate(options.top_k);
    cogent_obs::counter("rank.kept", ranked.len() as u128);
    if let Some(best) = ranked.first() {
        cogent_obs::counter("rank.best_model_cost", best.cost.total());
    }
    drop(rank_span);

    SearchOutcome {
        contraction: norm.clone(),
        raw_space,
        enumerated,
        survivors: survivor_count,
        prune_histogram: histogram,
        rules_relaxed,
        truncated,
        ranked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tccg: &str, n: usize) -> SearchOutcome {
        let tc: Contraction = tccg.parse().unwrap();
        let sizes = SizeMap::uniform(&tc, n);
        search(
            &tc,
            &sizes,
            &GpuDevice::v100(),
            Precision::F64,
            &SearchOptions::default(),
        )
    }

    #[test]
    fn eq1_search_finds_config() {
        let o = run("abcd-aebf-dfce", 48);
        assert!(o.enumerated > 0);
        assert!(o.best().is_some());
        // Costs are sorted ascending.
        for pair in o.ranked.windows(2) {
            assert!(pair[0].cost.total() <= pair[1].cost.total());
        }
    }

    #[test]
    fn pruning_removes_a_large_fraction() {
        // On realistic CCSD(T)-like shapes most enumerated configs violate
        // a constraint; the paper reports ~97%.
        let o = run("abcdef-gdab-efgc", 16);
        assert!(o.enumerated > o.survivors);
        assert!(o.pruned_fraction() > 0.3, "pruned {}", o.pruned_fraction());
    }

    #[test]
    fn histogram_accounts_for_all_pruned() {
        let o = run("abcd-aebf-dfce", 48);
        if !o.rules_relaxed {
            let pruned: usize = o.prune_histogram.values().sum();
            assert_eq!(pruned + o.survivors, o.enumerated);
        }
    }

    #[test]
    fn tiny_problem_relaxation_still_yields_config() {
        let o = run("ij-ik-kj", 8);
        assert!(o.best().is_some(), "relaxation must keep a config");
    }

    #[test]
    fn best_config_is_lowerable_and_correct() {
        use cogent_gpu_sim::execute_plan;
        use cogent_tensor::reference::{contract_reference, random_inputs};

        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 12);
        let o = search(
            &tc,
            &sizes,
            &GpuDevice::v100(),
            Precision::F64,
            &SearchOptions::default(),
        );
        let best = o.best().unwrap();
        let norm = tc.normalized();
        let plan = best.config.lower(&norm, &sizes).unwrap();
        let (a, b) = random_inputs::<f64>(&norm, &sizes, 17);
        let got = execute_plan(&plan, &a, &b);
        let want = contract_reference(&norm, &sizes, &a, &b);
        assert!(got.approx_eq(&want, 1e-11));
    }

    #[test]
    fn top_k_truncates() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 48);
        let opts = SearchOptions {
            top_k: 3,
            ..SearchOptions::default()
        };
        let o = search(&tc, &sizes, &GpuDevice::v100(), Precision::F64, &opts);
        assert!(o.ranked.len() <= 3);
    }

    #[test]
    fn enumeration_budget_truncates_search() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 48);
        let opts = SearchOptions {
            max_configs: 64,
            ..SearchOptions::default()
        };
        let o = search(&tc, &sizes, &GpuDevice::v100(), Precision::F64, &opts);
        assert!(o.truncated);
        assert_eq!(o.enumerated, 64);
        // Histogram consistency holds for the truncated space too.
        if !o.rules_relaxed {
            let pruned: usize = o.prune_histogram.values().sum();
            assert_eq!(pruned + o.survivors, o.enumerated);
        }
    }

    #[test]
    fn raw_space_reported() {
        let o = run("abcd-aebf-dfce", 48);
        assert_eq!(o.raw_space, 3_981_312);
        assert!((o.enumerated as u128) < o.raw_space);
    }
}
