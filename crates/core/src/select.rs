//! Model-driven configuration selection: enumerate → prune → rank.
//!
//! Pruning and cost ranking are embarrassingly parallel — every
//! configuration is checked and costed independently — so both phases can
//! be chunked across [`SearchOptions::threads`] worker threads (the
//! `COGENT_THREADS` environment variable seeds the default). The result
//! is **bit-for-bit identical** to the serial search: chunks are merged
//! in enumeration order, per-chunk prune histograms are folded
//! deterministically, and the final ranking uses a stable sort keyed by
//! `(model cost, total config order)` so equal-cost candidates never
//! depend on enumeration or interleaving order.
//!
//! Observability follows the work, not the coordinator: each chunk
//! records its counters on the thread that ran it. Serially they attach
//! to the open `prune`/`rank` span; in parallel they attach to relayed
//! `prune.worker`/`rank.worker` spans ([`cogent_obs::fork`]) that carry
//! the worker's thread id and merge into the parent trace in chunk
//! order, and the same metrics reach the process-global registry
//! through each worker's own shard.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use cogent_gpu_model::{GpuDevice, Precision};
use cogent_ir::{Contraction, SizeMap};

use crate::config::KernelConfig;
use crate::constraints::{check_config_fast, PruneReason, PruneRules};
use crate::cost::{transaction_cost_fast, CostBreakdown};
use crate::enumerate::{enumerate_interned, Enumeration, EnumerationBudget, EnumerationOptions};

/// Environment variable seeding [`SearchOptions::threads`] (and the
/// worker count of `Cogent::generate_many`). Unset, empty or unparsable
/// values mean `1` (serial).
pub const THREADS_ENV_VAR: &str = "COGENT_THREADS";

/// Reads [`THREADS_ENV_VAR`], clamped to at least 1. Malformed values
/// fall back to serial; front-ends that want to reject them instead (the
/// CLI exits 2, `cogent serve` refuses to start) should call
/// [`threads_from_env_checked`] first.
pub fn threads_from_env() -> usize {
    threads_from_env_checked().unwrap_or(1).max(1)
}

/// Reads [`THREADS_ENV_VAR`] strictly: unset or empty means 1, and
/// anything that does not parse as a positive integer — including `0` —
/// is an error (one-line diagnostic, without the `cogent: ` prefix).
pub fn threads_from_env_checked() -> Result<usize, String> {
    parse_threads(std::env::var(THREADS_ENV_VAR).ok().as_deref())
}

/// The parsing rule behind [`threads_from_env_checked`], split out so the
/// diagnostic is testable without touching the process environment.
pub fn parse_threads(raw: Option<&str>) -> Result<usize, String> {
    let Some(raw) = raw else {
        return Ok(1);
    };
    let value = raw.trim();
    if value.is_empty() {
        return Ok(1);
    }
    match value.parse::<usize>() {
        Ok(0) | Err(_) => Err(format!(
            "{THREADS_ENV_VAR}: invalid value {value:?} (want a positive integer)"
        )),
        Ok(n) => Ok(n),
    }
}

/// A configuration together with its modelled cost.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RankedConfig {
    /// The kernel configuration.
    pub config: KernelConfig,
    /// Modelled DRAM transactions (lower is better).
    pub cost: CostBreakdown,
}

/// Statistics and results of one model-driven search.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SearchOutcome {
    /// The normalized contraction the configurations refer to.
    pub contraction: Contraction,
    /// Size of the raw (unpruned) space per the paper's §IV arithmetic.
    pub raw_space: u128,
    /// Configurations produced by the structured enumeration.
    pub enumerated: usize,
    /// Configurations surviving the hardware/performance pruning.
    pub survivors: usize,
    /// How many configurations each pruning rule rejected. Strict-pass
    /// rejections use the rule name alone; rejections during progressive
    /// relaxation are folded in under distinct `relaxed(...)` keys, so a
    /// configuration re-checked by a relaxed pass is counted once per
    /// pass (the histogram tallies *work*, not unique configurations).
    pub prune_histogram: BTreeMap<String, usize>,
    /// Whether the thresholds had to be progressively relaxed because the
    /// strict rules pruned everything (tiny problems).
    pub rules_relaxed: bool,
    /// Whether any phase stopped early on a budget: the enumeration hit
    /// `max_configs` (pathological high-rank contractions), or the
    /// `time_budget` deadline expired during enumeration, pruning or
    /// ranking. A truncated outcome is best-effort and is never cached.
    pub truncated: bool,
    /// Survivors ranked by modelled cost, best first (truncated to the
    /// requested `top_k`). Equal costs are broken by the configuration's
    /// total order, so the ranking is a pure function of the candidate
    /// *set* — serial and parallel searches agree byte for byte.
    pub ranked: Vec<RankedConfig>,
}

impl SearchOutcome {
    /// The best configuration, when any survived.
    pub fn best(&self) -> Option<&RankedConfig> {
        self.ranked.first()
    }

    /// Fraction of enumerated configurations pruned before cost
    /// evaluation (the paper reports ≈97% across the benchmarks).
    pub fn pruned_fraction(&self) -> f64 {
        if self.enumerated == 0 {
            return 0.0;
        }
        1.0 - self.survivors as f64 / self.enumerated as f64
    }
}

/// Search controls.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOptions {
    /// Enumeration menus.
    pub enumeration: EnumerationOptions,
    /// Pruning thresholds.
    pub rules: PruneRules,
    /// How many ranked survivors to keep.
    pub top_k: usize,
    /// Enumeration budget: stop after this many configurations. The
    /// default is far above any benchmark in the TCCG suite (Eq. 1
    /// enumerates a few thousand) but bounds memory on pathological
    /// high-rank contractions.
    pub max_configs: usize,
    /// Wall-clock budget for the whole search, measured from its start.
    /// The deadline is enforced in every phase — enumeration, each prune
    /// pass, and ranking all re-check it on a 128-iteration interval and
    /// stop early with [`SearchOutcome::truncated`] set. `None` (the
    /// default) means unbounded.
    pub time_budget: Option<Duration>,
    /// Worker threads for the prune and rank phases (1 = serial). The
    /// default comes from the `COGENT_THREADS` environment variable
    /// ([`threads_from_env`]). The search outcome is identical for every
    /// thread count; only wall-clock time changes.
    pub threads: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            enumeration: EnumerationOptions::default(),
            rules: PruneRules::default(),
            top_k: 16,
            max_configs: 262_144,
            time_budget: None,
            threads: threads_from_env(),
        }
    }
}

/// How many worker threads to actually use for `len` items.
fn effective_threads(threads: usize, len: usize) -> usize {
    threads.max(1).min(len.max(1))
}

/// Runs `work` over `items` split into at most `threads` contiguous
/// chunks, returning the per-chunk results **in chunk order**. With one
/// effective thread the work runs inline on the caller's thread, so
/// observability metrics fired inside `work` attach to the open phase
/// span exactly as before threading existed. Otherwise each chunk runs
/// on its own scoped thread under a relayed `<phase>.worker` span
/// ([`cogent_obs::fork`]): worker-side counters and histograms land on
/// that span (and merge into the global metric registry from the worker
/// thread itself), and the worker subtrees are attached to the parent
/// trace in chunk order after the join — no main-thread re-counting.
fn run_chunked<'e, T, R>(
    items: &'e [T],
    threads: usize,
    phase: &str,
    work: impl Fn(&'e [T]) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return vec![work(items)];
    }
    let chunk_len = items.len().div_ceil(threads);
    let fork = cogent_obs::fork();
    let results = std::thread::scope(|scope| {
        let fork = fork.as_ref();
        let work = &work;
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(index, chunk)| {
                scope.spawn(move || {
                    let _worker = fork.map(|f| f.open(&format!("{phase}.worker"), index));
                    work(chunk)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    // All workers have joined; splice their spans under the open phase
    // span in chunk order.
    if let Some(fork) = fork {
        fork.attach();
    }
    results
}

/// How often the prune/rank loops re-read the wall clock when a deadline
/// is set (`Instant::now` costs far more than one rule check). Iteration 0
/// is a multiple of the interval, so an already-expired deadline stops a
/// chunk before any work happens.
const DEADLINE_CHECK_INTERVAL: usize = 128;

/// Accumulated results of one pruning pass (strict or relaxed).
#[derive(Default)]
struct PrunePass {
    /// Surviving arena indices, in enumeration order.
    survivors: Vec<u32>,
    /// Rejections per rule, indexed by [`PruneReason::index`]. Static
    /// tallies only — the string-keyed histogram the outcome reports is
    /// folded from these once, at assembly, instead of `format!`-ing a
    /// key per rejection.
    reasons: [usize; PruneReason::ALL.len()],
    /// `check_config_fast` invocations performed.
    checked: usize,
    /// Whether the deadline expired before the pass saw every candidate.
    truncated: bool,
}

impl PrunePass {
    fn absorb(&mut self, other: PrunePass) {
        self.survivors.extend(other.survivors);
        for (mine, theirs) in self.reasons.iter_mut().zip(other.reasons) {
            *mine += theirs;
        }
        self.checked += other.checked;
        self.truncated |= other.truncated;
    }

    /// Folds the static tallies into the outcome's human-readable
    /// histogram under this pass's key scheme (rule name alone for the
    /// strict pass, `"<tag>: <rule>"` for relaxation passes).
    fn fold_into(&self, histogram: &mut BTreeMap<String, usize>, relaxed_tag: Option<&str>) {
        for (reason, &count) in PruneReason::ALL.iter().zip(&self.reasons) {
            if count > 0 {
                let key = match relaxed_tag {
                    None => reason.to_string(),
                    Some(tag) => format!("{tag}: {reason}"),
                };
                *histogram.entry(key).or_default() += count;
            }
        }
    }
}

/// The inputs a prune pass shares across all of its chunks: what to check
/// against, and whether this is a relaxation pass (`relaxed` selects the
/// `prune.relaxed.reject.*` counter names so relaxation passes stay
/// distinguishable from the strict pass).
#[derive(Clone, Copy)]
struct PruneCtx<'a> {
    device: &'a GpuDevice,
    precision: Precision,
    rules: &'a PruneRules,
    relaxed: bool,
}

/// One full pass of `check_config_fast` over the arena candidates named by
/// `indices`, chunked across `threads` workers and merged in enumeration
/// order. A set `deadline` is re-checked every
/// [`DEADLINE_CHECK_INTERVAL`] candidates; expiry stops the chunk and
/// marks the pass truncated.
fn prune_pass(
    en: &Enumeration,
    indices: &[u32],
    ctx: PruneCtx<'_>,
    threads: usize,
    deadline: Option<Instant>,
) -> PrunePass {
    let chunks = run_chunked(indices, threads, "prune", |chunk: &[u32]| {
        let mut pass = PrunePass::default();
        for (k, &i) in chunk.iter().enumerate() {
            if let Some(d) = deadline {
                if k.is_multiple_of(DEADLINE_CHECK_INTERVAL) && Instant::now() >= d {
                    pass.truncated = true;
                    break;
                }
            }
            pass.checked += 1;
            let i = i as usize;
            match check_config_fast(
                &en.tables,
                en.compiled.dims(en.arena.choice(i)),
                en.arena.tiles(i),
                ctx.device,
                ctx.precision,
                ctx.rules,
            ) {
                Ok(()) => pass.survivors.push(i as u32),
                Err(reason) => pass.reasons[reason.index()] += 1,
            }
        }
        // Recorded here, on the thread doing the work: serially these
        // land on the open "prune" span; on a worker thread they land on
        // its relayed "prune.worker" span and reach the global metric
        // registry through the worker's own shard.
        cogent_obs::counter("prune.checked", pass.checked as u128);
        for (reason, &count) in PruneReason::ALL.iter().zip(&pass.reasons) {
            if count > 0 {
                let key = if ctx.relaxed {
                    reason.relaxed_counter_key()
                } else {
                    reason.counter_key()
                };
                cogent_obs::counter(key, count as u128);
            }
        }
        pass
    });
    let mut merged = PrunePass::default();
    for chunk in chunks {
        merged.absorb(chunk);
    }
    merged
}

/// Costs the surviving candidates, chunked across `threads` workers and
/// merged in survivor order. Returns `(scored, truncated)`: a set
/// `deadline` stops a chunk mid-scoring (same interval discipline as
/// pruning) and reports the truncation.
fn rank_pass(
    en: &Enumeration,
    survivors: &[u32],
    device: &GpuDevice,
    precision: Precision,
    threads: usize,
    deadline: Option<Instant>,
) -> (Vec<(u32, CostBreakdown)>, bool) {
    let chunks = run_chunked(survivors, threads, "rank", |chunk: &[u32]| {
        // A dedicated "cost" span: the model evaluation is the hot part
        // of ranking and the profiler attributes it separately from the
        // sort. transaction_cost_fast counts each evaluation on the
        // evaluating thread — worker evaluations reach the trace through
        // their relayed spans, with no main-thread re-counting.
        let _cost = cogent_obs::span("cost");
        let mut scored = Vec::with_capacity(chunk.len());
        let mut truncated = false;
        for (k, &i) in chunk.iter().enumerate() {
            if let Some(d) = deadline {
                if k.is_multiple_of(DEADLINE_CHECK_INTERVAL) && Instant::now() >= d {
                    truncated = true;
                    break;
                }
            }
            let cost = transaction_cost_fast(
                &en.tables,
                en.compiled.dims(en.arena.choice(i as usize)),
                en.arena.tiles(i as usize),
                device,
                precision,
            );
            scored.push((i, cost));
        }
        (scored, truncated)
    });
    let mut scored = Vec::with_capacity(survivors.len());
    let mut truncated = false;
    for (chunk, chunk_truncated) in chunks {
        scored.extend(chunk);
        truncated |= chunk_truncated;
    }
    (scored, truncated)
}

/// Runs the full model-driven search for `tc` under the representative
/// `sizes` on `device`.
///
/// When pruning eliminates everything (tiny problems on a big device), the
/// rules are progressively relaxed — first the parallelism/occupancy
/// floors, then the coalescing requirement — so a best-effort
/// configuration is always produced if the enumeration is non-empty.
///
/// The search is deterministic: for a given input it returns the same
/// [`SearchOutcome`] whatever [`SearchOptions::threads`] is set to, and
/// equal-cost candidates are ordered by the configuration's total order
/// rather than by enumeration position.
///
/// # Examples
///
/// ```
/// use cogent_core::select::{search, SearchOptions};
/// use cogent_gpu_model::{GpuDevice, Precision};
/// use cogent_ir::{Contraction, SizeMap};
///
/// let tc: Contraction = "abcd-aebf-dfce".parse()?;
/// let sizes = SizeMap::uniform(&tc, 48);
/// let outcome = search(
///     &tc, &sizes, &GpuDevice::v100(), Precision::F64, &SearchOptions::default(),
/// );
/// let best = outcome.best().expect("a configuration survives");
/// assert!(best.cost.total() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn search(
    tc: &Contraction,
    sizes: &SizeMap,
    device: &GpuDevice,
    precision: Precision,
    options: &SearchOptions,
) -> SearchOutcome {
    // One parent span for the whole selection: the inter-phase seams
    // (survivor collection, outcome assembly, freeing the enumeration)
    // attribute to `search` self time instead of vanishing into the
    // caller's span, so `cogent profile` coverage stays honest.
    let _span = cogent_obs::span("search");
    let norm = tc.normalized();
    let raw_space = EnumerationOptions::raw_space_size(&norm);
    let threads = options.threads.max(1);

    let deadline = options.time_budget.map(|t| Instant::now() + t);
    let budget = EnumerationBudget {
        max_configs: options.max_configs,
        deadline,
    };
    let en = {
        let _span = cogent_obs::span("enumerate");
        let en = enumerate_interned(&norm, sizes, &options.enumeration, &budget);
        cogent_obs::counter("enumerate.configs", en.arena.len() as u128);
        cogent_obs::counter("enumerate.raw_space", raw_space);
        en
    };
    let enumerated = en.arena.len();
    let all_indices: Vec<u32> = (0..enumerated as u32).collect();

    let prune_span = cogent_obs::span("prune");
    let mut pruned = prune_pass(
        &en,
        &all_indices,
        PruneCtx {
            device,
            precision,
            rules: &options.rules,
            relaxed: false,
        },
        threads,
        deadline,
    );
    let mut histogram = BTreeMap::new();
    pruned.fold_into(&mut histogram, None);

    // Progressive relaxation for small problems. Every relaxed
    // `check_config_fast` invocation is accounted: the passes add to
    // `checked` and fold their rejections into the histogram/counters
    // under distinct keys, so `cogent explain` reports the work actually
    // done. An expired deadline skips relaxation — the budget is already
    // blown (whether it cut enumeration or the strict pass short), and the
    // empty survivor set reflects truncation, not genuinely unprunable
    // rules.
    let deadline_expired = deadline.is_some_and(|d| Instant::now() >= d);
    let mut rules_relaxed = false;
    if pruned.survivors.is_empty() && !pruned.truncated && !deadline_expired {
        rules_relaxed = true;
        let mut relaxed = options.rules.clone();
        relaxed.min_blocks_per_sm = 0.0;
        relaxed.min_occupancy = 0.0;
        relaxed.min_threads = 1;
        let pass = prune_pass(
            &en,
            &all_indices,
            PruneCtx {
                device,
                precision,
                rules: &relaxed,
                relaxed: true,
            },
            threads,
            deadline,
        );
        pass.fold_into(&mut histogram, Some("relaxed(parallelism)"));
        let had_survivors = !pass.survivors.is_empty();
        let pass_truncated = pass.truncated;
        pruned.absorb(pass);
        if !had_survivors && !pass_truncated {
            relaxed.require_input_fvi_coalescing = false;
            let pass = prune_pass(
                &en,
                &all_indices,
                PruneCtx {
                    device,
                    precision,
                    rules: &relaxed,
                    relaxed: true,
                },
                threads,
                deadline,
            );
            pass.fold_into(&mut histogram, Some("relaxed(coalescing)"));
            pruned.absorb(pass);
        }
    }
    let survivors = pruned.survivors;
    let prune_truncated = pruned.truncated;
    // Per-check counters were recorded by the pruning threads themselves;
    // only the pass-level summary belongs to the main thread.
    cogent_obs::counter("prune.survivors", survivors.len() as u128);
    cogent_obs::counter("prune.relaxed", u128::from(rules_relaxed));
    drop(prune_span);

    let survivor_count = survivors.len();
    let rank_span = cogent_obs::span("rank");
    let (mut scored, rank_truncated) =
        rank_pass(&en, &survivors, device, precision, threads, deadline);
    // Deterministic ranking: stable sort on (modelled cost, config total
    // order) — the compiled menus' rank keys reproduce `KernelConfig`'s
    // derived `Ord` without materializing a config per comparison. Two
    // entries compare equal only when they are the same configuration, so
    // the result is independent of enumeration order.
    scored.sort_by_key(|&(i, cost)| {
        (
            cost.total(),
            en.compiled.rank_key(en.arena.choice(i as usize)),
        )
    });
    scored.truncate(options.top_k);
    // Only the kept top-k candidates are ever materialized into owned
    // `KernelConfig`s.
    let ranked: Vec<RankedConfig> = scored
        .into_iter()
        .map(|(i, cost)| RankedConfig {
            config: en.menus.materialize(en.arena.choice(i as usize)),
            cost,
        })
        .collect();
    cogent_obs::counter("rank.kept", ranked.len() as u128);
    if let Some(best) = ranked.first() {
        cogent_obs::counter("rank.best_model_cost", best.cost.total());
    }
    drop(rank_span);

    SearchOutcome {
        contraction: norm,
        raw_space,
        enumerated,
        survivors: survivor_count,
        prune_histogram: histogram,
        rules_relaxed,
        truncated: en.truncated || prune_truncated || rank_truncated,
        ranked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tccg: &str, n: usize) -> SearchOutcome {
        let tc: Contraction = tccg.parse().unwrap();
        let sizes = SizeMap::uniform(&tc, n);
        search(
            &tc,
            &sizes,
            &GpuDevice::v100(),
            Precision::F64,
            &SearchOptions::default(),
        )
    }

    fn run_with_threads(tccg: &str, n: usize, threads: usize) -> SearchOutcome {
        let tc: Contraction = tccg.parse().unwrap();
        let sizes = SizeMap::uniform(&tc, n);
        let opts = SearchOptions {
            threads,
            ..SearchOptions::default()
        };
        search(&tc, &sizes, &GpuDevice::v100(), Precision::F64, &opts)
    }

    #[test]
    fn eq1_search_finds_config() {
        let o = run("abcd-aebf-dfce", 48);
        assert!(o.enumerated > 0);
        assert!(o.best().is_some());
        // Costs are sorted ascending.
        for pair in o.ranked.windows(2) {
            assert!(pair[0].cost.total() <= pair[1].cost.total());
        }
    }

    #[test]
    fn pruning_removes_a_large_fraction() {
        // On realistic CCSD(T)-like shapes most enumerated configs violate
        // a constraint; the paper reports ~97%.
        let o = run("abcdef-gdab-efgc", 16);
        assert!(o.enumerated > o.survivors);
        assert!(o.pruned_fraction() > 0.3, "pruned {}", o.pruned_fraction());
    }

    #[test]
    fn histogram_accounts_for_all_pruned() {
        let o = run("abcd-aebf-dfce", 48);
        if !o.rules_relaxed {
            let pruned: usize = o.prune_histogram.values().sum();
            assert_eq!(pruned + o.survivors, o.enumerated);
        }
    }

    #[test]
    fn tiny_problem_relaxation_still_yields_config() {
        let o = run("ij-ik-kj", 8);
        assert!(o.best().is_some(), "relaxation must keep a config");
    }

    #[test]
    fn relaxed_pass_rejections_reach_the_histogram() {
        let o = run("ij-ik-kj", 8);
        assert!(o.rules_relaxed, "an 8^3 matmul must relax on a V100");
        assert!(
            o.prune_histogram.keys().any(|k| k.starts_with("relaxed(")),
            "relaxed rejections missing from histogram: {:?}",
            o.prune_histogram
        );
        // The strict pass rejected everything; its entries are intact.
        let strict: usize = o
            .prune_histogram
            .iter()
            .filter(|(k, _)| !k.starts_with("relaxed("))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(strict, o.enumerated);
    }

    #[test]
    fn serial_and_parallel_searches_are_identical() {
        for (tccg, n) in [
            ("abcd-aebf-dfce", 48),
            ("abcdef-gdab-efgc", 16),
            ("ij-ik-kj", 8),
        ] {
            let serial = run_with_threads(tccg, n, 1);
            for threads in [2, 4, 7] {
                let parallel = run_with_threads(tccg, n, threads);
                assert_eq!(serial, parallel, "{tccg} diverges at {threads} threads");
            }
        }
    }

    #[test]
    fn equal_cost_ties_follow_config_order() {
        let o = run("abcd-aebf-dfce", 48);
        for pair in o.ranked.windows(2) {
            if pair[0].cost.total() == pair[1].cost.total() {
                assert!(
                    pair[0].config < pair[1].config,
                    "tie not broken by config order: {} vs {}",
                    pair[0].config,
                    pair[1].config
                );
            }
        }
    }

    #[test]
    fn best_config_is_lowerable_and_correct() {
        use cogent_gpu_sim::execute_plan;
        use cogent_tensor::reference::{contract_reference, random_inputs};

        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 12);
        let o = search(
            &tc,
            &sizes,
            &GpuDevice::v100(),
            Precision::F64,
            &SearchOptions::default(),
        );
        let best = o.best().unwrap();
        let norm = tc.normalized();
        let plan = best.config.lower(&norm, &sizes).unwrap();
        let (a, b) = random_inputs::<f64>(&norm, &sizes, 17);
        let got = execute_plan(&plan, &a, &b);
        let want = contract_reference(&norm, &sizes, &a, &b);
        assert!(got.approx_eq(&want, 1e-11));
    }

    #[test]
    fn top_k_truncates() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 48);
        let opts = SearchOptions {
            top_k: 3,
            ..SearchOptions::default()
        };
        let o = search(&tc, &sizes, &GpuDevice::v100(), Precision::F64, &opts);
        assert!(o.ranked.len() <= 3);
    }

    #[test]
    fn enumeration_budget_truncates_search() {
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 48);
        let opts = SearchOptions {
            max_configs: 64,
            ..SearchOptions::default()
        };
        let o = search(&tc, &sizes, &GpuDevice::v100(), Precision::F64, &opts);
        assert!(o.truncated);
        assert_eq!(o.enumerated, 64);
        // Histogram consistency holds for the truncated space too.
        if !o.rules_relaxed {
            let pruned: usize = o.prune_histogram.values().sum();
            assert_eq!(pruned + o.survivors, o.enumerated);
        }
    }

    #[test]
    fn expired_deadline_truncates_the_whole_search() {
        // Regression: time_budget used to cover only enumeration. A search
        // started with an already-expired deadline must come back truncated
        // without doing per-candidate work in any phase.
        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let sizes = SizeMap::uniform(&tc, 48);
        let opts = SearchOptions {
            time_budget: Some(Duration::ZERO),
            ..SearchOptions::default()
        };
        let o = search(&tc, &sizes, &GpuDevice::v100(), Precision::F64, &opts);
        assert!(o.truncated);
        assert_eq!(o.enumerated, 0);
        assert!(o.ranked.is_empty());
        assert!(o.prune_histogram.is_empty());
        assert!(
            !o.rules_relaxed,
            "truncation must not masquerade as relaxation"
        );
    }

    #[test]
    fn expired_deadline_truncates_prune_and_rank_phases() {
        use crate::enumerate::enumerate_interned;

        let tc: Contraction = "abcd-aebf-dfce".parse().unwrap();
        let norm = tc.normalized();
        let sizes = SizeMap::uniform(&norm, 48);
        let en = enumerate_interned(
            &norm,
            &sizes,
            &EnumerationOptions::default(),
            &EnumerationBudget::unlimited(),
        );
        let all: Vec<u32> = (0..en.arena.len() as u32).collect();
        assert!(all.len() > DEADLINE_CHECK_INTERVAL);
        let device = GpuDevice::v100();
        let rules = PruneRules::default();
        let ctx = PruneCtx {
            device: &device,
            precision: Precision::F64,
            rules: &rules,
            relaxed: false,
        };
        let expired = Some(Instant::now());

        // Prune: iteration 0 already honors the deadline.
        let pass = prune_pass(&en, &all, ctx, 1, expired);
        assert!(pass.truncated);
        assert!(pass.survivors.is_empty());
        assert_eq!(pass.checked, 0);

        // Rank likewise scores nothing.
        let (scored, truncated) = rank_pass(&en, &all, &device, Precision::F64, 1, expired);
        assert!(truncated);
        assert!(scored.is_empty());

        // A generous deadline changes nothing relative to no deadline.
        let generous = Some(Instant::now() + Duration::from_secs(3600));
        let with = prune_pass(&en, &all, ctx, 1, generous);
        let without = prune_pass(&en, &all, ctx, 1, None);
        assert!(!with.truncated);
        assert_eq!(with.survivors, without.survivors);
        assert_eq!(with.reasons, without.reasons);
    }

    #[test]
    fn raw_space_reported() {
        let o = run("abcd-aebf-dfce", 48);
        assert_eq!(o.raw_space, 3_981_312);
        assert!((o.enumerated as u128) < o.raw_space);
    }

    #[test]
    fn run_chunked_preserves_order() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 4, 16] {
            let doubled: Vec<usize> = run_chunked(&items, threads, "test", |chunk: &[usize]| {
                chunk.iter().map(|x| x * 2).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn threads_env_parsing_defaults_to_one() {
        // The variable is read through SearchOptions::default(); exercise
        // the parser's fallback directly without mutating the process
        // environment (that would race other tests).
        assert!(threads_from_env() >= 1);
        assert!(SearchOptions::default().threads >= 1);
    }

    #[test]
    fn threads_parsing_is_strict_about_malformed_values() {
        assert_eq!(parse_threads(None), Ok(1));
        assert_eq!(parse_threads(Some("")), Ok(1));
        assert_eq!(parse_threads(Some(" 8 ")), Ok(8));
        let err = parse_threads(Some("zero")).unwrap_err();
        assert_eq!(
            err,
            "COGENT_THREADS: invalid value \"zero\" (want a positive integer)"
        );
        // 0 threads is meaningless, not "serial": it must be rejected so a
        // typo'd deployment does not silently run with a different shape.
        assert!(parse_threads(Some("0")).is_err());
        assert!(parse_threads(Some("-2")).is_err());
    }
}
