//! The bounded admission queue between connection threads and workers.
//!
//! Connection threads `try_push` (never block — a full queue is an
//! explicit 429 backpressure signal, not a hidden latency cliff) and
//! worker threads `pop` (block until a job arrives or the queue closes).
//! The queue tracks a latency EWMA so rejections can carry an honest
//! `Retry-After` estimate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the job is handed back.
    Full(T),
    /// The queue is closed (server draining); the job is handed back.
    Closed(T),
}

struct Inner<T> {
    deque: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue (mutex + condvar; the capacity is small enough
/// that lock contention is noise next to a kernel search).
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    takeable: Condvar,
    capacity: usize,
    /// EWMA of job service latency, nanoseconds (atomic so workers update
    /// it without the queue lock).
    ewma_ns: AtomicU64,
    /// EWMA of admission-queue wait, nanoseconds (same smoothing).
    wait_ewma_ns: AtomicU64,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                deque: VecDeque::new(),
                closed: false,
            }),
            takeable: Condvar::new(),
            capacity: capacity.max(1),
            ewma_ns: AtomicU64::new(0),
            wait_ewma_ns: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Enqueues without blocking. Returns the queue depth after the push.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`JobQueue::close`] — both return the job to the caller.
    pub fn try_push(&self, job: T) -> Result<usize, PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(job));
        }
        if inner.deque.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        inner.deque.push_back(job);
        let depth = inner.deque.len();
        drop(inner);
        self.takeable.notify_one();
        Ok(depth)
    }

    /// Blocks until a job is available (FIFO) or the queue is closed and
    /// empty (`None` — the worker should exit).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(job) = inner.deque.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .takeable
                .wait(inner)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().deque.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Closes the queue: pending jobs still drain, new pushes fail, and
    /// workers wake to observe the close.
    pub fn close(&self) {
        self.lock().closed = true;
        self.takeable.notify_all();
    }

    /// Drops every pending job without running it (the abrupt-kill
    /// path). Returns how many jobs were discarded.
    pub fn clear(&self) -> usize {
        let mut inner = self.lock();
        let dropped = inner.deque.len();
        inner.deque.clear();
        dropped
    }

    /// Whether [`JobQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Folds one observed service latency into the EWMA (α = 1/8, the
    /// classic TCP RTT smoothing constant).
    pub fn record_latency(&self, latency: Duration) {
        let sample = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let prev = self.ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            sample
        } else {
            prev - prev / 8 + sample / 8
        };
        self.ewma_ns.store(next, Ordering::Relaxed);
    }

    /// Folds one observed admission-queue wait into its EWMA (α = 1/8).
    pub fn record_queue_wait(&self, wait: Duration) {
        let sample = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
        let prev = self.wait_ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            sample
        } else {
            prev - prev / 8 + sample / 8
        };
        self.wait_ewma_ns.store(next, Ordering::Relaxed);
    }

    /// The smoothed admission-queue wait, nanoseconds (0 before any
    /// sample). Exposed through `/healthz` for operators.
    pub fn queue_wait_ewma_ns(&self) -> u64 {
        self.wait_ewma_ns.load(Ordering::Relaxed)
    }

    /// Honest `Retry-After` estimate when the queue is full: the time for
    /// `workers` to drain the current backlog at the observed service
    /// rate, rounded up to at least one second.
    pub fn retry_after_secs(&self, workers: usize) -> u64 {
        let ewma = self.ewma_ns.load(Ordering::Relaxed);
        if ewma == 0 {
            return 1;
        }
        let backlog = self.len() as u64 + 1;
        let workers = workers.max(1) as u64;
        let nanos = ewma.saturating_mul(backlog) / workers;
        (nanos / 1_000_000_000).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_capacity() {
        let q = JobQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn close_drains_then_stops_workers() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        assert_eq!(q.pop(), Some(1), "pending jobs still drain after close");
        assert_eq!(q.pop(), None, "then workers are released");
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(JobQueue::new(4));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(7u32).unwrap();
        assert_eq!(worker.join().unwrap(), Some(7));
    }

    #[test]
    fn retry_after_scales_with_backlog_and_latency() {
        let q = JobQueue::new(8);
        assert_eq!(q.retry_after_secs(2), 1, "no data yet: minimum 1s");
        q.record_latency(Duration::from_secs(4));
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        // 5 jobs (4 queued + the rejected one) at ~4s each over 2 workers.
        let estimate = q.retry_after_secs(2);
        assert!((8..=12).contains(&estimate), "estimate {estimate}");
        // EWMA converges toward faster samples.
        for _ in 0..64 {
            q.record_latency(Duration::from_millis(10));
        }
        assert!(q.retry_after_secs(2) < estimate);
    }

    #[test]
    fn queue_wait_ewma_smooths_samples() {
        let q = JobQueue::<u32>::new(2);
        assert_eq!(q.queue_wait_ewma_ns(), 0, "no samples yet");
        q.record_queue_wait(Duration::from_millis(8));
        assert_eq!(q.queue_wait_ewma_ns(), 8_000_000, "first sample seeds");
        q.record_queue_wait(Duration::from_millis(0));
        let after = q.queue_wait_ewma_ns();
        assert!((6_000_000..8_000_000).contains(&after), "{after}");
    }
}
