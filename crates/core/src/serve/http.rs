//! A deliberately small HTTP/1.1 server-side implementation.
//!
//! `cogent serve` speaks just enough HTTP for a JSON API behind a load
//! balancer: one request per connection (`Connection: close`), no chunked
//! transfer encoding, no keep-alive, no TLS. What it *does* take
//! seriously is hostile input: every read carries a per-read socket
//! timeout plus an overall deadline for the request head and body
//! (defeating slowloris clients that dribble one byte per second), the
//! head and body have hard size caps, and every failure maps to a typed
//! [`HttpError`] so the caller can answer with the right status code
//! instead of hanging or dying.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cogent_obs::json::Json;

/// Limits applied while reading one request. All fields are hard caps —
/// exceeding any of them aborts the read with a typed error.
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of declared (and read) body.
    pub max_body_bytes: usize,
    /// Wall-clock budget for receiving the full head.
    pub head_timeout: Duration,
    /// Wall-clock budget for receiving the full body.
    pub body_timeout: Duration,
    /// Per-`read(2)` socket timeout (bounds how long a silent peer can
    /// hold the thread between bytes).
    pub read_timeout: Duration,
}

impl Default for ReadLimits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
            head_timeout: Duration::from_secs(5),
            body_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(2),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Header names are lowercased; values are trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to one HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed or reset the connection mid-request (no response
    /// can be sent).
    Disconnected,
    /// The head or body did not arrive within its deadline → 408.
    Timeout {
        /// Which part of the request timed out (`"head"` or `"body"`).
        stage: &'static str,
    },
    /// The head exceeded [`ReadLimits::max_head_bytes`] → 431.
    HeadTooLarge,
    /// The declared or received body exceeded
    /// [`ReadLimits::max_body_bytes`] → 413.
    BodyTooLarge,
    /// The bytes received do not parse as HTTP → 400.
    Malformed(String),
}

impl HttpError {
    /// The status code this error answers with (`Disconnected` has none —
    /// there is nobody left to answer).
    pub fn status(&self) -> Option<(u16, &'static str, &'static str)> {
        match self {
            HttpError::Disconnected => None,
            HttpError::Timeout { .. } => Some((408, "Request Timeout", "request_timeout")),
            HttpError::HeadTooLarge => {
                Some((431, "Request Header Fields Too Large", "head_too_large"))
            }
            HttpError::BodyTooLarge => Some((413, "Content Too Large", "oversized_request")),
            HttpError::Malformed(_) => Some((400, "Bad Request", "malformed_request")),
        }
    }

    /// Human-oriented detail string for the error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::Disconnected => "peer disconnected".to_string(),
            HttpError::Timeout { stage } => format!("timed out receiving request {stage}"),
            HttpError::HeadTooLarge => "request head exceeds the configured limit".to_string(),
            HttpError::BodyTooLarge => "request body exceeds the configured limit".to_string(),
            HttpError::Malformed(why) => why.clone(),
        }
    }
}

/// Classifies one `read(2)` result under a deadline.
fn read_some(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    stage: &'static str,
) -> Result<usize, HttpError> {
    if Instant::now() >= deadline {
        return Err(HttpError::Timeout { stage });
    }
    match stream.read(buf) {
        Ok(0) => Err(HttpError::Disconnected),
        Ok(n) => Ok(n),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            // Per-read timeout expired; the overall deadline decides
            // whether to keep waiting.
            Ok(0)
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(0),
        Err(_) => Err(HttpError::Disconnected),
    }
}

/// Reads and parses one request under `limits`. The stream's read timeout
/// is set to [`ReadLimits::read_timeout`] as a side effect.
pub fn read_request(stream: &mut TcpStream, limits: &ReadLimits) -> Result<Request, HttpError> {
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    let _ = stream.set_nodelay(true);

    // Head: accumulate until the blank line, under cap and deadline.
    let head_deadline = Instant::now() + limits.head_timeout;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        let n = read_some(stream, &mut chunk, head_deadline, "head")?;
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec())
        .map_err(|_| HttpError::Malformed("request head is not valid UTF-8".to_string()))?;
    let mut request = parse_head(&head)?;

    // Body: read exactly Content-Length bytes (we never trust the peer to
    // just "send what it has" — a short body is a truncated request).
    let declared = match request.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
        None => 0,
    };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed(
            "chunked transfer encoding is not supported".to_string(),
        ));
    }
    if declared > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = buf[head_end + 4..].to_vec();
    let body_deadline = Instant::now() + limits.body_timeout;
    while body.len() < declared {
        let n = read_some(stream, &mut chunk, body_deadline, "body")?;
        body.extend_from_slice(&chunk[..n]);
        if body.len() > limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge);
        }
    }
    body.truncate(declared);
    request.body = body;
    Ok(request)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &str) -> Result<Request, HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".to_string()))?;
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path,
        headers,
        body: Vec::new(),
    })
}

/// One response, always `Connection: close`.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Reason phrase for the status line.
    pub reason: &'static str,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, reason: &'static str, json: &Json) -> Self {
        let mut body = String::new();
        json.write(&mut body);
        body.push('\n');
        Self {
            status,
            reason,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, reason: &'static str, body: String) -> Self {
        Self {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// The typed error envelope every non-2xx JSON response uses:
    /// `{"error":{"code":...,"detail":...}}`.
    pub fn error(status: u16, reason: &'static str, code: &str, detail: &str) -> Self {
        Self::json(
            status,
            reason,
            &Json::obj([(
                "error",
                Json::obj([
                    ("code", Json::Str(code.to_string())),
                    ("detail", Json::Str(detail.to_string())),
                ]),
            )]),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.extra_headers.push((name.to_string(), value));
        self
    }

    /// Tags the response with its request id: always as an
    /// `X-Request-Id` header, and — for JSON error envelopes (status ≥
    /// 400) — as `error.request_id` in the body too, so the id survives
    /// clients that only log bodies. Success bodies are never rewritten:
    /// warm 200s must stay byte-identical across requests and restarts.
    pub fn with_request_id(mut self, id: &str) -> Self {
        if self.status >= 400 && self.content_type == "application/json" {
            if let Ok(Json::Object(mut members)) = Json::parse(&self.body) {
                let mut tagged = false;
                if let Some((_, Json::Object(error))) =
                    members.iter_mut().find(|(k, _)| k == "error")
                {
                    if !error.iter().any(|(k, _)| k == "request_id") {
                        error.push(("request_id".to_string(), Json::Str(id.to_string())));
                        tagged = true;
                    }
                }
                if tagged {
                    let mut body = String::new();
                    Json::Object(members).write(&mut body);
                    body.push('\n');
                    self.body = body;
                }
            }
        }
        self.extra_headers
            .push(("X-Request-Id".to_string(), id.to_string()));
        self
    }

    /// Serializes and writes the response. Write errors are swallowed —
    /// the peer may already be gone, and the connection closes either way.
    pub fn send(&self, stream: &mut TcpStream) {
        let mut out = String::with_capacity(self.body.len() + 256);
        out.push_str(&format!("HTTP/1.1 {} {}\r\n", self.status, self.reason));
        out.push_str(&format!("Content-Type: {}\r\n", self.content_type));
        out.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        for (name, value) in &self.extra_headers {
            out.push_str(&format!("{name}: {value}\r\n"));
        }
        out.push_str("Connection: close\r\n\r\n");
        out.push_str(&self.body);
        let _ = stream.write_all(out.as_bytes());
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_head_extracts_method_path_headers() {
        let req =
            parse_head("POST /v1/generate?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 12")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/generate");
        assert_eq!(req.header("content-length"), Some("12"));
        assert_eq!(req.header("host"), Some("localhost"));
    }

    #[test]
    fn parse_head_rejects_garbage() {
        assert!(matches!(
            parse_head("not http at all"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_head("GET / SPDY/3"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_head("GET / HTTP/1.1\r\nbroken header line"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn error_statuses_are_stable() {
        assert_eq!(
            HttpError::Timeout { stage: "head" }.status(),
            Some((408, "Request Timeout", "request_timeout"))
        );
        assert_eq!(HttpError::HeadTooLarge.status().map(|s| s.0), Some(431));
        assert_eq!(HttpError::BodyTooLarge.status().map(|s| s.0), Some(413));
        assert_eq!(
            HttpError::Malformed(String::new()).status().map(|s| s.0),
            Some(400)
        );
        assert_eq!(HttpError::Disconnected.status(), None);
    }

    #[test]
    fn response_error_envelope_shape() {
        let resp = Response::error(429, "Too Many Requests", "saturated", "queue full");
        assert!(resp.body.contains("\"code\":\"saturated\""));
        assert!(resp.body.contains("\"detail\":\"queue full\""));
    }

    #[test]
    fn request_id_tags_headers_and_error_bodies() {
        // Errors carry the id in both the header and the envelope.
        let resp = Response::error(504, "Gateway Timeout", "deadline_exceeded", "too slow")
            .with_request_id("req-000007");
        assert!(resp
            .extra_headers
            .iter()
            .any(|(k, v)| k == "X-Request-Id" && v == "req-000007"));
        assert!(
            resp.body.contains("\"request_id\":\"req-000007\""),
            "{}",
            resp.body
        );
        // Tagging twice does not duplicate the body member.
        let twice = Response::error(500, "Internal Server Error", "worker_panic", "boom")
            .with_request_id("a")
            .with_request_id("a");
        assert_eq!(twice.body.matches("request_id").count(), 1);
        // Success bodies stay byte-identical; only the header is added.
        let ok_body = "{\"cache\":\"hit\"}\n".to_string();
        let ok = Response::json(200, "OK", &Json::parse(ok_body.trim()).unwrap())
            .with_request_id("req-000008");
        assert_eq!(ok.body, ok_body);
        assert!(ok
            .extra_headers
            .iter()
            .any(|(k, v)| k == "X-Request-Id" && v == "req-000008"));
    }
}
