//! Request parsing and endpoint logic for `cogent serve`.
//!
//! Connection threads do the cheap work — JSON parsing and validation —
//! so malformed requests are answered with a 400 without ever consuming
//! an admission-queue slot or a worker. Workers run only the expensive
//! part ([`execute`]) under the panic-isolation boundary in
//! [`super::Server`].

use std::time::{Duration, Instant};

use cogent_gpu_model::{GpuDevice, Precision};
use cogent_gpu_sim::plan::StoreMode;
use cogent_ir::{Contraction, SizeMap};
use cogent_obs::flight::FlightTimeline;
use cogent_obs::json::Json;
use cogent_obs::{Capture, PipelineTrace};

use crate::audit::{audit_contraction, AuditOptions};
use crate::cache::CacheKey;
use crate::guard::CogentError;
use crate::select::SearchOptions;
use crate::{Cogent, GeneratedKernel};

use super::fault::ServeFault;
use super::http::Response;
use super::SharedState;

/// One fully validated generation request.
#[derive(Debug, Clone)]
pub struct GenerateSpec {
    /// The contraction to generate for.
    pub tc: Contraction,
    /// Representative extents.
    pub sizes: SizeMap,
    /// Target device.
    pub device: GpuDevice,
    /// Arithmetic precision.
    pub precision: Precision,
    /// Output semantics.
    pub store_mode: StoreMode,
    /// Chaos-test fault to apply in the worker (only ever `Some` when the
    /// server allows fault injection).
    pub fault: Option<ServeFault>,
}

/// What a worker should do for one admitted request.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// `POST /v1/generate`: full kernel (sources included).
    Generate(GenerateSpec),
    /// `POST /v1/explain`: search/provenance summary, no sources.
    Explain(GenerateSpec),
    /// `POST /v1/batch`: several generations in one request.
    Batch(Vec<GenerateSpec>),
    /// `POST /v1/audit`: model-accuracy audit for one contraction.
    Audit {
        /// The contraction + platform under audit.
        spec: GenerateSpec,
        /// How many top configurations to re-measure.
        top_k: usize,
    },
}

impl JobKind {
    /// The fault injected into this job, if any.
    pub fn fault(&self) -> Option<ServeFault> {
        match self {
            JobKind::Generate(spec) | JobKind::Explain(spec) => spec.fault,
            JobKind::Audit { spec, .. } => spec.fault,
            JobKind::Batch(jobs) => jobs.iter().find_map(|spec| spec.fault),
        }
    }

    /// Endpoint label for metrics.
    pub fn endpoint(&self) -> &'static str {
        match self {
            JobKind::Generate(_) => "generate",
            JobKind::Explain(_) => "explain",
            JobKind::Batch(_) => "batch",
            JobKind::Audit { .. } => "audit",
        }
    }
}

/// A 400 with a typed code, used by every parse failure.
fn bad_request(code: &str, detail: &str) -> Response {
    Response::error(400, "Bad Request", code, detail)
}

/// Parses the JSON body of a POST endpooint into a [`JobKind`] plus the
/// request deadline.
///
/// # Errors
///
/// A ready-to-send 4xx response describing the problem.
pub fn parse_job(
    path: &str,
    body: &[u8],
    state: &SharedState,
) -> Result<(JobKind, Instant), Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| bad_request("malformed_request", "body is not valid UTF-8"))?;
    let json = Json::parse(text)
        .map_err(|e| bad_request("malformed_request", &format!("body is not JSON: {e}")))?;
    let deadline = parse_deadline(&json, state)?;
    let kind = match path {
        "/v1/generate" => JobKind::Generate(parse_spec(&json, state)?),
        "/v1/explain" => JobKind::Explain(parse_spec(&json, state)?),
        "/v1/audit" => {
            let top_k = match json.get("top_k") {
                None => 8,
                Some(v) => v
                    .as_u128()
                    .and_then(|k| usize::try_from(k).ok())
                    .filter(|k| (1..=64).contains(k))
                    .ok_or_else(|| {
                        bad_request("invalid_argument", "top_k must be an integer in 1..=64")
                    })?,
            };
            JobKind::Audit {
                spec: parse_spec(&json, state)?,
                top_k,
            }
        }
        "/v1/batch" => {
            let jobs = json
                .get("jobs")
                .and_then(Json::as_array)
                .ok_or_else(|| bad_request("invalid_argument", "batch needs a jobs array"))?;
            if jobs.is_empty() {
                return Err(bad_request("invalid_argument", "jobs array is empty"));
            }
            if jobs.len() > 64 {
                return Err(bad_request(
                    "invalid_argument",
                    "at most 64 jobs per batch request",
                ));
            }
            let specs = jobs
                .iter()
                .map(|job| parse_spec(job, state))
                .collect::<Result<Vec<_>, _>>()?;
            JobKind::Batch(specs)
        }
        other => {
            return Err(Response::error(
                404,
                "Not Found",
                "not_found",
                &format!("unknown endpoint {other:?}"),
            ))
        }
    };
    Ok((kind, deadline))
}

/// Parses one generation spec object (the whole body for single-kernel
/// endpoints, one element of `jobs` for batches).
fn parse_spec(json: &Json, state: &SharedState) -> Result<GenerateSpec, Response> {
    let spec = json
        .get("contraction")
        .and_then(Json::as_str)
        .ok_or_else(|| bad_request("invalid_contraction", "missing contraction member"))?;
    let tc: Contraction = spec
        .parse()
        .map_err(|e| bad_request("invalid_contraction", &format!("{e}")))?;
    let sizes = parse_sizes(json, &tc)?;
    if !sizes.covers(&tc) {
        let missing: Vec<String> = tc
            .all_indices()
            .filter(|i| sizes.extent(i).is_none())
            .map(|i| i.to_string())
            .collect();
        return Err(bad_request(
            "incomplete_sizes",
            &format!("missing extents for {}", missing.join(", ")),
        ));
    }
    let device = match json.get("device").and_then(Json::as_str) {
        None | Some("v100") => GpuDevice::v100(),
        Some("p100") => GpuDevice::p100(),
        Some(other) => {
            return Err(bad_request(
                "unknown_device",
                &format!("unknown device {other:?} (want v100 or p100)"),
            ))
        }
    };
    let precision = match json.get("precision").and_then(Json::as_str) {
        None | Some("f64") => Precision::F64,
        Some("f32") => Precision::F32,
        Some(other) => {
            return Err(bad_request(
                "unknown_precision",
                &format!("unknown precision {other:?} (want f32 or f64)"),
            ))
        }
    };
    let store_mode = match json.get("store_mode").and_then(Json::as_str) {
        None | Some("assign") => StoreMode::Assign,
        Some("accumulate") => StoreMode::Accumulate,
        Some(other) => {
            return Err(bad_request(
                "unknown_store_mode",
                &format!("unknown store mode {other:?} (want assign or accumulate)"),
            ))
        }
    };
    let fault = match ServeFault::from_request(json) {
        Ok(None) => None,
        Ok(Some(fault)) if state.allow_fault_injection => Some(fault),
        Ok(Some(_)) => {
            return Err(bad_request(
                "fault_injection_disabled",
                "this server does not accept fault injection",
            ))
        }
        Err(why) => return Err(bad_request("invalid_argument", &why)),
    };
    Ok(GenerateSpec {
        tc,
        sizes,
        device,
        precision,
        store_mode,
        fault,
    })
}

fn parse_sizes(json: &Json, tc: &Contraction) -> Result<SizeMap, Response> {
    if let Some(uniform) = json.get("uniform") {
        let extent = uniform
            .as_u128()
            .and_then(|v| usize::try_from(v).ok())
            .filter(|v| *v > 0)
            .ok_or_else(|| bad_request("invalid_sizes", "uniform must be a positive integer"))?;
        return Ok(SizeMap::uniform(tc, extent));
    }
    let Some(Json::Object(members)) = json.get("sizes") else {
        return Err(bad_request(
            "invalid_sizes",
            "need sizes (object of index: extent) or uniform (integer)",
        ));
    };
    let mut pairs: Vec<(String, usize)> = Vec::with_capacity(members.len());
    for (name, extent) in members {
        let extent = extent
            .as_u128()
            .and_then(|v| usize::try_from(v).ok())
            .filter(|v| *v > 0)
            .ok_or_else(|| {
                bad_request(
                    "invalid_sizes",
                    &format!("extent of {name:?} must be a positive integer"),
                )
            })?;
        pairs.push((name.clone(), extent));
    }
    Ok(SizeMap::from_pairs(
        pairs.iter().map(|(n, e)| (n.as_str(), *e)),
    ))
}

fn parse_deadline(json: &Json, state: &SharedState) -> Result<Instant, Response> {
    let timeout = match json.get("deadline_ms") {
        None => state.default_deadline,
        Some(v) => {
            let ms = v
                .as_u128()
                .and_then(|ms| u64::try_from(ms).ok())
                .filter(|ms| *ms > 0)
                .ok_or_else(|| {
                    bad_request("invalid_argument", "deadline_ms must be a positive integer")
                })?;
            Duration::from_millis(ms).min(state.max_deadline)
        }
    };
    Ok(Instant::now() + timeout)
}

/// The generator used for cache keys and actual searches. The cache key
/// must NOT depend on the per-request deadline (a warm hit is a warm hit
/// however patient the client is), so the key fingerprint comes from the
/// base generator with `time_budget = None` and the deadline is applied
/// only to the search itself.
fn base_generator(spec: &GenerateSpec) -> Cogent {
    Cogent::new()
        .device(spec.device.clone())
        .precision(spec.precision)
        .store_mode(spec.store_mode)
}

/// Runs one admitted job. Called from a worker inside the panic-isolation
/// boundary; `deadline` is the request deadline (already checked to be in
/// the future when the job was dequeued). The `timeline` accumulates the
/// request's flight-recorder facts (cache outcome, search time and phase
/// seams, truncation, provenance); pass
/// [`FlightTimeline::detached`] when nothing records the flight.
pub fn execute(
    kind: &JobKind,
    deadline: Instant,
    state: &SharedState,
    timeline: &mut FlightTimeline,
) -> Response {
    match kind {
        JobKind::Generate(spec) => generate_response(spec, deadline, state, true, timeline),
        JobKind::Explain(spec) => generate_response(spec, deadline, state, false, timeline),
        JobKind::Batch(specs) => {
            let results: Vec<Json> = specs
                .iter()
                .map(|spec| {
                    let response = generate_response(spec, deadline, state, true, timeline);
                    match Json::parse(&response.body) {
                        Ok(json) => Json::obj([
                            ("status", Json::UInt(u128::from(response.status))),
                            ("result", json),
                        ]),
                        Err(_) => Json::obj([("status", Json::UInt(500))]),
                    }
                })
                .collect();
            Response::json(200, "OK", &Json::obj([("results", Json::Array(results))]))
        }
        JobKind::Audit { spec, top_k } => audit_response(spec, *top_k, deadline, timeline),
    }
}

/// Splices the top-level phase seams of a search trace into the flight
/// timeline as `phase:<name>` events, rebased onto the request clock.
/// Two levels deep: the nested capture's children (the `generate` span)
/// plus their children (the actual pipeline phases).
fn absorb_search_phases(timeline: &mut FlightTimeline, trace: &PipelineTrace, base_ns: u64) {
    for child in &trace.root.children {
        timeline.mark_at(&format!("phase:{}", child.name), base_ns + child.start_ns);
        for grandchild in &child.children {
            timeline.mark_at(
                &format!("phase:{}", grandchild.name),
                base_ns + grandchild.start_ns,
            );
        }
    }
}

/// Generation with explicit cache handling.
fn generate_response(
    spec: &GenerateSpec,
    deadline: Instant,
    state: &SharedState,
    with_sources: bool,
    timeline: &mut FlightTimeline,
) -> Response {
    if let Some(fault) = spec.fault {
        fault.apply();
    }
    let base = base_generator(spec);
    let key = CacheKey::new(
        &spec.tc,
        &spec.sizes,
        &spec.device,
        spec.precision,
        &base.options_fingerprint(),
    );
    if let Some(hit) = state.cache.get(&key) {
        timeline.mark("cache.hit");
        timeline.set_cache("hit");
        timeline.set_provenance(&hit.provenance.to_string());
        return Response::json(200, "OK", &kernel_json(&hit, "hit", with_sources));
    }
    timeline.mark("cache.miss");
    timeline.set_cache("miss");
    let Some(budget) = deadline.checked_duration_since(Instant::now()) else {
        return deadline_response();
    };
    let options = SearchOptions {
        time_budget: Some(budget),
        ..SearchOptions::default()
    };
    let search_base_ns = timeline.elapsed_ns();
    let capture = Capture::start("serve.search");
    let result = base.search_options(options).generate(&spec.tc, &spec.sizes);
    timeline.add_search_ns(timeline.elapsed_ns().saturating_sub(search_base_ns));
    if let Some(trace) = capture.finish() {
        absorb_search_phases(timeline, &trace, search_base_ns);
    }
    match result {
        Ok(kernel) => {
            timeline.set_truncated(kernel.search.truncated);
            timeline.set_provenance(&kernel.provenance.to_string());
            // Only cache (and persist) complete searches: a
            // deadline-truncated search is not the canonical kernel for
            // this key, and caching it would break warm-path
            // byte-identity for later, more patient callers.
            if !kernel.search.truncated {
                state.cache.insert(key, kernel.clone());
                if let Some(persister) = &state.persister {
                    if persister.save_dirty(&state.cache).is_err() {
                        cogent_obs::counter("serve.persist.error", 1);
                    }
                }
            }
            Response::json(200, "OK", &kernel_json(&kernel, "miss", with_sources))
        }
        Err(CogentError::BudgetExhausted { .. }) => deadline_response(),
        Err(err @ CogentError::IncompleteSizes { .. }) => {
            Response::error(400, "Bad Request", "incomplete_sizes", &err.to_string())
        }
        Err(err @ (CogentError::NoConfiguration | CogentError::NoViablePlan { .. })) => {
            Response::error(
                422,
                "Unprocessable Entity",
                "no_viable_plan",
                &err.to_string(),
            )
        }
        Err(err) => Response::error(
            500,
            "Internal Server Error",
            "generation_failed",
            &err.to_string(),
        ),
    }
}

/// The 504 every deadline path produces.
pub fn deadline_response() -> Response {
    Response::error(
        504,
        "Gateway Timeout",
        "deadline_exceeded",
        "the request deadline expired before generation finished",
    )
}

fn audit_response(
    spec: &GenerateSpec,
    top_k: usize,
    deadline: Instant,
    timeline: &mut FlightTimeline,
) -> Response {
    if let Some(fault) = spec.fault {
        fault.apply();
    }
    let Some(budget) = deadline.checked_duration_since(Instant::now()) else {
        return deadline_response();
    };
    let options = AuditOptions {
        top_k,
        search: SearchOptions {
            time_budget: Some(budget),
            ..SearchOptions::default()
        },
        ..AuditOptions::default()
    };
    let name = spec
        .tc
        .to_tccg_string()
        .unwrap_or_else(|| spec.tc.to_string());
    let search_base_ns = timeline.elapsed_ns();
    let capture = Capture::start("serve.audit");
    let result = audit_contraction(
        &name,
        &spec.tc,
        &spec.sizes,
        &spec.device,
        spec.precision,
        &options,
    );
    timeline.add_search_ns(timeline.elapsed_ns().saturating_sub(search_base_ns));
    if let Some(trace) = capture.finish() {
        absorb_search_phases(timeline, &trace, search_base_ns);
    }
    match result {
        Ok(audit) => Response::json(200, "OK", &audit_json(&audit)),
        Err(CogentError::BudgetExhausted { .. }) => deadline_response(),
        Err(err) => Response::error(
            422,
            "Unprocessable Entity",
            "audit_failed",
            &err.to_string(),
        ),
    }
}

/// The response body for `/v1/audit`: the rank-quality summary plus the
/// per-configuration relative errors.
fn audit_json(audit: &crate::audit::ContractionAudit) -> Json {
    let configs: Vec<Json> = audit
        .configs
        .iter()
        .map(|config| {
            Json::obj([
                ("model_rank", Json::UInt(config.model_rank as u128)),
                ("predicted", Json::UInt(config.predicted.total())),
                ("measured", Json::UInt(config.measured.total())),
                ("rel_error", Json::Float(config.rel_error())),
            ])
        })
        .collect();
    Json::obj([
        ("name", Json::Str(audit.name.clone())),
        ("spec", Json::Str(audit.spec.clone())),
        ("spearman", Json::Float(audit.spearman)),
        ("regret", Json::Float(audit.regret)),
        ("configs", Json::Array(configs)),
    ])
}

/// The response body for generate/explain/batch results. Every member is
/// a pure function of the (persisted) kernel plus the `cache` marker, so
/// warm responses are byte-identical across a server restart.
fn kernel_json(kernel: &GeneratedKernel, cache: &str, with_sources: bool) -> Json {
    let mut members: Vec<(String, Json)> = vec![
        (
            "contraction".to_string(),
            Json::Str(
                kernel
                    .contraction
                    .to_tccg_string()
                    .unwrap_or_else(|| kernel.contraction.to_string()),
            ),
        ),
        ("config".to_string(), Json::Str(kernel.config.to_string())),
        (
            "provenance".to_string(),
            Json::Str(kernel.provenance.to_string()),
        ),
        (
            "passes".to_string(),
            Json::Array(
                kernel
                    .provenance
                    .passes
                    .iter()
                    .map(|p| Json::Str(p.clone()))
                    .collect(),
            ),
        ),
        ("gflops".to_string(), Json::Float(kernel.report.gflops)),
        (
            "predicted_time_s".to_string(),
            Json::Float(kernel.report.time.total_s),
        ),
        (
            "blocks".to_string(),
            Json::UInt(kernel.report.blocks as u128),
        ),
        (
            "threads_per_block".to_string(),
            Json::UInt(kernel.report.threads_per_block as u128),
        ),
        (
            "smem_bytes".to_string(),
            Json::UInt(kernel.report.smem_bytes as u128),
        ),
        (
            "search".to_string(),
            Json::obj([
                ("enumerated", Json::UInt(kernel.search.enumerated as u128)),
                ("survivors", Json::UInt(kernel.search.survivors as u128)),
                ("truncated", Json::Bool(kernel.search.truncated)),
            ]),
        ),
        ("cache".to_string(), Json::Str(cache.to_string())),
    ];
    if with_sources {
        members.push((
            "cuda_source".to_string(),
            Json::Str(kernel.cuda_source.clone()),
        ));
        members.push((
            "opencl_source".to_string(),
            Json::Str(kernel.opencl_source.clone()),
        ));
    }
    Json::Object(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::KernelCache;
    use std::sync::Arc;

    fn test_state(allow_faults: bool) -> SharedState {
        SharedState::for_tests(Arc::new(KernelCache::new(8)), allow_faults)
    }

    fn parse(path: &str, body: &str, state: &SharedState) -> Result<(JobKind, Instant), Response> {
        parse_job(path, body.as_bytes(), state)
    }

    #[test]
    fn parses_a_minimal_generate_request() {
        let state = test_state(false);
        let (kind, deadline) = parse(
            "/v1/generate",
            r#"{"contraction":"ij-ik-kj","uniform":16}"#,
            &state,
        )
        .unwrap();
        assert!(deadline > Instant::now());
        let JobKind::Generate(spec) = kind else {
            panic!("wrong kind");
        };
        assert_eq!(spec.tc.to_tccg_string().unwrap(), "ij-ik-kj");
        assert_eq!(spec.sizes.extent("i"), Some(16));
        assert_eq!(spec.precision, Precision::F64);
        assert!(spec.fault.is_none());
    }

    #[test]
    fn explicit_sizes_devices_and_modes() {
        let state = test_state(false);
        let body = r#"{"contraction":"ij-ik-kj","sizes":{"i":8,"j":12,"k":16},
                       "device":"p100","precision":"f32","store_mode":"accumulate"}"#;
        let (kind, _) = parse("/v1/generate", body, &state).unwrap();
        let JobKind::Generate(spec) = kind else {
            panic!("wrong kind");
        };
        assert_eq!(spec.device.name, "Tesla P100");
        assert_eq!(spec.precision, Precision::F32);
        assert_eq!(spec.store_mode, StoreMode::Accumulate);
        assert_eq!(spec.sizes.extent("j"), Some(12));
    }

    #[test]
    fn rejects_malformed_bodies_with_typed_codes() {
        let state = test_state(false);
        for (body, code) in [
            ("not json", "malformed_request"),
            (r#"{"uniform":16}"#, "invalid_contraction"),
            (
                r#"{"contraction":"not-a-spec!!","uniform":16}"#,
                "invalid_contraction",
            ),
            (r#"{"contraction":"ij-ik-kj"}"#, "invalid_sizes"),
            (r#"{"contraction":"ij-ik-kj","uniform":0}"#, "invalid_sizes"),
            (
                r#"{"contraction":"ij-ik-kj","sizes":{"i":8}}"#,
                "incomplete_sizes",
            ),
            (
                r#"{"contraction":"ij-ik-kj","uniform":8,"device":"tpu"}"#,
                "unknown_device",
            ),
            (
                r#"{"contraction":"ij-ik-kj","uniform":8,"deadline_ms":0}"#,
                "invalid_argument",
            ),
        ] {
            let resp = parse("/v1/generate", body, &state).unwrap_err();
            assert_eq!(resp.status, 400, "{body}");
            assert!(resp.body.contains(code), "{body} → {}", resp.body);
        }
    }

    #[test]
    fn fault_injection_is_rejected_unless_allowed() {
        let body = r#"{"contraction":"ij-ik-kj","uniform":8,"inject":"panic"}"#;
        let resp = parse("/v1/generate", body, &test_state(false)).unwrap_err();
        assert!(resp.body.contains("fault_injection_disabled"));
        let (kind, _) = parse("/v1/generate", body, &test_state(true)).unwrap();
        assert_eq!(kind.fault(), Some(ServeFault::WorkerPanic));
    }

    #[test]
    fn batch_parses_each_job() {
        let state = test_state(false);
        let body = r#"{"jobs":[
            {"contraction":"ij-ik-kj","uniform":8},
            {"contraction":"abc-bda-dc","uniform":4}
        ]}"#;
        let (kind, _) = parse("/v1/batch", body, &state).unwrap();
        let JobKind::Batch(specs) = kind else {
            panic!("wrong kind")
        };
        assert_eq!(specs.len(), 2);
        assert!(parse("/v1/batch", r#"{"jobs":[]}"#, &state).is_err());
    }

    #[test]
    fn unknown_endpoint_is_404() {
        let resp = parse("/v1/transmogrify", "{}", &test_state(false)).unwrap_err();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn execute_generates_and_caches() {
        let state = test_state(false);
        let (kind, deadline) = parse(
            "/v1/generate",
            r#"{"contraction":"ij-ik-kj","uniform":16}"#,
            &state,
        )
        .unwrap();
        let mut cold_timeline = FlightTimeline::detached();
        let cold = execute(&kind, deadline, &state, &mut cold_timeline);
        assert_eq!(cold.status, 200);
        assert!(cold.body.contains("\"cache\":\"miss\""));
        assert!(cold.body.contains("__global__"));
        let mut warm_timeline = FlightTimeline::detached();
        let warm = execute(
            &kind,
            deadline + Duration::from_secs(5),
            &state,
            &mut warm_timeline,
        );
        assert_eq!(warm.status, 200);
        assert!(warm.body.contains("\"cache\":\"hit\""));
        // The timelines record the cache outcome and the search cost.
        let cold_record = cold_timeline.finish(200);
        assert_eq!(cold_record.cache, "miss");
        assert!(cold_record.search_ns > 0, "cold path searched");
        assert!(!cold_record.provenance.is_empty());
        assert!(cold_record.events.iter().any(|e| e.label == "cache.miss"));
        let warm_record = warm_timeline.finish(200);
        assert_eq!(warm_record.cache, "hit");
        assert_eq!(warm_record.search_ns, 0, "warm path never searches");
        assert!(warm_record.events.iter().any(|e| e.label == "cache.hit"));
        // Modulo the hit/miss marker, the payloads agree byte for byte.
        assert_eq!(
            warm.body.replace("\"cache\":\"hit\"", "\"cache\":\"miss\""),
            cold.body
        );
    }

    #[test]
    fn explain_omits_sources() {
        let state = test_state(false);
        let (kind, deadline) = parse(
            "/v1/explain",
            r#"{"contraction":"ij-ik-kj","uniform":16}"#,
            &state,
        )
        .unwrap();
        let resp = execute(&kind, deadline, &state, &mut FlightTimeline::detached());
        assert_eq!(resp.status, 200);
        assert!(!resp.body.contains("cuda_source"));
        assert!(resp.body.contains("\"search\""));
    }

    #[test]
    fn expired_deadline_is_504() {
        let state = test_state(false);
        let (kind, _) = parse(
            "/v1/generate",
            r#"{"contraction":"abcd-aebf-dfce","uniform":16}"#,
            &state,
        )
        .unwrap();
        let resp = execute(
            &kind,
            Instant::now() - Duration::from_millis(1),
            &state,
            &mut FlightTimeline::detached(),
        );
        assert_eq!(resp.status, 504);
        assert!(resp.body.contains("deadline_exceeded"));
    }
}
